"""Typed request/response envelopes: round trips and strict validation.

Every request type must survive ``to_dict -> parse_request -> to_dict``
unchanged (that triple is the wire contract), and every malformed payload
must come back as an :class:`InvalidRequestError` — never a ``KeyError``
or ``TypeError`` escaping from deep inside the parser.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import InvalidRequestError
from repro.core.ranking import Ranking
from repro.api.requests import (
    ADMIN_ACTIONS,
    AdminRequest,
    BatchRequest,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    RangeQueryRequest,
    REQUEST_TYPES,
    SubscribeRequest,
    UnsubscribeRequest,
    UpsertRequest,
    parse_request,
)
from repro.api.responses import (
    MatchPayload,
    Response,
    ResponseError,
    canonical_json,
    error_response,
)

EXAMPLES = [
    RangeQueryRequest(collection="news", items=(3, 1, 4), theta=0.2),
    RangeQueryRequest(
        collection="news", items=(3, 1, 4), theta=0.25, algorithm="F&V", limit=5, cursor=10
    ),
    KnnRequest(collection="news", items=(3, 1, 4), k=7),
    KnnRequest(collection="live", items=(1, 2), k=1, algorithm="ListMerge"),
    BatchRequest(collection="news", queries=((1, 2, 3), (4, 5, 6)), theta=0.3),
    InsertRequest(collection="live", items=(9, 8, 7)),
    DeleteRequest(collection="live", key=42),
    UpsertRequest(collection="live", key=3, items=(5, 6, 7)),
    SubscribeRequest(collection="live", mode="range", items=(3, 1, 4), theta=0.2),
    SubscribeRequest(
        collection="live",
        mode="knn",
        items=(3, 1, 4),
        k=5,
        algorithm="F&V",
        queue_size=16,
    ),
    UnsubscribeRequest(collection="live", subscription=7),
    *[
        AdminRequest(collection="live", action=action)
        for action in ADMIN_ACTIONS
        # create/replicate/reshard carry mandatory fields, exercised below
        if action not in ("create", "replicate", "reshard")
    ],
    AdminRequest(
        collection="live",
        action="route",
        table={"version": 1, "collection": "live", "slots": [0, 1], "shards": []},
        role="replica",
        shard_id=1,
    ),
    AdminRequest(collection="live", action="replicate", records=()),
    AdminRequest(
        collection="live",
        action="replicate",
        records=(
            {"seq": 1, "op": "insert", "key": 0, "items": [1, 2, 3]},
            {"seq": 2, "op": "delete", "key": 0, "items": None},
        ),
    ),
    AdminRequest(collection="live", action="reshard", moves={3: 1, 7: 0}),
    AdminRequest(collection="live", action="metrics", scope="cluster"),
    AdminRequest(
        collection="fresh", action="create", engine="static", rankings=((1, 2, 3), (4, 5, 6))
    ),
    AdminRequest(collection="fresh", action="create", engine="live"),
    AdminRequest(
        collection="fresh",
        action="create",
        engine="live",
        rankings=((1, 2, 3),),
        algorithm="F&V",
        num_shards=2,
        cache_capacity=64,
    ),
]


class TestRequestRoundTrips:
    @pytest.mark.parametrize("request_obj", EXAMPLES, ids=lambda r: r.TYPE)
    def test_to_dict_parse_round_trip(self, request_obj):
        payload = request_obj.to_dict()
        # the payload is honest JSON: a dump/load cycle must not change it
        payload = json.loads(json.dumps(payload))
        rebuilt = parse_request(payload)
        assert rebuilt == request_obj
        assert rebuilt.to_dict() == request_obj.to_dict()

    def test_every_request_type_is_covered(self):
        tested = {type(example) for example in EXAMPLES}
        assert tested == set(REQUEST_TYPES.values())

    def test_parse_accepts_typed_requests_unchanged(self):
        request_obj = KnnRequest(items=(1, 2, 3), k=2)
        assert parse_request(request_obj) is request_obj

    def test_items_accept_rankings(self):
        request_obj = RangeQueryRequest(items=Ranking([4, 5, 6]), theta=0.1)
        assert request_obj.items == (4, 5, 6)
        assert request_obj.query.items == (4, 5, 6)


class TestRequestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            ["not", "a", "dict"],
            {},
            {"type": 7},
            {"type": "range-query"},  # unknown type name
        ],
    )
    def test_malformed_payload_shape(self, payload):
        with pytest.raises(InvalidRequestError):
            parse_request(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            {"type": "range", "items": [], "theta": 0.2},
            {"type": "range", "items": "1,2,3", "theta": 0.2},
            {"type": "range", "items": [1, "two"], "theta": 0.2},
            {"type": "range", "items": [1, True], "theta": 0.2},
            {"type": "range", "items": [1, 2], "theta": "0.2"},
            {"type": "range", "items": [1, 2], "theta": 1.0},
            {"type": "range", "items": [1, 2], "theta": -0.1},
            {"type": "range", "items": [1, 2], "theta": 0.2, "limit": 0},
            {"type": "range", "items": [1, 2], "theta": 0.2, "cursor": -1},
            {"type": "range", "items": [1, 2], "theta": 0.2, "algorithm": 5},
            {"type": "range", "items": [1, 2], "theta": 0.2, "surprise": 1},
            {"type": "range", "items": [1, 2], "theta": 0.2, "collection": ""},
            {"type": "range", "items": [1, 2], "theta": 0.2, "collection": 9},
            {"type": "knn", "items": [1, 2], "k": 0},
            {"type": "knn", "items": [1, 2], "k": True},
            {"type": "knn", "items": [1, 2], "k": "three"},
            {"type": "batch", "queries": [], "theta": 0.2},
            {"type": "batch", "queries": [[1, 2], []], "theta": 0.2},
            {"type": "batch", "queries": "nope", "theta": 0.2},
            {"type": "insert", "items": []},
            {"type": "delete", "key": -1},
            {"type": "delete", "key": "five"},
            {"type": "upsert", "key": 1, "items": [0.5]},
            {"type": "admin", "action": "explode"},
            {"type": "admin", "action": 3},
        ],
    )
    def test_malformed_fields_raise_invalid_request(self, payload):
        with pytest.raises(InvalidRequestError):
            parse_request(payload)

    def test_error_message_names_the_field(self):
        with pytest.raises(InvalidRequestError, match="theta"):
            parse_request({"type": "range", "items": [1, 2], "theta": 2.0})
        with pytest.raises(InvalidRequestError, match="surprise"):
            parse_request({"type": "range", "items": [1, 2], "theta": 0.1, "surprise": 1})

    def test_direct_construction_validates_too(self):
        with pytest.raises(InvalidRequestError):
            RangeQueryRequest(items=(1, 2), theta=1.5)
        with pytest.raises(InvalidRequestError):
            KnnRequest(items=(), k=3)
        with pytest.raises(InvalidRequestError):
            AdminRequest(action="reboot")

    def test_invalid_request_error_is_a_value_error(self):
        # compatibility contract: pre-typed-API call sites catch ValueError
        assert issubclass(InvalidRequestError, ValueError)


class TestResponseEnvelope:
    def _rich_response(self) -> Response:
        return Response(
            ok=True,
            matches=(
                MatchPayload(rid=3, distance=0.125, items=(1, 2, 3)),
                MatchPayload(rid=9, distance=0.5, items=(4, 5, 6)),
            ),
            stats={"kind": "range", "latency_seconds": 0.001, "algorithm": "F&V"},
            cursor=2,
        )

    def test_round_trip(self):
        for response in (
            self._rich_response(),
            Response(ok=True, key=17),
            Response(ok=True, data={"pong": True}),
            Response(ok=True, batch=(Response(ok=True, matches=()), self._rich_response())),
            Response(ok=False, error=ResponseError(code="invalid_request", message="nope")),
        ):
            payload = json.loads(json.dumps(response.to_dict()))
            rebuilt = Response.from_dict(payload)
            assert rebuilt == response
            assert rebuilt.canonical_bytes() == response.canonical_bytes()

    def test_canonical_bytes_are_deterministic(self):
        response = self._rich_response()
        assert response.canonical_bytes() == response.canonical_bytes()
        # key order in the source dict must not matter
        scrambled = dict(reversed(list(response.to_dict().items())))
        assert canonical_json(scrambled) == response.canonical_bytes()

    def test_result_bytes_ignore_stats(self):
        fast = self._rich_response()
        slow = Response(
            ok=True,
            matches=fast.matches,
            stats={"kind": "range", "latency_seconds": 9.9, "cache_hit": True},
            cursor=2,
        )
        assert fast.canonical_bytes() != slow.canonical_bytes()
        assert fast.result_bytes() == slow.result_bytes()

    def test_result_bytes_see_answer_changes(self):
        base = self._rich_response()
        different = Response(ok=True, matches=base.matches[:1], stats=base.stats, cursor=2)
        assert base.result_bytes() != different.result_bytes()

    def test_raise_for_error_reconstructs_typed_exceptions(self):
        from repro.core.errors import CollectionClosedError, UnknownCollectionError

        ok = Response(ok=True)
        assert ok.raise_for_error() is ok
        with pytest.raises(InvalidRequestError, match="bad theta"):
            Response(
                ok=False, error=ResponseError(code="invalid_request", message="bad theta")
            ).raise_for_error()
        with pytest.raises(UnknownCollectionError):
            Response(
                ok=False, error=ResponseError(code="unknown_collection", message="unknown 'x'")
            ).raise_for_error()
        with pytest.raises(CollectionClosedError):
            Response(
                ok=False, error=ResponseError(code="collection_closed", message="closed")
            ).raise_for_error()
        with pytest.raises(RuntimeError):
            Response(
                ok=False, error=ResponseError(code="never-heard-of-it", message="?")
            ).raise_for_error()

    def test_error_response_maps_exception_types(self):
        from repro.core.errors import (
            CollectionClosedError,
            InvalidThresholdError,
            UnknownCollectionError,
            UnknownKeyError,
        )

        cases = [
            (InvalidRequestError("x"), "invalid_request"),
            (UnknownCollectionError("missing"), "unknown_collection"),
            (UnknownKeyError(7), "unknown_key"),
            (CollectionClosedError("closed"), "collection_closed"),
            (InvalidThresholdError(2.0), "invalid_request"),
            (ValueError("v"), "invalid_request"),
            (KeyError("k"), "invalid_request"),
            (ZeroDivisionError("boom"), "internal"),
        ]
        for exception, code in cases:
            envelope = error_response(exception)
            assert not envelope.ok
            assert envelope.error.code == code, exception
        internal = error_response(ZeroDivisionError("boom"))
        assert "ZeroDivisionError" in internal.error.message
