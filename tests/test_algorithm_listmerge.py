"""Behavioural tests for the ListMerge baseline."""

import pytest

from repro.core.distances import footrule_topk
from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.listmerge import ListMerge


class TestListMerge:
    def test_no_distance_function_calls(self, nyt_small, nyt_queries):
        """Distances are aggregated from postings; no full Footrule evaluations."""
        algorithm = ListMerge.build(nyt_small)
        result = algorithm.search(nyt_queries[0], 0.2)
        assert result.stats.distance_calls == 0

    def test_threshold_agnostic_postings_scanned(self, nyt_small, nyt_queries):
        algorithm = ListMerge.build(nyt_small)
        low = algorithm.search(nyt_queries[0], 0.0)
        high = algorithm.search(nyt_queries[0], 0.3)
        assert low.stats.postings_scanned == high.stats.postings_scanned

    def test_reads_every_posting_of_the_query_lists(self, nyt_small, nyt_queries):
        algorithm = ListMerge.build(nyt_small)
        query = nyt_queries[0]
        expected = sum(algorithm.index.list_length(item) for item in query.items)
        result = algorithm.search(query, 0.2)
        assert result.stats.postings_scanned == expected

    def test_candidates_counted_once_per_ranking(self, nyt_small, nyt_queries):
        algorithm = ListMerge.build(nyt_small)
        query = nyt_queries[0]
        overlapping = {r.rid for r in nyt_small if query.overlap(r) > 0}
        result = algorithm.search(query, 0.3)
        assert result.stats.candidates == len(overlapping)

    def test_aggregated_distances_are_exact(self, nyt_small, nyt_queries):
        algorithm = ListMerge.build(nyt_small)
        for query in nyt_queries[:5]:
            result = algorithm.search(query, 0.3)
            for match in result:
                assert match.distance == pytest.approx(footrule_topk(query, nyt_small[match.rid]))

    def test_same_results_as_fv(self, yago_small, yago_queries):
        merge = ListMerge.build(yago_small)
        fv = FilterValidate.build(yago_small)
        for theta in (0.1, 0.2, 0.3):
            for query in yago_queries[:5]:
                assert merge.search(query, theta).rids == fv.search(query, theta).rids

    def test_handles_query_with_unseen_items(self, nyt_small):
        """Query items absent from the index simply contribute empty lists."""
        from repro.core.ranking import Ranking

        domain_max = max(nyt_small.item_domain())
        items = list(nyt_small[0].items)[:-1] + [domain_max + 10]
        algorithm = ListMerge.build(nyt_small)
        result = algorithm.search(Ranking(items), 0.3)
        assert all(match.distance <= 0.3 for match in result)
