"""Binary protocol-frame bodies: the v2 wire side of the RBF format.

A binary frame's body is one RBF record whose ``kind`` discriminates the
envelope (the outer 4-byte length header carries the binary bit; see
:mod:`repro.api.protocol`).  Only the hot request/response shapes have a
binary form — range, knn, and batch queries, replication shipping, and
their match-list answers.  Everything else (admin, errors, traced
requests, mutation acks) stays a JSON envelope on the same connection:
the two framings are mixed per frame, correlated by the shared integer
request id.

The codecs here are *dict-shaped*: :func:`encode_request` takes exactly
the payload ``Request.to_dict()`` produces and :func:`decode_request`
returns a dict that ``parse_request`` revalidates, so a binary request
flows through the same strict validation and dispatch as a JSON one —
which is what keeps the answers byte-identical.  Encoders return
``None`` for any shape they cannot carry losslessly (string ids, extra
fields, non-float distances, ragged match widths); callers then fall
back to the JSON framing.  Response payloads deliberately drop the
volatile ``stats`` dict — the decoded envelope's ``result_bytes()``
still matches the JSON path's exactly, because ``result_bytes`` strips
``stats`` anyway.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.codec.columns import (
    decode_f64,
    decode_i64,
    decode_matrix,
    encode_f64,
    encode_i64,
    encode_matrix,
)
from repro.codec.rbf import MAGIC, CorruptRecordError, pack_record, unpack_record
from repro.codec.records import decode_wal_batch, encode_wal_batch

__all__ = [
    "ENVELOPE_ID",
    "WIRE_BATCH",
    "WIRE_BATCH_REPLY",
    "WIRE_KNN",
    "WIRE_MATCHES",
    "WIRE_PUSH",
    "WIRE_RANGE",
    "WIRE_REPLICATE",
    "decode_push",
    "decode_request",
    "decode_response",
    "encode_push",
    "encode_request",
    "encode_response",
    "is_push_frame",
]

#: Wire record kinds (disjoint from the storage kinds in ``records``).
WIRE_RANGE = 16
WIRE_KNN = 17
WIRE_BATCH = 18
WIRE_REPLICATE = 19
WIRE_MATCHES = 20
WIRE_BATCH_REPLY = 21
WIRE_PUSH = 22

#: The correlation id leading every binary envelope body.
ENVELOPE_ID = struct.Struct("<q")

_STR_LEN = struct.Struct("<H")
_NONE_STR = 0xFFFF
_RANGE_HEAD = struct.Struct("<dqq")  # theta, limit (-1 = None), cursor
_THETA = struct.Struct("<d")
_K = struct.Struct("<q")
_CURSOR = struct.Struct("<q")  # -1 = None (answer exhausted)
_COUNT32 = struct.Struct("<I")
_VERSION = struct.Struct("<q")  # collection mutation epoch of a push delta

_RANGE_FIELDS = frozenset({"type", "collection", "items", "theta", "algorithm", "limit", "cursor"})
_KNN_FIELDS = frozenset({"type", "collection", "items", "k", "algorithm"})
_BATCH_FIELDS = frozenset({"type", "collection", "queries", "theta", "algorithm"})
_REPLICATE_FIELDS = frozenset({"type", "collection", "action", "records"})
_MATCHES_FIELDS = frozenset({"ok", "matches", "stats", "cursor"})
_BATCH_REPLY_FIELDS = frozenset({"ok", "batch", "stats"})
_MATCH_KEYS = frozenset({"rid", "distance", "items"})
_PUSH_FIELDS = frozenset({"event", "version", "entered", "moved", "left"})
_PUSH_EVENT = "delta"  # the only push body with a binary form

#: Encoder-side shape mismatches that mean "fall back to JSON", not "fail".
_ENCODE_ERRORS = (KeyError, TypeError, ValueError, struct.error)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _encode_str(value: Optional[str]) -> bytes:
    if value is None:
        return _STR_LEN.pack(_NONE_STR)
    data = value.encode("utf-8")
    if len(data) >= _NONE_STR:
        raise ValueError(f"string of {len(data)} bytes exceeds the u16 length prefix")
    return _STR_LEN.pack(len(data)) + data


def _decode_str(buffer: bytes, offset: int) -> tuple[Optional[str], int]:
    if len(buffer) - offset < _STR_LEN.size:
        raise CorruptRecordError("missing string length", offset=offset)
    (length,) = _STR_LEN.unpack_from(buffer, offset)
    offset += _STR_LEN.size
    if length == _NONE_STR:
        return None, offset
    if len(buffer) - offset < length:
        raise CorruptRecordError("string overruns the payload", offset=offset)
    try:
        return buffer[offset : offset + length].decode("utf-8"), offset + length
    except UnicodeDecodeError as error:
        raise CorruptRecordError(f"bad utf-8 string: {error}") from error


def _items_column(items: Sequence) -> bytes:
    if not all(_is_int(item) for item in items):
        raise ValueError("items must be integers")
    return encode_i64(items)


# -- requests -----------------------------------------------------------------------


def encode_request(request_id: object, payload: dict) -> Optional[bytes]:
    """Encode one request payload as a binary frame body, or ``None``.

    ``None`` means the request has no binary form (unsupported kind,
    string id, unexpected fields) and must travel as a JSON envelope.
    """
    if not _is_int(request_id):
        return None
    try:
        kind = payload.get("type")
        if kind == "range" and set(payload) == _RANGE_FIELDS:
            limit = payload["limit"]
            body = (
                _encode_str(payload["collection"])
                + _encode_str(payload["algorithm"])
                + _RANGE_HEAD.pack(
                    payload["theta"], -1 if limit is None else limit, payload["cursor"]
                )
                + _items_column(payload["items"])
            )
            wire_kind = WIRE_RANGE
        elif kind == "knn" and set(payload) == _KNN_FIELDS:
            body = (
                _encode_str(payload["collection"])
                + _encode_str(payload["algorithm"])
                + _K.pack(payload["k"])
                + _items_column(payload["items"])
            )
            wire_kind = WIRE_KNN
        elif kind == "batch" and set(payload) == _BATCH_FIELDS:
            queries = payload["queries"]
            body = (
                _encode_str(payload["collection"])
                + _encode_str(payload["algorithm"])
                + _THETA.pack(payload["theta"])
                + _COUNT32.pack(len(queries))
                + b"".join(_items_column(query) for query in queries)
            )
            wire_kind = WIRE_BATCH
        elif (
            kind == "admin"
            and payload.get("action") == "replicate"
            and set(payload) == _REPLICATE_FIELDS
        ):
            body = _encode_str(payload["collection"]) + encode_wal_batch(payload["records"])
            wire_kind = WIRE_REPLICATE
        else:
            return None
    except _ENCODE_ERRORS:
        return None
    return pack_record(wire_kind, ENVELOPE_ID.pack(request_id) + body)


def decode_request(body: bytes) -> tuple[int, dict]:
    """Decode a binary request frame body into ``(request_id, payload)``.

    The payload dict has exactly the shape ``Request.to_dict()`` emits,
    so the server's ``parse_request`` revalidates it like any JSON frame.
    """
    try:
        return _decode_request(body)
    except struct.error as error:
        raise CorruptRecordError(f"truncated binary envelope: {error}") from error


def _decode_request(body: bytes) -> tuple[int, dict]:
    kind, envelope, end = unpack_record(body)
    if end != len(body):
        raise CorruptRecordError(f"{len(body) - end} trailing bytes in frame body")
    if len(envelope) < ENVELOPE_ID.size:
        raise CorruptRecordError("binary envelope shorter than its id")
    (request_id,) = ENVELOPE_ID.unpack_from(envelope)
    offset = ENVELOPE_ID.size
    collection, offset = _decode_str(envelope, offset)
    if collection is None:
        raise CorruptRecordError("request collection must not be null")
    if kind == WIRE_RANGE:
        algorithm, offset = _decode_str(envelope, offset)
        theta, limit, cursor = _RANGE_HEAD.unpack_from(envelope, offset)
        items, offset = decode_i64(envelope, offset + _RANGE_HEAD.size)
        payload = {
            "type": "range",
            "collection": collection,
            "items": items,
            "theta": theta,
            "algorithm": algorithm,
            "limit": None if limit == -1 else limit,
            "cursor": cursor,
        }
    elif kind == WIRE_KNN:
        algorithm, offset = _decode_str(envelope, offset)
        (k,) = _K.unpack_from(envelope, offset)
        items, offset = decode_i64(envelope, offset + _K.size)
        payload = {
            "type": "knn",
            "collection": collection,
            "items": items,
            "k": k,
            "algorithm": algorithm,
        }
    elif kind == WIRE_BATCH:
        algorithm, offset = _decode_str(envelope, offset)
        (theta,) = _THETA.unpack_from(envelope, offset)
        offset += _THETA.size
        (count,) = _COUNT32.unpack_from(envelope, offset)
        offset += _COUNT32.size
        queries = []
        for _ in range(count):
            items, offset = decode_i64(envelope, offset)
            queries.append(items)
        payload = {
            "type": "batch",
            "collection": collection,
            "queries": queries,
            "theta": theta,
            "algorithm": algorithm,
        }
    elif kind == WIRE_REPLICATE:
        records, offset = decode_wal_batch(envelope, offset)
        payload = {
            "type": "admin",
            "collection": collection,
            "action": "replicate",
            "records": records,
        }
    else:
        raise CorruptRecordError(f"unknown binary request kind {kind}")
    return request_id, payload


# -- responses ----------------------------------------------------------------------


def _encode_match_group(matches: Sequence[dict]) -> bytes:
    """Columnar rids + distances + item rows for one list of match dicts."""
    rids = []
    distances = []
    rows = []
    for match in matches:
        if set(match) != _MATCH_KEYS:
            raise ValueError(f"unexpected match keys {sorted(match)}")
        if not _is_int(match["rid"]) or not isinstance(match["distance"], float):
            raise ValueError("match rid must be int and distance float")
        rids.append(match["rid"])
        distances.append(match["distance"])
        rows.append(match["items"])
        if not all(_is_int(item) for item in match["items"]):
            raise ValueError("match items must be integers")
    return encode_i64(rids) + encode_f64(distances) + encode_matrix(rows)


def _decode_match_group(envelope: bytes, offset: int) -> tuple[list[dict], int]:
    rids, offset = decode_i64(envelope, offset)
    distances, offset = decode_f64(envelope, offset)
    rows, offset = decode_matrix(envelope, offset)
    if not len(rids) == len(distances) == len(rows):
        raise CorruptRecordError("match columns disagree on length", offset=offset)
    matches = [
        {"rid": rid, "distance": distance, "items": items}
        for rid, distance, items in zip(rids, distances, rows)
    ]
    return matches, offset


def _encode_matches(matches: Sequence[dict], cursor: Optional[int]) -> bytes:
    return _CURSOR.pack(-1 if cursor is None else cursor) + _encode_match_group(matches)


def _decode_matches(envelope: bytes, offset: int) -> tuple[dict, int]:
    (cursor,) = _CURSOR.unpack_from(envelope, offset)
    matches, offset = _decode_match_group(envelope, offset + _CURSOR.size)
    payload: dict = {"ok": True, "matches": matches}
    if cursor != -1:
        payload["cursor"] = cursor
    return payload, offset


def encode_response(request_id: object, payload: dict) -> Optional[bytes]:
    """Encode one response payload as a binary frame body, or ``None``.

    Only successful match-list answers (range/knn) and batch answers have
    a binary form; the volatile ``stats`` dict is dropped, which is
    invisible to ``result_bytes()``.  ``None`` sends the JSON envelope.
    """
    if not _is_int(request_id) or payload.get("ok") is not True:
        return None
    try:
        if payload.get("matches") is not None and set(payload) <= _MATCHES_FIELDS:
            body = _encode_matches(payload["matches"], payload.get("cursor"))
            wire_kind = WIRE_MATCHES
        elif payload.get("batch") is not None and set(payload) <= _BATCH_REPLY_FIELDS:
            entries = payload["batch"]
            parts = [_COUNT32.pack(len(entries))]
            for entry in entries:
                if entry.get("ok") is not True or entry.get("matches") is None:
                    return None
                if not set(entry) <= _MATCHES_FIELDS or entry.get("cursor") is not None:
                    return None
                parts.append(_encode_matches(entry["matches"], None))
            body = b"".join(parts)
            wire_kind = WIRE_BATCH_REPLY
        else:
            return None
    except _ENCODE_ERRORS:
        return None
    return pack_record(wire_kind, ENVELOPE_ID.pack(request_id) + body)


# -- pushes (standing-query deltas) -------------------------------------------------


def is_push_frame(body: bytes) -> bool:
    """Whether a binary frame body carries a push (cheap kind peek).

    Readers use this to route an incoming binary frame before paying for
    the full CRC-checked decode; a damaged record answers ``False`` here
    and then fails loudly in whichever decoder the caller picks.
    """
    # RECORD_HEADER is ``<4sBBHII``: magic, version, then the kind byte.
    return len(body) > len(MAGIC) + 1 and body[: len(MAGIC)] == MAGIC and body[5] == WIRE_PUSH


def encode_push(subscription_id: object, payload: dict) -> Optional[bytes]:
    """Encode one push body as a binary frame body, or ``None``.

    Only ``delta`` events over integer subscription ids have a binary
    form; terminal ``error`` pushes (and string-correlated subscriptions)
    travel as JSON envelopes on the same connection.
    """
    if not _is_int(subscription_id):
        return None
    if payload.get("event") != _PUSH_EVENT or set(payload) != _PUSH_FIELDS:
        return None
    version = payload.get("version")
    if not _is_int(version):
        return None
    try:
        left = payload["left"]
        if not all(_is_int(rid) for rid in left):
            return None
        body = (
            _VERSION.pack(version)
            + _encode_match_group(payload["entered"])
            + _encode_match_group(payload["moved"])
            + encode_i64(left)
        )
    except _ENCODE_ERRORS:
        return None
    return pack_record(WIRE_PUSH, ENVELOPE_ID.pack(subscription_id) + body)


def decode_push(body: bytes) -> tuple[int, dict]:
    """Decode a binary push frame body into ``(subscription_id, payload)``.

    The payload dict has exactly the JSON push body's shape —
    ``{"event": "delta", "version", "entered", "moved", "left"}`` — so
    both framings feed one delta-replay path on the client.
    """
    try:
        return _decode_push(body)
    except struct.error as error:
        raise CorruptRecordError(f"truncated binary envelope: {error}") from error


def _decode_push(body: bytes) -> tuple[int, dict]:
    kind, envelope, end = unpack_record(body)
    if end != len(body):
        raise CorruptRecordError(f"{len(body) - end} trailing bytes in frame body")
    if kind != WIRE_PUSH:
        raise CorruptRecordError(f"unknown binary push kind {kind}")
    if len(envelope) < ENVELOPE_ID.size + _VERSION.size:
        raise CorruptRecordError("binary push envelope shorter than its header")
    (subscription_id,) = ENVELOPE_ID.unpack_from(envelope)
    offset = ENVELOPE_ID.size
    (version,) = _VERSION.unpack_from(envelope, offset)
    offset += _VERSION.size
    entered, offset = _decode_match_group(envelope, offset)
    moved, offset = _decode_match_group(envelope, offset)
    left, offset = decode_i64(envelope, offset)
    if offset != len(envelope):
        raise CorruptRecordError(f"{len(envelope) - offset} trailing envelope bytes")
    payload = {
        "event": _PUSH_EVENT,
        "version": version,
        "entered": entered,
        "moved": moved,
        "left": left,
    }
    return subscription_id, payload


def decode_response(body: bytes) -> tuple[int, dict]:
    """Decode a binary response frame body into ``(request_id, payload)``.

    The payload dict is ``Response.to_dict()``-shaped minus the volatile
    ``stats``, ready for ``Response.from_dict``.
    """
    try:
        return _decode_response(body)
    except struct.error as error:
        raise CorruptRecordError(f"truncated binary envelope: {error}") from error


def _decode_response(body: bytes) -> tuple[int, dict]:
    kind, envelope, end = unpack_record(body)
    if end != len(body):
        raise CorruptRecordError(f"{len(body) - end} trailing bytes in frame body")
    if len(envelope) < ENVELOPE_ID.size:
        raise CorruptRecordError("binary envelope shorter than its id")
    (request_id,) = ENVELOPE_ID.unpack_from(envelope)
    offset = ENVELOPE_ID.size
    if kind == WIRE_MATCHES:
        payload, offset = _decode_matches(envelope, offset)
    elif kind == WIRE_BATCH_REPLY:
        (count,) = _COUNT32.unpack_from(envelope, offset)
        offset += _COUNT32.size
        entries = []
        for _ in range(count):
            entry, offset = _decode_matches(envelope, offset)
            entries.append(entry)
        payload = {"ok": True, "batch": entries}
    else:
        raise CorruptRecordError(f"unknown binary response kind {kind}")
    if offset != len(envelope):
        raise CorruptRecordError(f"{len(envelope) - offset} trailing envelope bytes")
    return request_id, payload
