"""Dataset generators, query workloads and (de)serialisation.

The paper evaluates on two proprietary real-world datasets (NYT query-result
rankings and Yago entity rankings).  Neither is redistributable, so this
package provides synthetic generators that reproduce the properties the paper
identifies as decisive: item-popularity skew (Zipf exponent), the prevalence
of near-duplicate rankings (topic clusters), collection size and ranking
length.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.loader import load_rankings, save_rankings
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import QueryWorkload, sample_queries
from repro.datasets.synthetic import DatasetSpec, generate_clustered_rankings
from repro.datasets.yago import yago_like_dataset

__all__ = [
    "DatasetSpec",
    "generate_clustered_rankings",
    "nyt_like_dataset",
    "yago_like_dataset",
    "QueryWorkload",
    "sample_queries",
    "save_rankings",
    "load_rankings",
]
