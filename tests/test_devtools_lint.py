"""The static-analysis framework and each built-in rule.

Every rule gets a positive case (a violation is found), a negative case
(conforming code is clean), and a suppression case (``# repro: noqa``
on the offending line silences exactly that finding).
"""

import json
import textwrap

import pytest

from repro.devtools.lint import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    load_project,
    main,
    run_lint,
)
from repro.devtools.rules import (
    ExportHygieneRule,
    FsyncDisciplineRule,
    GuardedByRule,
    MetricRegistryRule,
    NoBareExceptRule,
    WireParityRule,
)


def lint_tree(tmp_path, files, rules, readme=None):
    """Write ``files`` (relpath -> source) under tmp_path and lint them."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    if readme is not None:
        (tmp_path / "README.md").write_text(textwrap.dedent(readme))
    return run_lint(load_project(tmp_path), rules)


# -- guarded-by ----------------------------------------------------------------------


GUARDED_CLASS = '''
class Box:
    def __init__(self):
        self._lock = object()
        self._items = []  # guarded-by: _lock

    def {method}
'''


def _guarded(tmp_path, method):
    return lint_tree(
        tmp_path,
        {"src/repro/box.py": GUARDED_CLASS.format(method=method)},
        [GuardedByRule()],
    )


def test_guarded_by_flags_unlocked_access(tmp_path):
    findings = _guarded(tmp_path, "size(self):\n        return len(self._items)")
    assert len(findings) == 1
    assert findings[0].rule == "guarded-by"
    assert "_items" in findings[0].message


def test_guarded_by_accepts_with_lock(tmp_path):
    findings = _guarded(
        tmp_path,
        "size(self):\n        with self._lock:\n            return len(self._items)",
    )
    assert findings == []


def test_guarded_by_accepts_locked_suffix(tmp_path):
    findings = _guarded(tmp_path, "size_locked(self):\n        return len(self._items)")
    assert findings == []


def test_guarded_by_accepts_holds_annotation(tmp_path):
    findings = _guarded(
        tmp_path, "size(self):  # holds: _lock\n        return len(self._items)"
    )
    assert findings == []


def test_guarded_by_accepts_holds_annotation_above_def(tmp_path):
    source = """
    class Box:
        def __init__(self):
            self._lock = object()
            self._items = []  # guarded-by: _lock

        # holds: _lock
        def size(self):
            return len(self._items)
    """
    findings = lint_tree(tmp_path, {"src/repro/box.py": source}, [GuardedByRule()])
    assert findings == []


def test_guarded_by_init_is_exempt(tmp_path):
    source = """
    class Box:
        def __init__(self):
            self._lock = object()
            self._items = []  # guarded-by: _lock
            self._items.append(1)
    """
    findings = lint_tree(tmp_path, {"src/repro/box.py": source}, [GuardedByRule()])
    assert findings == []


def test_guarded_by_noqa_suppresses(tmp_path):
    findings = _guarded(
        tmp_path,
        "size(self):\n        return len(self._items)  # repro: noqa[guarded-by] test",
    )
    assert findings == []


# -- fsync-discipline ----------------------------------------------------------------


def test_fsync_flags_unsynced_rename(tmp_path):
    source = """
    import os


    def publish(tmp, path):
        os.replace(tmp, path)
    """
    findings = lint_tree(
        tmp_path, {"src/repro/live/store.py": source}, [FsyncDisciplineRule()]
    )
    assert len(findings) == 1
    assert "rename" in findings[0].message


def test_fsync_accepts_synced_rename(tmp_path):
    source = """
    import os


    def publish(tmp, path, handle):
        os.fsync(handle.fileno())
        os.replace(tmp, path)
    """
    findings = lint_tree(
        tmp_path, {"src/repro/live/store.py": source}, [FsyncDisciplineRule()]
    )
    assert findings == []


def test_fsync_always_flags_raw_writes(tmp_path):
    source = """
    import os


    def spill(path, handle):
        os.fsync(handle.fileno())
        path.write_text("data")
    """
    findings = lint_tree(
        tmp_path, {"src/repro/live/store.py": source}, [FsyncDisciplineRule()]
    )
    assert len(findings) == 1
    assert "write_text" in findings[0].message


def test_fsync_ignores_modules_outside_live(tmp_path):
    source = """
    import os


    def publish(tmp, path):
        os.replace(tmp, path)
    """
    findings = lint_tree(
        tmp_path, {"src/repro/service/store.py": source}, [FsyncDisciplineRule()]
    )
    assert findings == []


def test_fsync_covers_codec_modules(tmp_path):
    source = """
    def decode_spill(path, data):
        path.write_bytes(data)
    """
    findings = lint_tree(
        tmp_path, {"src/repro/codec/store.py": source}, [FsyncDisciplineRule()]
    )
    assert len(findings) == 1
    assert "write_text/.write_bytes" in findings[0].message


def test_fsync_accepts_codec_durable_writers(tmp_path):
    source = """
    import os

    from repro.codec import append_record, atomic_write_bytes


    def publish(tmp, path, data):
        atomic_write_bytes(path, data)
        os.replace(tmp, path)


    def extend(handle, record):
        append_record(handle, record)
        handle.truncate(10)
    """
    findings = lint_tree(
        tmp_path, {"src/repro/codec/store.py": source}, [FsyncDisciplineRule()]
    )
    assert findings == []


def test_fsync_noqa_suppresses(tmp_path):
    source = """
    def trim(handle):
        handle.truncate(10)  # repro: noqa[fsync-discipline] test
    """
    findings = lint_tree(
        tmp_path, {"src/repro/live/store.py": source}, [FsyncDisciplineRule()]
    )
    assert findings == []


# -- wire-parity ---------------------------------------------------------------------


WIRE_BASELINE = {
    key: textwrap.dedent(value)
    for key, value in {
    "src/repro/api/requests.py": """
    class Request:
        pass


    class PingRequest(Request):
        TYPE = "ping"


    REQUEST_TYPES = {cls.TYPE: cls for cls in (PingRequest,)}
    """,
    "src/repro/api/database.py": """
    def dispatch(request):
        if isinstance(request, PingRequest):
            return "pong"
        return None
    """,
    "src/repro/api/surface.py": """
    def ping():
        return PingRequest()
    """,
    "src/repro/api/responses.py": """
    ERROR_TYPES = {"oops": ValueError}


    def fail():
        return ResponseError("oops")
    """,
    }.items()
}


def test_wire_parity_baseline_is_clean(tmp_path):
    findings = lint_tree(tmp_path, dict(WIRE_BASELINE), [WireParityRule()])
    assert findings == []


def test_wire_parity_flags_unwired_request(tmp_path):
    files = dict(WIRE_BASELINE)
    files["src/repro/api/requests.py"] += (
        "\n\nclass GhostRequest(Request):\n    TYPE = \"ghost\"\n"
    )
    findings = lint_tree(tmp_path, files, [WireParityRule()])
    messages = "\n".join(f.message for f in findings)
    assert "GhostRequest is not registered in REQUEST_TYPES" in messages
    assert "no Session dispatch arm" in messages
    assert "never constructed by an ExecutorSurface helper" in messages


def test_wire_parity_flags_unmapped_error_code(tmp_path):
    files = dict(WIRE_BASELINE)
    files["src/repro/api/surface.py"] += (
        "\n\ndef explode():\n    return ResponseError(\"mystery\")\n"
    )
    findings = lint_tree(tmp_path, files, [WireParityRule()])
    assert any(
        "'mystery'" in f.message and "not mapped" in f.message for f in findings
    )


def test_wire_parity_flags_never_constructed_code(tmp_path):
    files = dict(WIRE_BASELINE)
    files["src/repro/api/responses.py"] = files["src/repro/api/responses.py"].replace(
        '"oops": ValueError', '"oops": ValueError, "unused": ValueError'
    )
    findings = lint_tree(tmp_path, files, [WireParityRule()])
    assert any(
        "'unused'" in f.message and "never" in f.message for f in findings
    )


def test_wire_parity_skips_partial_projects(tmp_path):
    findings = lint_tree(
        tmp_path, {"src/repro/api/requests.py": "class FooRequest:\n    TYPE = 'x'\n"},
        [WireParityRule()],
    )
    assert findings == []


CODEC_CLEAN = """
import struct

KIND_PROBE = 7

_HEAD = struct.Struct("<I")


def encode_probe(value):
    return _HEAD.pack(value)


def decode_probe(buffer):
    return _HEAD.unpack_from(buffer)[0]


def pack_probe():
    return encode_probe(KIND_PROBE)
"""


def test_wire_parity_codec_baseline_is_clean(tmp_path):
    findings = lint_tree(
        tmp_path, {"src/repro/codec/probe.py": CODEC_CLEAN}, [WireParityRule()]
    )
    assert findings == []


def test_wire_parity_flags_inline_struct_layout(tmp_path):
    source = CODEC_CLEAN.replace(
        "return _HEAD.pack(value)",
        'return struct.Struct("<I").pack(value)',
    )
    findings = lint_tree(
        tmp_path, {"src/repro/codec/probe.py": source}, [WireParityRule()]
    )
    assert len(findings) == 1
    assert "struct layout inline" in findings[0].message


def test_wire_parity_flags_unused_record_kind(tmp_path):
    source = CODEC_CLEAN + "\nWIRE_GHOST = 42\n"
    findings = lint_tree(
        tmp_path, {"src/repro/codec/probe.py": source}, [WireParityRule()]
    )
    assert len(findings) == 1
    assert "WIRE_GHOST" in findings[0].message
    assert "never referenced" in findings[0].message


def test_wire_parity_codec_kind_used_in_other_module_counts(tmp_path):
    files = {
        "src/repro/codec/probe.py": CODEC_CLEAN + "\nWIRE_GHOST = 42\n",
        "src/repro/live/user.py": (
            "from repro.codec.probe import WIRE_GHOST\n\n\n"
            "def kind():\n    return WIRE_GHOST\n"
        ),
    }
    findings = lint_tree(tmp_path, files, [WireParityRule()])
    assert findings == []


def test_wire_parity_flags_one_way_codec(tmp_path):
    source = CODEC_CLEAN.replace("def decode_probe", "def _decode_probe")
    findings = lint_tree(
        tmp_path, {"src/repro/codec/probe.py": source}, [WireParityRule()]
    )
    assert len(findings) == 1
    assert "encode_probe has no decode_probe counterpart" in findings[0].message


# -- metric-registry -----------------------------------------------------------------


README_WITH_METRICS = """
# Demo

## Metrics

| name | meaning |
| --- | --- |
| `repro_things_total` | things |

## Next section
"""


METRIC_BASELINE = {
    key: textwrap.dedent(value)
    for key, value in {
    "src/repro/obs/names.py": """
    THINGS_TOTAL = "repro_things_total"
    """,
    "src/repro/app.py": """
    from repro.obs import names as metric_names


    def instrument(registry):
        registry.counter(metric_names.THINGS_TOTAL, "help")
    """,
    }.items()
}


def test_metric_registry_baseline_is_clean(tmp_path):
    findings = lint_tree(
        tmp_path, dict(METRIC_BASELINE), [MetricRegistryRule()],
        readme=README_WITH_METRICS,
    )
    assert findings == []


def test_metric_registry_flags_literal_name(tmp_path):
    files = dict(METRIC_BASELINE)
    files["src/repro/app.py"] += (
        "\n\ndef rogue(registry):\n"
        "    registry.counter(\"repro_rogue_total\", \"help\")\n"
    )
    findings = lint_tree(
        tmp_path, files, [MetricRegistryRule()], readme=README_WITH_METRICS
    )
    assert any("metric-name literal" in f.message for f in findings)


def test_metric_registry_flags_fstring_name(tmp_path):
    files = dict(METRIC_BASELINE)
    files["src/repro/app.py"] += (
        "\n\ndef rogue(registry, kind):\n"
        "    registry.gauge(f\"repro_{kind}_total\", \"help\")\n"
    )
    findings = lint_tree(
        tmp_path, files, [MetricRegistryRule()], readme=README_WITH_METRICS
    )
    assert any("<f-string>" in f.message for f in findings)


def test_metric_registry_flags_unreferenced_constant(tmp_path):
    files = dict(METRIC_BASELINE)
    files["src/repro/obs/names.py"] += 'ORPHAN_TOTAL = "repro_orphan_total"\n'
    readme = README_WITH_METRICS.replace(
        "| `repro_things_total` | things |",
        "| `repro_things_total` | things |\n| `repro_orphan_total` | orphan |",
    )
    findings = lint_tree(tmp_path, files, [MetricRegistryRule()], readme=readme)
    assert any("never referenced" in f.message for f in findings)


def test_metric_registry_flags_duplicate_values(tmp_path):
    files = dict(METRIC_BASELINE)
    files["src/repro/obs/names.py"] += 'THINGS_ALIAS = "repro_things_total"\n'
    files["src/repro/app.py"] += (
        "\n\ndef also(registry):\n"
        "    registry.counter(metric_names.THINGS_ALIAS, \"help\")\n"
    )
    findings = lint_tree(
        tmp_path, files, [MetricRegistryRule()], readme=README_WITH_METRICS
    )
    assert any("duplicate metric name" in f.message for f in findings)


def test_metric_registry_readme_parity_both_ways(tmp_path):
    readme = README_WITH_METRICS.replace(
        "`repro_things_total`", "`repro_undocumented_total`"
    )
    findings = lint_tree(
        tmp_path, dict(METRIC_BASELINE), [MetricRegistryRule()], readme=readme
    )
    messages = "\n".join(f.message for f in findings)
    assert "'repro_things_total' is not documented" in messages
    assert "'repro_undocumented_total'" in messages


# -- no-bare-except ------------------------------------------------------------------


def _bare(tmp_path, body):
    return lint_tree(
        tmp_path,
        {"src/repro/loop.py": f"def work():\n    try:\n        step()\n{body}"},
        [NoBareExceptRule()],
    )


def test_no_bare_except_flags_silent_swallow(tmp_path):
    findings = _bare(tmp_path, "    except Exception:\n        pass")
    assert len(findings) == 1
    assert "swallows" in findings[0].message


def test_no_bare_except_flags_bare_handler(tmp_path):
    findings = _bare(tmp_path, "    except:\n        pass")
    assert len(findings) == 1


def test_no_bare_except_accepts_logging(tmp_path):
    findings = _bare(
        tmp_path, "    except Exception:\n        logger.warning('step failed')"
    )
    assert findings == []


def test_no_bare_except_accepts_reraise(tmp_path):
    findings = _bare(tmp_path, "    except Exception:\n        raise")
    assert findings == []


def test_no_bare_except_accepts_counter(tmp_path):
    findings = _bare(tmp_path, "    except Exception:\n        errors.inc()")
    assert findings == []


def test_no_bare_except_accepts_error_response(tmp_path):
    findings = _bare(
        tmp_path,
        "    except Exception as error:\n        return error_response(error)",
    )
    assert findings == []


def test_no_bare_except_ignores_narrow_handlers(tmp_path):
    findings = _bare(tmp_path, "    except ValueError:\n        pass")
    assert findings == []


def test_no_bare_except_noqa_suppresses(tmp_path):
    findings = _bare(
        tmp_path, "    except Exception:  # repro: noqa[no-bare-except] test\n        pass"
    )
    assert findings == []


# -- export-hygiene ------------------------------------------------------------------


def test_export_hygiene_flags_missing_export(tmp_path):
    source = """
    __all__ = ["shown"]


    def shown():
        pass


    def hidden_but_public():
        pass
    """
    findings = lint_tree(tmp_path, {"src/repro/mod.py": source}, [ExportHygieneRule()])
    assert len(findings) == 1
    assert "hidden_but_public" in findings[0].message


def test_export_hygiene_flags_unbound_export(tmp_path):
    source = """
    __all__ = ["ghost"]
    """
    findings = lint_tree(tmp_path, {"src/repro/mod.py": source}, [ExportHygieneRule()])
    assert len(findings) == 1
    assert "ghost" in findings[0].message


def test_export_hygiene_requires_constants(tmp_path):
    source = """
    __all__ = ["shown"]

    LIMIT = 10


    def shown():
        pass
    """
    findings = lint_tree(tmp_path, {"src/repro/mod.py": source}, [ExportHygieneRule()])
    assert len(findings) == 1
    assert "LIMIT" in findings[0].message


def test_export_hygiene_clean_module(tmp_path):
    source = """
    __all__ = ["LIMIT", "shown"]

    LIMIT = 10
    _private = 1


    def shown():
        pass


    def _helper():
        pass
    """
    findings = lint_tree(tmp_path, {"src/repro/mod.py": source}, [ExportHygieneRule()])
    assert findings == []


def test_export_hygiene_ignores_modules_without_all(tmp_path):
    findings = lint_tree(
        tmp_path, {"src/repro/mod.py": "def anything():\n    pass\n"},
        [ExportHygieneRule()],
    )
    assert findings == []


# -- framework: noqa, ordering, CLI --------------------------------------------------


def test_blanket_noqa_suppresses_every_rule(tmp_path):
    findings = _guarded(
        tmp_path, "size(self):\n        return len(self._items)  # repro: noqa test"
    )
    assert findings == []


def test_findings_are_sorted_and_deduplicated(tmp_path):
    source = """
    class Box:
        def __init__(self):
            self._lock = object()
            self._a = []  # guarded-by: _lock
            self._b = []  # guarded-by: _lock

        def zzz(self):
            return len(self._b)

        def aaa(self):
            return len(self._a)
    """
    findings = lint_tree(
        tmp_path,
        {"src/repro/box.py": source},
        [GuardedByRule(), GuardedByRule()],  # duplicate rule: findings must dedupe
    )
    assert len(findings) == 2
    assert findings == sorted(findings)


def test_finding_render_and_to_dict():
    finding = Finding(path="src/x.py", line=3, rule="guarded-by", message="boom")
    assert finding.render() == "src/x.py:3: [guarded-by] boom"
    assert finding.to_dict()["line"] == 3


def test_main_exit_codes(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "ok.py").write_text("def fine():\n    pass\n")
    assert main(["--root", str(tmp_path)]) == EXIT_CLEAN
    (src / "bad.py").write_text(
        "def work():\n    try:\n        step()\n    except Exception:\n        pass\n"
    )
    assert main(["--root", str(tmp_path)]) == EXIT_FINDINGS
    capsys.readouterr()


def test_main_json_format(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "bad.py").write_text(
        "def work():\n    try:\n        step()\n    except Exception:\n        pass\n"
    )
    assert main(["--root", str(tmp_path), "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "no-bare-except"
    assert "guarded-by" in payload["rules"]


def test_main_rule_selection(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "bad.py").write_text(
        "def work():\n    try:\n        step()\n    except Exception:\n        pass\n"
    )
    assert main(["--root", str(tmp_path), "--rules", "guarded-by"]) == EXIT_CLEAN
    assert main(["--root", str(tmp_path), "--rules", "no-such-rule"]) == EXIT_ERROR
    capsys.readouterr()


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in (
        "guarded-by",
        "fsync-discipline",
        "wire-parity",
        "metric-registry",
        "no-bare-except",
        "export-hygiene",
    ):
        assert rule_id in out


def test_main_rejects_missing_paths(tmp_path, capsys):
    assert main(["--root", str(tmp_path), str(tmp_path / "nope.py")]) == EXIT_ERROR
    capsys.readouterr()


def test_main_reports_syntax_errors(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "broken.py").write_text("def (:\n")
    assert main(["--root", str(tmp_path)]) == EXIT_ERROR
    assert "cannot parse" in capsys.readouterr().err


def test_repo_tree_is_clean():
    """Dogfood: the shipped source tree must lint clean."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    if not (root / "src" / "repro").is_dir():
        pytest.skip("source tree not available")
    project = load_project(root, [root / "src" / "repro"])
    findings = run_lint(project)
    assert findings == [], "\n".join(f.render() for f in findings)
