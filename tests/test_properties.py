"""Property-based tests (hypothesis) for the core invariants.

The strategies generate random top-k rankings over a small item domain so
overlaps are common; the properties cover the metric axioms, the distance
bounds, the partitioning invariants, the NRA bounds and end-to-end algorithm
equivalence on random collections.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    min_overlap_for_threshold,
    minimal_distance_for_overlap,
    partial_distance_bounds,
)
from repro.core.distances import (
    footrule_topk,
    footrule_topk_raw,
    kendall_tau_topk,
    max_footrule_distance,
)
from repro.core.ranking import Ranking, RankingSet
from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.fv_drop import FilterValidateDrop
from repro.algorithms.listmerge import ListMerge
from repro.algorithms.blocked_prune import BlockedPruneDrop
from repro.algorithms.coarse import CoarseSearch
from repro.metric.bktree import BKTree
from repro.metric.partitioning import bktree_partition, validate_partitions

# -- strategies -------------------------------------------------------------------

K = 5
DOMAIN = list(range(20))


def ranking_strategy(k: int = K, domain=None):
    pool = domain if domain is not None else DOMAIN
    return st.permutations(pool).map(lambda permutation: Ranking(list(permutation)[:k]))


def ranking_set_strategy(min_size: int = 2, max_size: int = 20):
    return st.lists(ranking_strategy(), min_size=min_size, max_size=max_size).map(
        lambda rankings: RankingSet.from_lists([list(r.items) for r in rankings])
    )


# -- metric axioms -----------------------------------------------------------------


class TestFootruleMetricProperties:
    @given(ranking_strategy(), ranking_strategy())
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, left, right):
        assert footrule_topk_raw(left, right) == footrule_topk_raw(right, left)

    @given(ranking_strategy())
    @settings(max_examples=50, deadline=None)
    def test_identity(self, ranking):
        assert footrule_topk_raw(ranking, ranking) == 0

    @given(ranking_strategy(), ranking_strategy())
    @settings(max_examples=100, deadline=None)
    def test_positivity(self, left, right):
        distance = footrule_topk_raw(left, right)
        if left.items == right.items:
            assert distance == 0
        else:
            assert distance > 0

    @given(ranking_strategy(), ranking_strategy(), ranking_strategy())
    @settings(max_examples=150, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert footrule_topk_raw(a, c) <= footrule_topk_raw(a, b) + footrule_topk_raw(b, c)

    @given(ranking_strategy(), ranking_strategy())
    @settings(max_examples=100, deadline=None)
    def test_range_and_normalisation(self, left, right):
        raw = footrule_topk_raw(left, right)
        assert 0 <= raw <= max_footrule_distance(K)
        assert 0.0 <= footrule_topk(left, right) <= 1.0

    @given(ranking_strategy(), ranking_strategy())
    @settings(max_examples=100, deadline=None)
    def test_overlap_lower_bound(self, left, right):
        """L(k, overlap) lower-bounds the distance of any pair with that overlap."""
        overlap = left.overlap(right)
        assert footrule_topk_raw(left, right) >= minimal_distance_for_overlap(K, overlap)

    @given(ranking_strategy(), ranking_strategy())
    @settings(max_examples=100, deadline=None)
    def test_kendall_bounded_by_footrule(self, left, right):
        assert kendall_tau_topk(left, right) <= footrule_topk_raw(left, right)


class TestOverlapBoundProperty:
    @given(
        ranking_strategy(),
        ranking_strategy(),
        st.floats(min_value=0.0, max_value=float(max_footrule_distance(K))),
    )
    @settings(max_examples=200, deadline=None)
    def test_results_have_at_least_omega_overlap(self, query, candidate, theta_raw):
        """Lemma 2's guarantee: distance <= theta implies overlap >= omega."""
        omega = min_overlap_for_threshold(K, theta_raw)
        if footrule_topk_raw(query, candidate) <= theta_raw:
            assert query.overlap(candidate) >= omega


class TestPartialBoundsProperty:
    @given(ranking_strategy(), ranking_strategy(), st.integers(min_value=0, max_value=K))
    @settings(max_examples=200, deadline=None)
    def test_bounds_bracket_true_distance(self, query, candidate, prefix_length):
        processed = list(query.items)[:prefix_length]
        seen = {item: candidate.rank_of(item) for item in processed if item in candidate}
        bounds = partial_distance_bounds(K, query.rank_map(), seen, processed)
        true_distance = footrule_topk_raw(query, candidate)
        assert bounds.lower <= true_distance <= bounds.upper


class TestBKTreeProperty:
    @given(ranking_set_strategy(), ranking_strategy(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_range_search_equals_brute_force(self, rankings, query, theta_raw):
        tree = BKTree.build(rankings.rankings, footrule_topk_raw)
        expected = {
            r.rid for r in rankings if footrule_topk_raw(query, r) <= theta_raw
        }
        assert {r.rid for r, _ in tree.range_search(query, theta_raw)} == expected


class TestPartitioningProperty:
    @given(ranking_set_strategy(min_size=3, max_size=25), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_bktree_partitioning_invariants(self, rankings, radius):
        partitions = bktree_partition(list(rankings.rankings), footrule_topk_raw, radius)
        validate_partitions(partitions, list(rankings.rankings), footrule_topk_raw, radius)


class TestCoarseIndexProperty:
    @given(
        ranking_set_strategy(min_size=4, max_size=25),
        ranking_strategy(),
        st.sampled_from([0.1, 0.2, 0.3]),
        st.sampled_from([0.1, 0.3, 0.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_coarse_search_has_no_false_negatives_or_positives(
        self, rankings, query, theta, theta_c
    ):
        coarse = CoarseSearch(rankings, theta_c=theta_c)
        expected = {
            r.rid
            for r in rankings
            if footrule_topk_raw(query, r) <= theta * max_footrule_distance(K)
        }
        assert coarse.search(query, theta).rids == expected


class TestAlgorithmEquivalenceProperty:
    @given(
        ranking_set_strategy(min_size=4, max_size=30),
        ranking_strategy(),
        st.sampled_from([0.05, 0.15, 0.25]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_inverted_index_algorithms_agree(self, rankings, query, theta):
        reference = FilterValidate(rankings).search(query, theta).rids
        assert FilterValidateDrop(rankings).search(query, theta).rids == reference
        assert ListMerge(rankings).search(query, theta).rids == reference
        assert BlockedPruneDrop(rankings).search(query, theta).rids == reference
