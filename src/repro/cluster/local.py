"""An in-process cluster: real servers, real sockets, one test harness.

:class:`LocalCluster` spins up N *empty* :class:`DatabaseServer`s on
ephemeral loopback ports, assembles a :class:`Coordinator` over them, and
(optionally) serves the coordinator itself over TCP — the full topology of
``repro cluster up``, inside one process.  Tests and the demo use it to
exercise the honest code paths: provisioning over wire DDL, group-commit
WAL shipping, heartbeat-driven failover, online resharding.

Killing a node is deliberately crude: :meth:`kill_primary` closes the
node's server *and* database with no farewell, so in-flight requests see
``collection_closed`` or a torn connection — the same signals a crashed
process produces — and the coordinator has to recover the hard way.
"""

from __future__ import annotations

from typing import Optional

from repro.api.database import Database
from repro.api.server import DatabaseServer
from repro.cluster.coordinator import Coordinator
from repro.cluster.routing import DEFAULT_NUM_SLOTS

__all__ = ["LocalCluster"]


class _Member:
    """One shard node: its database, server, and advertised address."""

    def __init__(self) -> None:
        self.database = Database()
        self.server = DatabaseServer(self.database, port=0)
        host, port = self.server.start()
        self.address = f"{host}:{port}"
        self.killed = False

    def kill(self) -> None:
        if self.killed:
            return
        self.killed = True
        self.server.close()
        self.database.close()


class LocalCluster:
    """A self-contained ``shards x (1 + replicas)`` topology (+ spares)."""

    def __init__(
        self,
        *,
        shards: int = 2,
        replicas: int = 1,
        spares: int = 0,
        collection: str = "default",
        algorithm: Optional[str] = None,
        num_slots: int = DEFAULT_NUM_SLOTS,
        heartbeat_interval: float = 0.1,
        miss_threshold: int = 2,
        ship_interval: float = 0.01,
        serve_coordinator: bool = False,
        timeout: float = 10.0,
    ) -> None:
        self._members: dict[str, _Member] = {}
        for _ in range(shards * (1 + replicas) + spares):
            member = _Member()
            self._members[member.address] = member
        self.coordinator = Coordinator(
            list(self._members),
            collection=collection,
            num_shards=shards,
            replicas=replicas,
            num_slots=num_slots,
            algorithm=algorithm,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            ship_interval=ship_interval,
            timeout=timeout,
        )
        self._coordinator_server: Optional[DatabaseServer] = None
        if serve_coordinator:
            # bind before start() so routing tables advertise the real port
            self._coordinator_server = DatabaseServer(self.coordinator, port=0)
            host, port = self._coordinator_server.address
            self.coordinator.address = f"{host}:{port}"
        self._closed = False

    def start(self) -> "LocalCluster":
        self.coordinator.start()
        if self._coordinator_server is not None:
            self._coordinator_server.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.coordinator.close()
        if self._coordinator_server is not None:
            self._coordinator_server.close()
        for member in self._members.values():
            member.kill()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- topology --------------------------------------------------------------------

    @property
    def addresses(self) -> list[str]:
        return list(self._members)

    @property
    def coordinator_address(self) -> Optional[str]:
        """``host:port`` of the served coordinator (``serve_coordinator=True``)."""
        return self.coordinator.address

    def primary_of(self, shard_id: int) -> str:
        return self.coordinator.routing_table.shard(shard_id).primary

    # -- chaos -----------------------------------------------------------------------

    def kill_node(self, address: str) -> None:
        """Hard-stop one node: close its server and database, no farewell."""
        self._members[address].kill()

    def kill_primary(self, shard_id: int = 0) -> str:
        """Hard-stop the current primary of ``shard_id``; returns its address."""
        address = self.primary_of(shard_id)
        self.kill_node(address)
        return address

    def is_killed(self, address: str) -> bool:
        return self._members[address].killed

    def __repr__(self) -> str:
        alive = sum(not member.killed for member in self._members.values())
        return f"LocalCluster(nodes={len(self._members)}, alive={alive})"
