"""Tests for the blocked inverted index (Section 6.3)."""

import pytest

from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking, RankingSet
from repro.core.stats import SearchStats
from repro.invindex.blocked import BlockedInvertedIndex


@pytest.fixture()
def index(paper_rankings):
    return BlockedInvertedIndex.build(paper_rankings)


class TestBuild:
    def test_empty_collection_rejected(self):
        with pytest.raises(EmptyDatasetError):
            BlockedInvertedIndex.build(RankingSet(k=3))

    def test_blocks_sorted_by_rank(self, index, paper_rankings):
        for item in paper_rankings.item_domain():
            ranks = [block.rank for block in index.blocks_for(item)]
            assert ranks == sorted(ranks)
            assert len(ranks) == len(set(ranks)), "one block per rank value"

    def test_blocks_partition_the_postings(self, index, paper_rankings):
        for item in paper_rankings.item_domain():
            rids = [p.rid for block in index.blocks_for(item) for p in block.postings]
            expected = [r.rid for r in paper_rankings if item in r]
            assert sorted(rids) == sorted(expected)

    def test_block_members_have_the_block_rank(self, index, paper_rankings):
        for item in paper_rankings.item_domain():
            for block in index.blocks_for(item):
                for posting in block.postings:
                    assert paper_rankings[posting.rid].rank_of(item) == block.rank

    def test_paper_figure4_item1_blocks(self, index):
        """Item 1's blocks match Figure 4: ranks 0,1,2,3,4 with sizes 3,3,2,1,1."""
        blocks = index.blocks_for(1)
        assert [(block.rank, len(block)) for block in blocks] == [
            (0, 3),
            (1, 3),
            (2, 2),
            (3, 1),
            (4, 1),
        ]

    def test_num_postings_and_blocks(self, index, paper_rankings):
        assert index.num_postings() == len(paper_rankings) * paper_rankings.k
        assert index.num_blocks() >= index.num_items()

    def test_unknown_item(self, index):
        assert index.blocks_for(98765) == []
        assert index.list_length(98765) == 0

    def test_memory_estimate_positive(self, index):
        assert index.memory_estimate_bytes() > 0

    def test_repr(self, index):
        assert "BlockedInvertedIndex" in repr(index)


class TestAdmissibleBlocks:
    def test_only_blocks_within_threshold_returned(self, index):
        # query places item 1 at rank 0; with theta_raw = 1 only blocks at
        # ranks 0 and 1 are admissible
        admissible = list(index.admissible_blocks(1, query_rank=0, theta_raw=1))
        assert [block.rank for block in admissible] == [0, 1]

    def test_all_blocks_admissible_for_large_threshold(self, index):
        admissible = list(index.admissible_blocks(1, query_rank=0, theta_raw=100))
        assert len(admissible) == len(index.blocks_for(1))

    def test_skip_counters(self, index):
        stats = SearchStats()
        list(index.admissible_blocks(1, query_rank=0, theta_raw=1, stats=stats))
        assert stats.blocks_accessed == 2
        assert stats.blocks_skipped == len(index.blocks_for(1)) - 2

    def test_paper_block_access_example(self):
        """The Section 6.3 example: q=[3,2,1], theta=1 accesses less than half the postings."""
        rankings = RankingSet.from_lists(
            [
                [1, 2, 3],
                [1, 2, 9],
                [9, 8, 1],
                [7, 1, 9],
                [6, 1, 5],
                [4, 5, 1],
                [1, 6, 2],
                [7, 1, 6],
                [2, 5, 9],
                [6, 3, 2],
            ]
        )
        index = BlockedInvertedIndex.build(rankings)
        query = Ranking([3, 2, 1])
        stats = SearchStats()
        total = 0
        for item in query.items:
            for block in index.admissible_blocks(item, query.rank_of(item), 1, stats=stats):
                total += len(block)
        full = sum(index.list_length(item) for item in query.items)
        assert total < full
        assert stats.blocks_skipped > 0
