"""One function per figure of the paper's evaluation section.

Every function returns a plain dictionary with the series the corresponding
figure plots (so tests and benchmarks can assert on the shapes) and accepts
scale parameters so the same code regenerates the figure at laptop scale or
closer to the paper's original sizes.  ``print_report=True`` renders the
series as a text table via :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.calibration import calibrate_costs
from repro.analysis.report import format_series
from repro.analysis.stats import cost_model_inputs_for
from repro.core.cost_model import CostModel
from repro.core.ranking import RankingSet
from repro.algorithms.registry import COMPARISON_ALGORITHMS, DFC_ALGORITHMS
from repro.experiments.harness import (
    ExperimentSetup,
    compare_algorithms,
    measurements_as_series,
    run_workload,
)
from repro.algorithms.metric_search import BKTreeSearch, MTreeSearch
from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.coarse import CoarseSearch
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries
from repro.datasets.yago import yago_like_dataset

#: Default comparison thresholds used throughout the paper's evaluation.
DEFAULT_THETAS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)

#: Default coarse-index tuning used in the paper's comparison figures.
DEFAULT_COARSE_KWARGS = {"Coarse": {"theta_c": 0.5}, "Coarse+Drop": {"theta_c": 0.06}}


def _dataset(name: str, n: int, k: int) -> RankingSet:
    if name == "nyt":
        return nyt_like_dataset(n=n, k=k)
    if name == "yago":
        return yago_like_dataset(n=n, k=k)
    raise ValueError(f"unknown dataset preset {name!r}")


# ---------------------------------------------------------------------------
# Figure 3 — cost-model curves
# ---------------------------------------------------------------------------


def figure3_cost_model(
    datasets: Sequence[str] = ("nyt", "yago"),
    n: int = 2000,
    k: int = 10,
    theta: float = 0.2,
    theta_c_grid: Sequence[float] | None = None,
    calibrate: bool = False,
    print_report: bool = False,
) -> dict:
    """Model-predicted filter/validate/overall cost versus theta_C (Figure 3)."""
    grid = list(theta_c_grid) if theta_c_grid is not None else [round(0.05 * i, 2) for i in range(16)]
    output: dict = {"theta": theta, "datasets": {}}
    for name in datasets:
        rankings = _dataset(name, n, k)
        if calibrate:
            calibration = calibrate_costs(k)
            inputs = cost_model_inputs_for(
                rankings,
                cost_footrule=calibration.cost_footrule,
                cost_merge=calibration.cost_merge,
            )
        else:
            inputs = cost_model_inputs_for(rankings)
        model = CostModel(inputs)
        feasible = [value for value in grid if value + theta < 1.0]
        curve = model.cost_curve(theta, feasible)
        series = {
            "filter": {point.theta_c: point.filter_cost for point in curve},
            "validate": {point.theta_c: point.validate_cost for point in curve},
            "overall": {point.theta_c: point.total for point in curve},
        }
        recommendation = model.recommend_theta_c(theta, feasible)
        output["datasets"][name] = {
            "series": series,
            "recommended_theta_c": recommendation.theta_c,
            "zipf_s": inputs.zipf_s,
        }
        if print_report:
            print(format_series(series, x_label="theta_C", title=f"Figure 3 ({name}), theta={theta}"))
            print(f"model-recommended theta_C: {recommendation.theta_c}\n")
    return output


# ---------------------------------------------------------------------------
# Figure 5 — M-tree vs BK-tree
# ---------------------------------------------------------------------------


def figure5_metric_trees(
    n: int = 1000,
    ks: Sequence[int] = (5, 10, 15, 20, 25),
    theta_for_k_sweep: float = 0.1,
    thetas: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3),
    k_for_theta_sweep: int = 10,
    num_queries: int = 20,
    print_report: bool = False,
) -> dict:
    """BK-tree versus M-tree query time: vary k and vary theta (Figure 5, NYT)."""
    by_k: dict[str, dict[float, float]] = {"BK-tree": {}, "M-tree": {}}
    for k in ks:
        rankings = nyt_like_dataset(n=n, k=k)
        queries = sample_queries(rankings, num_queries)
        for cls in (BKTreeSearch, MTreeSearch):
            algorithm = cls.build(rankings)
            measurement = run_workload(algorithm, queries, theta_for_k_sweep)
            by_k[algorithm.name][k] = measurement.wall_seconds

    rankings = nyt_like_dataset(n=n, k=k_for_theta_sweep)
    queries = sample_queries(rankings, num_queries)
    by_theta: dict[str, dict[float, float]] = {"BK-tree": {}, "M-tree": {}}
    for cls in (BKTreeSearch, MTreeSearch):
        algorithm = cls.build(rankings)
        for theta in thetas:
            measurement = run_workload(algorithm, queries, theta)
            by_theta[algorithm.name][theta] = measurement.wall_seconds

    if print_report:
        print(format_series(by_k, x_label="k", title=f"Figure 5 (left): vary k, theta={theta_for_k_sweep}"))
        print(format_series(by_theta, x_label="theta", title=f"Figure 5 (right): vary theta, k={k_for_theta_sweep}"))
    return {"by_k": by_k, "by_theta": by_theta}


# ---------------------------------------------------------------------------
# Figure 6 — BK-tree vs inverted index (F&V)
# ---------------------------------------------------------------------------


def figure6_bktree_vs_invindex(
    n: int = 1000,
    ks: Sequence[int] = (5, 10, 15, 20, 25),
    theta_for_k_sweep: float = 0.1,
    thetas: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3),
    k_for_theta_sweep: int = 10,
    num_queries: int = 20,
    print_report: bool = False,
) -> dict:
    """BK-tree versus plain inverted index (F&V) query time (Figure 6, NYT)."""
    by_k: dict[str, dict[float, float]] = {"BK-tree": {}, "F&V": {}}
    for k in ks:
        rankings = nyt_like_dataset(n=n, k=k)
        queries = sample_queries(rankings, num_queries)
        for cls in (BKTreeSearch, FilterValidate):
            algorithm = cls.build(rankings)
            measurement = run_workload(algorithm, queries, theta_for_k_sweep)
            by_k[algorithm.name][k] = measurement.wall_seconds

    rankings = nyt_like_dataset(n=n, k=k_for_theta_sweep)
    queries = sample_queries(rankings, num_queries)
    by_theta: dict[str, dict[float, float]] = {"BK-tree": {}, "F&V": {}}
    for cls in (BKTreeSearch, FilterValidate):
        algorithm = cls.build(rankings)
        for theta in thetas:
            measurement = run_workload(algorithm, queries, theta)
            by_theta[algorithm.name][theta] = measurement.wall_seconds

    if print_report:
        print(format_series(by_k, x_label="k", title=f"Figure 6 (left): vary k, theta={theta_for_k_sweep}"))
        print(format_series(by_theta, x_label="theta", title=f"Figure 6 (right): vary theta, k={k_for_theta_sweep}"))
    return {"by_k": by_k, "by_theta": by_theta}


# ---------------------------------------------------------------------------
# Figure 7 — measured coarse-index trade-off over theta_C
# ---------------------------------------------------------------------------


def figure7_coarse_tradeoff(
    datasets: Sequence[str] = ("nyt", "yago"),
    n: int = 1500,
    k: int = 10,
    theta: float = 0.2,
    theta_c_grid: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    num_queries: int = 30,
    print_report: bool = False,
) -> dict:
    """Measured filtering/validation/overall time versus theta_C (Figure 7).

    Also reports the theta_C the cost model recommends and the measured
    performance at that recommendation (the small rectangle in the paper's
    plots) so Table 5 can be derived from the same data.
    """
    output: dict = {"theta": theta, "datasets": {}}
    for name in datasets:
        setup = ExperimentSetup.create(dataset=name, n=n, k=k, num_queries=num_queries)
        series: dict[str, dict[float, float]] = {"filtering": {}, "validation": {}, "overall": {}}
        for theta_c in theta_c_grid:
            if theta + theta_c >= 1.0:
                continue
            algorithm = CoarseSearch.build(setup.rankings, theta_c=theta_c)
            measurement = run_workload(algorithm, setup.queries, theta)
            series["filtering"][theta_c] = measurement.stats.filter_seconds
            series["validation"][theta_c] = measurement.stats.validate_seconds
            series["overall"][theta_c] = measurement.wall_seconds
        calibration = calibrate_costs(k, repetitions=500)
        inputs = cost_model_inputs_for(
            setup.rankings,
            cost_footrule=calibration.cost_footrule,
            cost_merge=calibration.cost_merge,
        )
        model = CostModel(inputs)
        recommendation = model.recommend_theta_c(theta, [value for value in theta_c_grid if value + theta < 1.0])
        best_measured_theta_c = min(series["overall"], key=series["overall"].get)
        output["datasets"][name] = {
            "series": series,
            "model_theta_c": recommendation.theta_c,
            "model_overall_seconds": series["overall"].get(recommendation.theta_c),
            "best_measured_theta_c": best_measured_theta_c,
            "best_measured_seconds": series["overall"][best_measured_theta_c],
        }
        if print_report:
            print(format_series(series, x_label="theta_C", title=f"Figure 7 ({name}), theta={theta}"))
            print(
                f"model theta_C={recommendation.theta_c}  "
                f"best measured theta_C={best_measured_theta_c}\n"
            )
    return output


# ---------------------------------------------------------------------------
# Figures 8 and 9 — algorithm comparison on both datasets
# ---------------------------------------------------------------------------


def _comparison_figure(
    dataset: str,
    n: int,
    ks: Sequence[int],
    thetas: Sequence[float],
    num_queries: int,
    algorithms: Sequence[str],
    print_report: bool,
    title: str,
) -> dict:
    output: dict = {"dataset": dataset, "by_k": {}}
    for k in ks:
        setup = ExperimentSetup.create(dataset=dataset, n=n, k=k, num_queries=num_queries)
        measurements = compare_algorithms(setup, algorithms, thetas, DEFAULT_COARSE_KWARGS)
        series = measurements_as_series(measurements, value="wall_seconds")
        output["by_k"][k] = {
            "series": series,
            "rows": [measurement.as_row() for measurement in measurements],
        }
        if print_report:
            print(format_series(series, x_label="theta", title=f"{title}, k={k}"))
    return output


def figure8_nyt_comparison(
    n: int = 1500,
    ks: Sequence[int] = (10, 20),
    thetas: Sequence[float] = DEFAULT_THETAS,
    num_queries: int = 30,
    algorithms: Sequence[str] = COMPARISON_ALGORITHMS,
    print_report: bool = False,
) -> dict:
    """All algorithms on the NYT-like dataset (Figure 8)."""
    return _comparison_figure(
        "nyt", n, ks, thetas, num_queries, algorithms, print_report, "Figure 8 (NYT)"
    )


def figure9_yago_comparison(
    n: int = 1500,
    ks: Sequence[int] = (10, 20),
    thetas: Sequence[float] = DEFAULT_THETAS,
    num_queries: int = 30,
    algorithms: Sequence[str] = COMPARISON_ALGORITHMS,
    print_report: bool = False,
) -> dict:
    """All algorithms on the Yago-like dataset (Figure 9)."""
    return _comparison_figure(
        "yago", n, ks, thetas, num_queries, algorithms, print_report, "Figure 9 (Yago)"
    )


# ---------------------------------------------------------------------------
# Figure 10 — distance-function calls
# ---------------------------------------------------------------------------


def figure10_distance_calls(
    datasets: Sequence[str] = ("nyt", "yago"),
    n: int = 1500,
    ks: Sequence[int] = (10, 20),
    thetas: Sequence[float] = DEFAULT_THETAS,
    num_queries: int = 30,
    algorithms: Sequence[str] = DFC_ALGORITHMS,
    print_report: bool = False,
) -> dict:
    """Number of distance-function calls per algorithm (Figure 10)."""
    output: dict = {}
    for dataset in datasets:
        output[dataset] = {}
        for k in ks:
            setup = ExperimentSetup.create(dataset=dataset, n=n, k=k, num_queries=num_queries)
            measurements = compare_algorithms(setup, algorithms, thetas, DEFAULT_COARSE_KWARGS)
            series = measurements_as_series(measurements, value="distance_calls")
            output[dataset][k] = {
                "series": series,
                "rows": [measurement.as_row() for measurement in measurements],
            }
            if print_report:
                print(
                    format_series(
                        series, x_label="theta", title=f"Figure 10 ({dataset}), k={k} — DFC"
                    )
                )
    return output
