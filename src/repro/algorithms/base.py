"""Common interface and helpers shared by all query-processing algorithms."""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.distances import (
    footrule_topk_raw,
    max_footrule_distance,
    normalize_distance,
    unnormalize_distance,
)
from repro.core.errors import InvalidThresholdError
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import PhaseTimer, SearchStats


class RankingSearchAlgorithm(abc.ABC):
    """A similarity-range-search algorithm over a fixed ranking collection.

    Subclasses are constructed (usually via a ``build`` classmethod) over a
    :class:`RankingSet` and answer ad-hoc queries through :meth:`search`.
    The query ranking and the normalised threshold ``theta`` are both
    supplied at query time, exactly as in the paper's problem statement.
    """

    #: Registry name; subclasses override with the paper's algorithm name.
    name: str = "abstract"

    def __init__(self, rankings: RankingSet) -> None:
        self._rankings = rankings

    @property
    def rankings(self) -> RankingSet:
        """The indexed ranking collection."""
        return self._rankings

    @property
    def k(self) -> int:
        """Ranking size of the indexed collection."""
        return self._rankings.k

    # -- query interface ---------------------------------------------------------

    def search(self, query: Ranking, theta: float) -> SearchResult:
        """Answer one similarity range query.

        Parameters
        ----------
        query:
            The query ranking; must have the same size ``k`` as the indexed
            collection.
        theta:
            Normalised distance threshold in ``[0, 1)``.

        Returns
        -------
        SearchResult
            All rankings within normalised distance ``theta`` of the query,
            together with the counters recorded while producing them.
        """
        self._check_query(query, theta)
        result = SearchResult(query=query, theta=theta, algorithm=self.name)
        with PhaseTimer(result.stats, "total_seconds"):
            self._search(query, theta, result)
        return result.finalize()

    @abc.abstractmethod
    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        """Algorithm-specific query processing filling ``result`` in place."""

    # -- shared helpers ------------------------------------------------------------

    def theta_raw(self, theta: float) -> float:
        """Convert a normalised threshold to the raw integer distance scale."""
        return unnormalize_distance(theta, self.k)

    def _check_query(self, query: Ranking, theta: float) -> None:
        if query.size != self.k:
            raise InvalidThresholdError(
                theta, f"query size {query.size} does not match indexed size {self.k}"
            )
        if not 0.0 <= theta < 1.0:
            raise InvalidThresholdError(theta, "theta must lie in [0, 1)")

    def _validate_candidates(
        self,
        candidate_rids,
        query: Ranking,
        theta: float,
        result: SearchResult,
        stats: Optional[SearchStats] = None,
    ) -> None:
        """Compute the exact distance of each candidate and keep the qualifying ones.

        Every exact evaluation is counted as one distance-function call, the
        paper's DFC measure.
        """
        stats = stats if stats is not None else result.stats
        theta_raw = self.theta_raw(theta)
        maximum = max_footrule_distance(self.k)
        for rid in candidate_rids:
            ranking = self._rankings[rid]
            stats.distance_calls += 1
            separation = footrule_topk_raw(query, ranking)
            if separation <= theta_raw:
                result.add(rid, ranking, separation / maximum)

    def _add_raw_match(self, result: SearchResult, ranking: Ranking, raw_distance: float) -> None:
        """Record a match given its raw distance."""
        assert ranking.rid is not None
        result.add(ranking.rid, ranking, normalize_distance(raw_distance, self.k))
