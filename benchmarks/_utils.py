"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run a workload exactly once per benchmark (no warm-up repetitions).

    The workloads are deterministic and relatively long-running, so a single
    round gives stable, comparable numbers without multiplying the suite's
    runtime.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_counters(benchmark, measurement) -> None:
    """Record the machine-independent counters next to the timing."""
    row = measurement.as_row()
    for key in ("distance_calls", "candidates", "postings_scanned", "results",
                "lists_dropped", "blocks_skipped", "partitions_visited"):
        benchmark.extra_info[key] = row.get(key, 0)
