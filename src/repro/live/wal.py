"""Write-ahead log: every mutation is durable before it is applied.

The log is a JSONL file — one mutation per line, in the order the mutations
were accepted — so a crashed or restarted service can rebuild its logical
state by replaying the file.  Records carry a monotonically increasing
sequence number; a checkpoint remembers the last sequence it covers, and a
restart replays only the records *after* it (the WAL tail).

A log whose path ends in ``.rbf`` is written in the RBF binary format
instead (:mod:`repro.codec`): one CRC32-checksummed ``KIND_WAL`` record
per mutation, with the items as a packed i64 column.  The durability
model, torn-tail tolerance, and replay semantics are identical — only
the bytes differ.  Bit flips that JSONL would silently misparse are
caught by the record checksum and raise :class:`CorruptWalError`.

Durability model
----------------
``append`` always writes the line and flushes the Python buffer to the OS;
what happens next depends on the configured mode:

``no-sync`` (``sync=False``, the default)
    Never ``fsync``.  Power loss can drop acknowledged mutations that were
    still in the OS page cache; process crash loses nothing.
``fsync`` (``sync=True``)
    ``fsync`` after every record.  A mutation is power-loss durable before
    the caller sees it acknowledged, at one disk barrier per record.
``group-commit`` (``commit_batch`` and/or ``commit_interval``)
    Batch the barrier: records accumulate un-fsynced and one ``fsync``
    commits the whole batch — when ``commit_batch`` records are pending,
    when ``commit_interval`` seconds have passed since the batch opened,
    or when :meth:`sync` is called explicitly.  Per-batch sequence
    accounting is exposed as :attr:`appended_seq` (last record written)
    and :attr:`durable_seq` (last record covered by a barrier).

A torn final line (a crash mid-append) is tolerated by :meth:`replay` — the
partial record never took effect, so it is skipped — while corruption
anywhere *before* the tail raises :class:`CorruptWalError`, because silently
dropping an interior mutation would diverge the replayed state from the
served one.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.codec import (
    CorruptRecordError,
    TruncatedRecordError,
    pack_record,
    skip_record,
    unpack_record,
)
from repro.codec.records import KIND_WAL, decode_wal_payload, encode_wal_payload
from repro.core.errors import ReproError
from repro.devtools.locktrace import make_lock, mark_io
from repro.obs import names as metric_names
from repro.obs.metrics import COUNT_BUCKETS, get_registry

#: The mutation kinds a WAL record may carry.
WAL_OPERATIONS = ("insert", "delete", "upsert")

#: The durability modes a log can run under.
DURABILITY_MODES = ("no-sync", "fsync", "group-commit")

#: Path suffix that selects the RBF binary log format.
WAL_BINARY_SUFFIX = ".rbf"


def fsync_directory(path: Path) -> None:
    """``fsync`` a directory so a freshly created/renamed entry survives.

    ``rename``/``create`` only become power-loss durable once the containing
    directory's metadata hits the platter.  Platforms that cannot open a
    directory for syncing (notably Windows) are silently skipped.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CorruptWalError(ReproError):
    """An interior WAL record could not be decoded."""

    def __init__(self, path: Path, line_number: int, reason: str) -> None:
        self.path = path
        self.line_number = line_number
        super().__init__(f"corrupt WAL record at {path}:{line_number}: {reason}")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: sequence number, operation, key, payload."""

    seq: int
    op: str
    key: int
    items: Optional[tuple[int, ...]] = None

    def to_json(self) -> str:
        """Serialise to one JSONL line (no trailing newline)."""
        payload: dict = {"seq": self.seq, "op": self.op, "key": self.key}
        if self.items is not None:
            payload["items"] = list(self.items)
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        """Parse one JSONL line; raises ``ValueError`` on malformed input."""
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError("WAL record must be a JSON object")
        op = payload.get("op")
        if op not in WAL_OPERATIONS:
            raise ValueError(f"unknown WAL operation {op!r}")
        items = payload.get("items")
        if op == "delete":
            items = None
        elif not isinstance(items, list) or not items:
            raise ValueError(f"{op} record requires a non-empty 'items' list")
        return cls(
            seq=int(payload["seq"]),
            op=op,
            key=int(payload["key"]),
            items=None if items is None else tuple(int(item) for item in items),
        )

    def to_record(self) -> bytes:
        """Serialise to one framed RBF ``KIND_WAL`` record."""
        return pack_record(
            KIND_WAL, encode_wal_payload(self.seq, self.op, self.key, self.items)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        """Decode the payload of an RBF ``KIND_WAL`` record."""
        fields, end = decode_wal_payload(payload)
        if end != len(payload):
            raise CorruptRecordError(f"{len(payload) - end} trailing bytes", offset=end)
        items = fields["items"]
        return cls(
            seq=fields["seq"],
            op=fields["op"],
            key=fields["key"],
            items=None if items is None else tuple(items),
        )


class WriteAheadLog:
    """Append-only JSONL mutation log with tail-tolerant replay.

    Parameters
    ----------
    path:
        Log file location; created (with parents) on first append.
    sync:
        ``fsync`` after every append (the ``fsync`` mode).  Off by default:
        the benchmarks measure the in-process write path, and
        crash-consistency against power loss is a deployment decision.
    commit_batch:
        Group-commit: ``fsync`` once every this many pending records
        instead of per record.  Implies durable mode regardless of
        ``sync``.
    commit_interval:
        Group-commit: ``fsync`` once a batch has been open for this many
        seconds (checked on the append path — no timer thread).  May be
        combined with ``commit_batch``; whichever bound trips first
        commits.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "wal.jsonl")
    >>> wal = WriteAheadLog(path, commit_batch=2)
    >>> wal.append(WalRecord(seq=1, op="insert", key=0, items=(1, 2, 3)))
    >>> wal.durable_seq                       # batch of 2 not full yet
    0
    >>> wal.sync()                            # explicit barrier
    >>> wal.durable_seq
    1
    >>> [record.key for record in wal.replay()]
    [0]
    >>> wal.close()
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = False,
        commit_batch: Optional[int] = None,
        commit_interval: Optional[float] = None,
    ) -> None:
        if commit_batch is not None and commit_batch <= 0:
            raise ValueError(f"commit_batch must be positive, got {commit_batch}")
        if commit_interval is not None and commit_interval <= 0:
            raise ValueError(f"commit_interval must be positive, got {commit_interval}")
        self._path = Path(path)
        self._binary = self._path.suffix == WAL_BINARY_SUFFIX
        self._commit_batch = commit_batch
        self._commit_interval = commit_interval
        if commit_batch is not None or commit_interval is not None:
            self._durability = "group-commit"
        elif sync:
            self._durability = "fsync"
        else:
            self._durability = "no-sync"
        # Reentrant: close() re-enters through sync(), truncate_through()
        # through close().  REPRO_LOCKTRACE=1 swaps in a TracedLock.
        self._lock = make_lock("WriteAheadLog._lock", reentrant=True)
        self._handle = None  # guarded-by: _lock
        self._pending = 0  # guarded-by: _lock
        self._batch_started: Optional[float] = None  # guarded-by: _lock
        self._appended_seq = 0  # guarded-by: _lock
        self._durable_seq = 0  # guarded-by: _lock
        self._commits = 0  # guarded-by: _lock
        registry = get_registry()
        self._m_appends = registry.counter(
            metric_names.WAL_APPENDS_TOTAL, "Mutation records appended to the WAL.",
            durability=self._durability,
        )
        self._m_commits = registry.counter(
            metric_names.WAL_COMMITS_TOTAL, "fsync barriers issued (per record or per batch).",
            durability=self._durability,
        )
        self._m_batch = registry.histogram(
            metric_names.WAL_COMMIT_BATCH_RECORDS,
            "Records made durable by one fsync barrier.",
            buckets=COUNT_BUCKETS,
            durability=self._durability,
        )

    @property
    def path(self) -> Path:
        """The log file location."""
        return self._path

    @property
    def exists(self) -> bool:
        """Whether the log file is present on disk."""
        return self._path.exists()

    @property
    def durability(self) -> str:
        """One of :data:`DURABILITY_MODES`."""
        return self._durability

    @property
    def binary(self) -> bool:
        """Whether this log uses the RBF binary format (``.rbf`` path)."""
        return self._binary

    @property
    def appended_seq(self) -> int:
        """Sequence number of the last record written by this handle."""
        with self._lock:
            return self._appended_seq

    @property
    def durable_seq(self) -> int:
        """Sequence number of the last record covered by an ``fsync`` barrier.

        Always 0 in ``no-sync`` mode until :meth:`sync` is called; equal to
        :attr:`appended_seq` after every append in ``fsync`` mode.
        """
        with self._lock:
            return self._durable_seq

    @property
    def pending_records(self) -> int:
        """Records appended since the last barrier (the open batch)."""
        with self._lock:
            return self._pending

    @property
    def commits(self) -> int:
        """``fsync`` barriers issued so far (per-record or per-batch)."""
        with self._lock:
            return self._commits

    # -- writing -----------------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Write one mutation (buffered write + flush; barrier per the mode)."""
        with self._lock:
            if self._handle is None:
                self._open_for_append()
            if self._binary:
                self._handle.write(record.to_record())
            else:
                self._handle.write(record.to_json() + "\n")
            self._handle.flush()
            self._appended_seq = record.seq
            self._m_appends.inc()
            if self._durability == "fsync":
                self._commit()
                return
            self._pending += 1
            if self._durability != "group-commit":
                return
            if self._batch_started is None:
                self._batch_started = time.monotonic()
            batch_full = (
                self._commit_batch is not None and self._pending >= self._commit_batch
            )
            interval_up = (
                self._commit_interval is not None
                and time.monotonic() - self._batch_started >= self._commit_interval
            )
            if batch_full or interval_up:
                self._commit()

    def sync(self) -> None:
        """Explicit barrier: ``fsync`` whatever has been appended so far.

        Works in every mode — in ``no-sync`` it is the only way to get a
        durability guarantee, in ``group-commit`` it commits a partial
        batch, in ``fsync`` it is a no-op (nothing is ever pending).
        """
        with self._lock:
            if self._handle is None or self._durable_seq == self._appended_seq:
                return
            self._handle.flush()
            self._commit()

    # holds: _lock — the barrier and its accounting must be one atom
    def _commit(self) -> None:
        """``fsync`` the handle and account the batch as durable."""
        mark_io("fsync:wal")  # group commit *is* IO under the lock, by design
        os.fsync(self._handle.fileno())
        batch = self._appended_seq - self._durable_seq
        self._durable_seq = self._appended_seq
        self._pending = 0
        self._batch_started = None
        self._commits += 1
        self._m_commits.inc()
        if batch > 0:
            self._m_batch.observe(batch)

    # holds: _lock — called from append()'s hold
    def _open_for_append(self) -> None:
        created_parent = not self._path.parent.exists()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        existed = self._path.exists()
        self._trim_torn_tail()
        if self._binary:
            self._handle = open(self._path, "ab")
        else:
            self._handle = open(self._path, "a", encoding="utf-8")
        if not existed or created_parent:
            # make the new directory entry itself crash-durable
            fsync_directory(self._path.parent)

    def _trim_torn_tail(self) -> None:
        """Drop a partial final line left by a crash mid-append.

        The torn record never committed (replay skips it), but appending
        after it would glue the next record onto the same line and corrupt
        the log — so the tail is truncated back to the last newline before
        the first post-reopen append.
        """
        if not self._path.exists():
            return
        with open(self._path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            if self._binary:
                handle.seek(0)
                content = handle.read(size)
                keep = 0
                while keep < size:
                    try:
                        end = skip_record(content, keep)
                    except TruncatedRecordError:
                        break  # torn tail: drop it, keep everything before
                    except CorruptRecordError:
                        # A *complete* record with a damaged header is not a
                        # torn append — keep the file intact so replay (which
                        # also CRC-checks payloads) reports it.
                        keep = size
                        break
                    keep = end
                if keep == size:
                    return
            else:
                handle.seek(size - 1)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                content = handle.read(size)
                keep = content.rfind(b"\n") + 1  # 0 when the file is one torn line
            # Dropping an *uncommitted* torn tail needs no fsync: replay
            # already skips it, and the truncation becomes durable with the
            # first post-reopen commit's fsync.
            handle.truncate(keep)  # repro: noqa[fsync-discipline] uncommitted tail

    def close(self) -> None:
        """Commit a pending group-commit batch and close the handle.

        Idempotent; replay still works afterwards.  ``no-sync`` mode stays
        true to its name — close flushes to the OS but does not ``fsync``.
        """
        with self._lock:
            if self._handle is not None:
                if self._durability == "group-commit":
                    self.sync()
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[WalRecord]:
        """Yield the records with ``seq > after_seq`` in log order.

        The file is streamed line by line (replay cost is bounded by the log
        length, not by available memory).  A torn final line is skipped (the
        mutation never committed); a malformed interior line raises
        :class:`CorruptWalError`.

        Binary logs walk framed RBF records instead: a truncated final
        record is skipped (torn append), while any *complete* record with a
        bad magic, flag set, or checksum raises :class:`CorruptWalError` —
        even at the tail, because a failed CRC means the bytes changed after
        they were written, not that the append was interrupted.
        """
        if not self._path.exists():
            return
        if self._binary:
            yield from self._replay_binary(after_seq)
            return
        with open(self._path, encoding="utf-8") as handle:
            pending: Optional[tuple[int, str]] = None
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                if pending is not None:
                    record = self._decode(*pending, torn_ok=False)
                    assert record is not None
                    if record.seq > after_seq:
                        yield record
                pending = (line_number, line)
            if pending is not None:
                record = self._decode(*pending, torn_ok=True)
                if record is not None and record.seq > after_seq:
                    yield record

    def _decode(self, line_number: int, line: str, torn_ok: bool) -> Optional[WalRecord]:
        try:
            return WalRecord.from_json(line)
        except (ValueError, KeyError, TypeError) as error:
            if torn_ok:
                return None  # torn tail: the append never completed
            raise CorruptWalError(self._path, line_number, str(error)) from error

    def _replay_binary(self, after_seq: int) -> Iterator[WalRecord]:
        content = self._path.read_bytes()
        offset = 0
        record_number = 0
        while offset < len(content):
            record_number += 1
            try:
                kind, payload, end = unpack_record(content, offset)
                if kind != KIND_WAL:
                    raise CorruptRecordError(f"unexpected record kind {kind}")
                record = WalRecord.from_payload(payload)
            except TruncatedRecordError:
                return  # torn tail: the append never completed
            except CorruptRecordError as error:
                raise CorruptWalError(self._path, record_number, str(error)) from error
            if record.seq > after_seq:
                yield record
            offset = end

    def record_count(self) -> int:
        """Committed records currently in the file (torn tail excluded).

        A raw line scan, no JSON decoding — startup accounting should not
        re-parse the log the replay pass already decoded.  Binary logs
        walk record headers only (:func:`repro.codec.skip_record`), no
        CRC or decompression, for the same reason.
        """
        if not self._path.exists():
            return 0
        count = 0
        if self._binary:
            content = self._path.read_bytes()
            offset = 0
            while offset < len(content):
                try:
                    offset = skip_record(content, offset)
                except CorruptRecordError:
                    break  # torn or damaged tail; replay decides what it means
                count += 1
            return count
        with open(self._path, "rb") as handle:
            for line in handle:
                if line.endswith(b"\n") and line.strip():
                    count += 1
        return count

    def last_seq(self) -> int:
        """Sequence number of the newest committed record (0 when empty)."""
        seq = 0
        for record in self.replay():
            seq = record.seq
        return seq

    def truncate_through(self, seq: int) -> int:
        """Drop every committed record with ``seq`` at or below the given one.

        Called after a checkpoint has durably captured the state through
        ``seq``, so restarts replay (and startup reads) only the tail.  The
        rewrite is atomic *and* durable: the temp file is ``fsync``\\ ed
        before the rename and the directory after it, so a crash leaves
        either the old complete log or the new one — never a torn rewrite
        that loses acknowledged records.  Returns the number of records
        kept.
        """
        with self._lock:
            if not self._path.exists():
                return 0
            kept = list(self.replay(after_seq=seq))
            self.close()
            temporary = self._path.with_suffix(self._path.suffix + ".tmp")
            mark_io("fsync:wal-truncate")
            if self._binary:
                with open(temporary, "wb") as handle:
                    handle.write(b"".join(record.to_record() for record in kept))
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                with open(temporary, "w", encoding="utf-8") as handle:
                    handle.write("".join(record.to_json() + "\n" for record in kept))
                    handle.flush()
                    os.fsync(handle.fileno())
            temporary.replace(self._path)
            fsync_directory(self._path.parent)
            # the rewrite itself was fsynced, so every kept record is durable
            self._appended_seq = kept[-1].seq if kept else 0
            self._durable_seq = self._appended_seq
            self._pending = 0
            self._batch_started = None
            return len(kept)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"WriteAheadLog(path={str(self._path)!r}, durability={self._durability!r}, "
                f"pending={self._pending})"
            )
