"""Tests for the delta (prefix-extension) inverted index used by AdaptSearch."""

import pytest

from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking, RankingSet
from repro.core.stats import SearchStats
from repro.invindex.delta import DeltaInvertedIndex, _global_item_order


@pytest.fixture()
def index(paper_rankings):
    return DeltaInvertedIndex.build(paper_rankings)


class TestGlobalItemOrder:
    def test_rare_items_first(self, paper_rankings):
        order = _global_item_order(paper_rankings)
        frequencies = paper_rankings.item_frequencies()
        ordered_items = sorted(order, key=order.get)
        ordered_frequencies = [frequencies[item] for item in ordered_items]
        assert ordered_frequencies == sorted(ordered_frequencies)

    def test_order_is_total(self, paper_rankings):
        order = _global_item_order(paper_rankings)
        assert len(set(order.values())) == len(order)


class TestBuild:
    def test_empty_collection_rejected(self):
        with pytest.raises(EmptyDatasetError):
            DeltaInvertedIndex.build(RankingSet(k=3))

    def test_one_posting_per_ranking_per_level(self, paper_rankings, index):
        for level in range(1, paper_rankings.k + 1):
            level_postings = sum(
                len(index.level_list(level, item)) for item in paper_rankings.item_domain()
            )
            assert level_postings == len(paper_rankings)

    def test_total_postings(self, paper_rankings, index):
        assert index.num_postings() == len(paper_rankings) * paper_rankings.k

    def test_max_prefix_limits_levels(self, paper_rankings):
        truncated = DeltaInvertedIndex.build(paper_rankings, max_prefix=2)
        assert truncated.num_postings() == len(paper_rankings) * 2

    def test_level_lists_respect_frequency_order(self, paper_rankings, index):
        """The level-1 element of each ranking is its rarest item."""
        frequencies = paper_rankings.item_frequencies()
        for ranking in paper_rankings:
            rarest = min(ranking.items, key=lambda item: (frequencies[item], item))
            assert ranking.rid in index.level_list(1, rarest)

    def test_ordered_query_items(self, index, paper_rankings, query_k5):
        ordered = index.ordered_query_items(query_k5)
        assert sorted(ordered) == sorted(query_k5.items)
        positions = [index.item_order(item) for item in ordered]
        assert positions == sorted(positions)

    def test_item_order_unknown_item_is_last(self, index, paper_rankings):
        highest_known = max(index.item_order(item) for item in paper_rankings.item_domain())
        assert index.item_order(999999) > highest_known

    def test_memory_estimate_positive(self, index):
        assert index.memory_estimate_bytes() > 0

    def test_repr(self, index):
        assert "DeltaInvertedIndex" in repr(index)


class TestCandidates:
    def test_full_prefix_retrieves_all_overlapping_rankings(self, paper_rankings, index, query_k5):
        k = paper_rankings.k
        candidates = index.candidates_for_prefix(query_k5, k, k)
        expected = {r.rid for r in paper_rankings if query_k5.overlap(r) > 0}
        assert candidates == expected

    def test_prefix_filtering_never_loses_high_overlap_rankings(self, paper_rankings, index):
        """With prefixes of length k - omega + 1, every ranking sharing >= omega items survives."""
        k = paper_rankings.k
        query = Ranking([1, 2, 3, 4, 5])
        for omega in range(1, k + 1):
            prefix = k - omega + 1
            candidates = index.candidates_for_prefix(query, prefix, prefix)
            for ranking in paper_rankings:
                if query.overlap(ranking) >= omega:
                    assert ranking.rid in candidates

    def test_candidates_subset_of_full_prefix(self, index, query_k5, paper_rankings):
        k = paper_rankings.k
        all_candidates = index.candidates_for_prefix(query_k5, k, k)
        small = index.candidates_for_prefix(query_k5, 2, 2)
        assert small <= all_candidates

    def test_stats_recorded(self, index, query_k5):
        stats = SearchStats()
        index.candidates_for_prefix(query_k5, 3, 3, stats=stats)
        assert stats.lists_accessed == 9
        assert stats.candidates >= 0

    def test_estimate_upper_bounds_candidates(self, index, query_k5, paper_rankings):
        k = paper_rankings.k
        for prefix in range(1, k + 1):
            estimate = index.estimate_candidates(query_k5, prefix, prefix)
            actual = len(index.candidates_for_prefix(query_k5, prefix, prefix))
            assert estimate >= actual
