"""Tests for the plain inverted index."""

import pytest

from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking, RankingSet
from repro.core.stats import SearchStats
from repro.invindex.plain import PlainInvertedIndex


@pytest.fixture()
def index(small_rankings):
    return PlainInvertedIndex.build(small_rankings)


class TestBuild:
    def test_empty_collection_rejected(self):
        with pytest.raises(EmptyDatasetError):
            PlainInvertedIndex.build(RankingSet(k=3))

    def test_every_item_indexed(self, small_rankings, index):
        assert set(index.items()) == small_rankings.item_domain()

    def test_num_postings_equals_n_times_k(self, small_rankings, index):
        assert index.num_postings() == len(small_rankings) * small_rankings.k

    def test_list_contains_exactly_the_rankings_with_the_item(self, small_rankings, index):
        for item in small_rankings.item_domain():
            expected = {r.rid for r in small_rankings if item in r}
            assert set(index.list_for(item)) == expected

    def test_lists_are_id_sorted(self, index, small_rankings):
        for item in small_rankings.item_domain():
            entries = index.list_for(item)
            assert entries == sorted(entries)

    def test_list_length_matches_frequency(self, small_rankings, index):
        frequencies = small_rankings.item_frequencies()
        for item, frequency in frequencies.items():
            assert index.list_length(item) == frequency

    def test_unknown_item_has_empty_list(self, index):
        assert index.list_for(99999) == []
        assert index.list_length(99999) == 0

    def test_k_property(self, index, small_rankings):
        assert index.k == small_rankings.k

    def test_memory_estimate_positive_and_grows(self, small_rankings):
        index = PlainInvertedIndex.build(small_rankings)
        bigger = RankingSet.from_lists(
            [list(r.items) for r in small_rankings] + [[100, 101, 102, 103]]
        )
        assert PlainInvertedIndex.build(bigger).memory_estimate_bytes() > index.memory_estimate_bytes()

    def test_repr(self, index):
        assert "PlainInvertedIndex" in repr(index)


class TestCandidates:
    def test_candidates_are_overlapping_rankings(self, small_rankings, index, query_k4):
        candidates = index.candidates(query_k4)
        expected = {r.rid for r in small_rankings if query_k4.overlap(r) > 0}
        assert candidates == expected

    def test_disjoint_query_has_no_candidates(self, index):
        assert index.candidates(Ranking([500, 501, 502, 503])) == set()

    def test_candidates_with_subset_of_items(self, small_rankings, index, query_k4):
        candidates = index.candidates(query_k4, query_items=[2])
        expected = {r.rid for r in small_rankings if 2 in r}
        assert candidates == expected

    def test_stats_recorded(self, index, query_k4):
        stats = SearchStats()
        candidates = index.candidates(query_k4, stats=stats)
        assert stats.lists_accessed == query_k4.size
        assert stats.candidates == len(candidates)
        assert stats.postings_scanned >= len(candidates)
