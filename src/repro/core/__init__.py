"""Core building blocks for top-k-list similarity search.

This subpackage holds the paper's primary contribution (the coarse hybrid
index and its cost model) together with the ranking value type, the distance
functions, the distance bounds used for pruning, and the result/statistics
containers shared by every query-processing algorithm.
"""

from repro.core.bounds import (
    block_skip_bound,
    lower_bound_zero_overlap,
    min_overlap_for_threshold,
    minimal_distance_for_overlap,
    partial_distance_bounds,
    sufficient_lists,
)
from repro.core.coarse_index import CoarseIndex, Partition
from repro.core.cost_model import CostModel, CostModelInputs, ThetaCRecommendation
from repro.core.distances import (
    footrule_complete,
    footrule_topk,
    footrule_topk_raw,
    kendall_tau_complete,
    kendall_tau_topk,
    max_footrule_distance,
    normalize_distance,
    unnormalize_distance,
)
from repro.core.errors import (
    CollectionClosedError,
    DuplicateItemError,
    EmptyDatasetError,
    InvalidRankingError,
    InvalidRequestError,
    InvalidThresholdError,
    RankingSizeMismatchError,
    ReproError,
    UnknownCollectionError,
    UnknownKeyError,
)
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult, SearchMatch
from repro.core.stats import PhaseTimer, SearchStats

__all__ = [
    "Ranking",
    "RankingSet",
    "SearchResult",
    "SearchMatch",
    "SearchStats",
    "PhaseTimer",
    "CoarseIndex",
    "Partition",
    "CostModel",
    "CostModelInputs",
    "ThetaCRecommendation",
    "footrule_complete",
    "footrule_topk",
    "footrule_topk_raw",
    "kendall_tau_complete",
    "kendall_tau_topk",
    "max_footrule_distance",
    "normalize_distance",
    "unnormalize_distance",
    "block_skip_bound",
    "lower_bound_zero_overlap",
    "min_overlap_for_threshold",
    "minimal_distance_for_overlap",
    "partial_distance_bounds",
    "sufficient_lists",
    "ReproError",
    "InvalidRankingError",
    "DuplicateItemError",
    "RankingSizeMismatchError",
    "InvalidThresholdError",
    "EmptyDatasetError",
    "InvalidRequestError",
    "UnknownKeyError",
    "UnknownCollectionError",
    "CollectionClosedError",
]
