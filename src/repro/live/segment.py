"""Immutable sealed segments: a frozen memtable served by a real index.

When the memtable reaches the flush threshold it is sealed into a
``Segment``: an immutable :class:`~repro.core.ranking.RankingSet` (local ids
``0..m-1`` assigned in ascending key order) plus a parallel key map.  Any
registry algorithm can serve as the segment's index; instances are built
lazily per ``(algorithm, params)`` — exactly the discipline
:class:`~repro.service.sharding.ShardedIndex` uses for its shards — and
cached for the segment's lifetime, which is bounded by the next compaction.

A durable collection spills every sealed segment to an immutable run file
under ``segments/`` (:meth:`Segment.save` / :meth:`Segment.load`), so a
restart reloads the run directly instead of replaying the WAL records that
produced it.  The run format follows the path suffix — ``.json`` for the
text layout, ``.rbf`` for a zlib-packed columnar RBF record
(:mod:`repro.codec`) — so a directory can hold runs from both formats
side by side after an in-place migration.

Local ids ascend with keys, so per-segment tie order is consistent with the
global key order and bounded merges over segments reproduce a from-scratch
index's ``(distance, id)`` ordering.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from pathlib import Path

from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import SearchStats
from repro.algorithms.base import RankingSearchAlgorithm
from repro.algorithms.knn import exact_local_top
from repro.algorithms.registry import make_algorithm
from repro.live.manifest import read_run, write_run


class Segment:
    """One sealed, immutable run of rankings with lazily built indices.

    Parameters
    ----------
    entries:
        ``(key, ranking)`` pairs; sealed in ascending key order regardless
        of the order given.

    Examples
    --------
    >>> segment = Segment.seal([(3, Ranking([1, 2, 3])), (1, Ranking([7, 8, 9]))])
    >>> segment.keys
    (1, 3)
    >>> result = segment.search(Ranking([1, 2, 3]), theta=0.1, algorithm="F&V")
    >>> [segment.keys[match.rid] for match in result.matches]
    [3]
    """

    def __init__(self, entries: Sequence[tuple[int, Ranking]]) -> None:
        if not entries:
            raise ValueError("cannot seal an empty segment")
        ordered = sorted(entries, key=lambda entry: entry[0])
        self._keys = tuple(key for key, _ in ordered)
        self._rankings = RankingSet.from_rankings(ranking for _, ranking in ordered)
        self._instances: dict[tuple, RankingSearchAlgorithm] = {}
        self._lock = threading.Lock()

    @classmethod
    def seal(cls, entries: Sequence[tuple[int, Ranking]]) -> "Segment":
        """Freeze drained memtable entries into an immutable segment."""
        return cls(entries)

    # -- persistence -------------------------------------------------------------

    def save(self, path: Path) -> None:
        """Spill the sealed run to disk, atomically and ``fsync``\\ ed.

        The on-disk row order is exactly the in-memory local-id order, so
        tombstones recorded against this segment stay valid after a reload.
        """
        write_run(path, self._keys, self._rankings)

    @classmethod
    def load(cls, path: Path) -> "Segment":
        """Reload a spilled run; indices are rebuilt lazily on first query."""
        keys, rankings = read_run(path)
        return cls(list(zip(keys, (rankings[rid] for rid in range(len(rankings))))))

    # -- accessors ---------------------------------------------------------------

    @property
    def keys(self) -> tuple[int, ...]:
        """Logical key of each local ranking id, ascending."""
        return self._keys

    @property
    def rankings(self) -> RankingSet:
        """The sealed rankings (local ids ``0..m-1``)."""
        return self._rankings

    def __len__(self) -> int:
        return len(self._keys)

    # -- index management --------------------------------------------------------

    def index(self, algorithm: str, **kwargs) -> RankingSearchAlgorithm:
        """The (lazily built) instance of ``algorithm`` over this segment."""
        key = (algorithm, tuple(sorted(kwargs.items())))
        with self._lock:
            instance = self._instances.get(key)
        if instance is None:
            # build outside the lock: construction may be expensive and
            # concurrent queries should not serialise on it
            instance = make_algorithm(algorithm, self._rankings, **kwargs)
            with self._lock:
                instance = self._instances.setdefault(key, instance)
        return instance

    # -- queries -----------------------------------------------------------------

    def search(self, query: Ranking, theta: float, algorithm: str, **kwargs) -> SearchResult:
        """Answer one range query through the segment's index (local ids)."""
        return self.index(algorithm, **kwargs).search(query, theta)

    def top(
        self,
        query: Ranking,
        n: int,
        algorithm: str,
        initial_theta: float = 0.05,
        growth: float = 2.0,
        **kwargs,
    ) -> tuple[list[tuple[float, int]], SearchStats]:
        """Local exact top-``n`` as ``(distance, local id)`` plus search stats.

        Delegates to :func:`repro.algorithms.knn.exact_local_top`, the same
        expanding-radius + brute-force-fallback discipline the sharded k-NN
        fan-out uses per shard.
        """
        return exact_local_top(
            self.index(algorithm, **kwargs), self._rankings, query, n,
            initial_theta=initial_theta, growth=growth,
        )

    def __repr__(self) -> str:
        return f"Segment(size={len(self._keys)}, keys={self._keys[0]}..{self._keys[-1]})"
