"""Top-k ranking value types.

A *top-k ranking* (also called a top-k list in Fagin et al. 2003) is an
ordered list of ``k`` distinct item identifiers.  The left-most position is
the top-ranked item.  Following the paper, ranks run from ``0`` (best) to
``k - 1`` (worst) and an item that is not contained in a ranking is assigned
the artificial rank ``l = k`` when distances are computed.

Two classes are provided:

``Ranking``
    An immutable, hashable ranking with O(1) rank lookup.

``RankingSet``
    A collection of rankings of uniform size ``k`` with stable integer ids,
    the unit that all indices in this library are built over.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Optional

from repro.core.errors import (
    DuplicateItemError,
    InvalidRankingError,
    RankingSizeMismatchError,
)


class Ranking:
    """An immutable top-k list of distinct item identifiers.

    Parameters
    ----------
    items:
        The ranked item ids, best first.  Items may be any hashable value but
        are typically small integers.
    rid:
        Optional ranking identifier.  Ids are assigned by :class:`RankingSet`
        when rankings are added to a collection; standalone rankings (for
        example ad-hoc queries) may leave it as ``None``.

    Examples
    --------
    >>> r = Ranking([2, 5, 4, 3])
    >>> r.size
    4
    >>> r.rank_of(5)
    1
    >>> r.rank_of(99, default=r.size)
    4
    """

    __slots__ = ("_items", "_ranks", "_rid")

    def __init__(self, items: Sequence[int] | Iterable[int], rid: Optional[int] = None) -> None:
        items_tuple = tuple(items)
        if not items_tuple:
            raise InvalidRankingError("a ranking must contain at least one item")
        ranks: dict[int, int] = {}
        for position, item in enumerate(items_tuple):
            if item in ranks:
                raise DuplicateItemError(item)
            ranks[item] = position
        self._items = items_tuple
        self._ranks = ranks
        self._rid = rid

    # -- basic accessors ---------------------------------------------------

    @property
    def items(self) -> tuple[int, ...]:
        """The ranked items, best first."""
        return self._items

    @property
    def rid(self) -> Optional[int]:
        """The ranking id inside its :class:`RankingSet`, if assigned."""
        return self._rid

    @property
    def size(self) -> int:
        """The ranking length ``k``."""
        return len(self._items)

    @property
    def domain(self) -> frozenset[int]:
        """The set of items contained in the ranking (``D_tau``)."""
        return frozenset(self._ranks)

    def rank_of(self, item: int, default: Optional[int] = None) -> int:
        """Return the rank of ``item`` (0 = best).

        If the item is not contained in the ranking, ``default`` is returned
        when given, otherwise a :class:`KeyError` is raised.  Passing
        ``default=self.size`` yields the paper's convention ``tau(i) = l = k``
        for missing items.
        """
        if default is None:
            return self._ranks[item]
        return self._ranks.get(item, default)

    def __contains__(self, item: object) -> bool:
        return item in self._ranks

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, position: int) -> int:
        return self._items[position]

    def rank_map(self) -> Mapping[int, int]:
        """A read-only view of the item -> rank mapping."""
        return dict(self._ranks)

    # -- relations between rankings ----------------------------------------

    def overlap(self, other: "Ranking") -> int:
        """Number of items shared with ``other``."""
        if len(self._ranks) > len(other._ranks):
            return other.overlap(self)
        return sum(1 for item in self._ranks if item in other._ranks)

    def with_rid(self, rid: int) -> "Ranking":
        """Return a copy of this ranking carrying the given id."""
        clone = Ranking.__new__(Ranking)
        clone._items = self._items
        clone._ranks = self._ranks
        clone._rid = rid
        return clone

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        rid = "" if self._rid is None else f", rid={self._rid}"
        return f"Ranking({list(self._items)!r}{rid})"


class RankingSet:
    """A collection of rankings of uniform size ``k`` with dense integer ids.

    The ranking id of the i-th added ranking is ``i``; all indices in the
    library refer to rankings through these ids.

    Examples
    --------
    >>> rs = RankingSet.from_lists([[2, 5, 4, 3], [1, 4, 5, 9]])
    >>> len(rs)
    2
    >>> rs.k
    4
    >>> rs[1].items
    (1, 4, 5, 9)
    """

    def __init__(self, k: Optional[int] = None) -> None:
        self._rankings: list[Ranking] = []
        self._k = k

    # -- construction --------------------------------------------------------

    @classmethod
    def from_lists(cls, lists: Iterable[Sequence[int]], k: Optional[int] = None) -> "RankingSet":
        """Build a ranking set from plain item-id sequences."""
        ranking_set = cls(k=k)
        for entry in lists:
            ranking_set.add(entry)
        return ranking_set

    @classmethod
    def from_rankings(cls, rankings: Iterable[Ranking]) -> "RankingSet":
        """Build a ranking set from existing :class:`Ranking` objects."""
        ranking_set = cls()
        for ranking in rankings:
            ranking_set.add(ranking.items)
        return ranking_set

    def add(self, items: Sequence[int] | Ranking) -> Ranking:
        """Add one ranking and return the stored (id-carrying) copy."""
        if isinstance(items, Ranking):
            candidate = items
        else:
            candidate = Ranking(items)
        if self._k is None:
            self._k = candidate.size
        elif candidate.size != self._k:
            raise RankingSizeMismatchError(self._k, candidate.size)
        stored = candidate.with_rid(len(self._rankings))
        self._rankings.append(stored)
        return stored

    # -- accessors ------------------------------------------------------------

    @property
    def k(self) -> int:
        """The uniform ranking size; raises if the set is empty and untyped."""
        if self._k is None:
            raise InvalidRankingError("ranking set is empty; k is undefined")
        return self._k

    @property
    def rankings(self) -> Sequence[Ranking]:
        """The stored rankings, indexable by ranking id."""
        return self._rankings

    def item_domain(self) -> set[int]:
        """The union of all item ids appearing in the collection."""
        domain: set[int] = set()
        for ranking in self._rankings:
            domain.update(ranking.items)
        return domain

    def item_frequencies(self) -> dict[int, int]:
        """Number of rankings each item appears in (document frequency)."""
        frequencies: dict[int, int] = {}
        for ranking in self._rankings:
            for item in ranking.items:
                frequencies[item] = frequencies.get(item, 0) + 1
        return frequencies

    def __len__(self) -> int:
        return len(self._rankings)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(self._rankings)

    def __getitem__(self, rid: int) -> Ranking:
        return self._rankings[rid]

    def __contains__(self, ranking: object) -> bool:
        if not isinstance(ranking, Ranking):
            return False
        return any(stored == ranking for stored in self._rankings)

    def __repr__(self) -> str:
        k = self._k if self._k is not None else "?"
        return f"RankingSet(n={len(self._rankings)}, k={k})"
