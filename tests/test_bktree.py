"""Tests for the BK-tree."""

import pytest

from repro.core.distances import footrule_topk_raw, max_footrule_distance
from repro.core.ranking import Ranking
from repro.core.stats import SearchStats
from repro.metric.bktree import BKTree


def brute_force(rankings, query, theta_raw):
    return {
        r.rid: footrule_topk_raw(query, r)
        for r in rankings
        if footrule_topk_raw(query, r) <= theta_raw
    }


@pytest.fixture()
def tree(paper_rankings):
    return BKTree.build(paper_rankings.rankings, footrule_topk_raw)


class TestConstruction:
    def test_size(self, tree, paper_rankings):
        assert len(tree) == len(paper_rankings)

    def test_all_rankings_stored(self, tree, paper_rankings):
        stored = {r.rid for r in tree}
        assert stored == {r.rid for r in paper_rankings}

    def test_empty_tree(self):
        tree = BKTree(footrule_topk_raw)
        assert len(tree) == 0
        assert tree.depth() == 0
        assert tree.range_search(Ranking([1, 2, 3]), 10) == []

    def test_children_edges_match_distance_to_parent(self, tree):
        def check(node):
            for edge, child in node.children.items():
                assert footrule_topk_raw(node.ranking, child.ranking) == edge
                check(child)

        assert tree.root is not None
        check(tree.root)

    def test_duplicates_chained_under_distance_zero(self):
        tree = BKTree(footrule_topk_raw)
        tree.insert(Ranking([1, 2, 3], rid=0))
        tree.insert(Ranking([1, 2, 3], rid=1))
        assert len(tree) == 2
        results = tree.range_search(Ranking([1, 2, 3]), 0)
        assert len(results) == 2

    def test_construction_distance_calls_counted(self, paper_rankings):
        tree = BKTree.build(paper_rankings.rankings, footrule_topk_raw)
        # every insertion after the first needs at least one distance evaluation
        assert tree.construction_distance_calls >= len(paper_rankings) - 1

    def test_depth_and_subtree_size(self, tree, paper_rankings):
        assert 1 <= tree.depth() <= len(paper_rankings)
        assert tree.root.subtree_size() == len(paper_rankings)

    def test_memory_estimate_positive(self, tree):
        assert tree.memory_estimate_bytes() > 0

    def test_repr(self, tree):
        assert "BKTree" in repr(tree)


class TestRangeSearch:
    @pytest.mark.parametrize("theta", [0.0, 0.1, 0.2, 0.3, 0.5, 0.9])
    def test_matches_brute_force(self, tree, paper_rankings, query_k5, theta):
        theta_raw = theta * max_footrule_distance(paper_rankings.k)
        expected = brute_force(paper_rankings, query_k5, theta_raw)
        found = {r.rid: d for r, d in tree.range_search(query_k5, theta_raw)}
        assert found == expected

    def test_exact_match_search(self, tree, paper_rankings):
        results = tree.range_search(paper_rankings[4], 0)
        assert {r.rid for r, _ in results} == {4}

    def test_stats_recorded(self, tree, query_k5):
        stats = SearchStats()
        tree.range_search(query_k5, 10, stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.distance_calls == stats.nodes_visited

    def test_search_visits_fewer_nodes_for_small_radius(self, nyt_small):
        tree = BKTree.build(nyt_small.rankings, footrule_topk_raw)
        query = nyt_small[0]
        small_stats, large_stats = SearchStats(), SearchStats()
        tree.range_search(query, 5, stats=small_stats)
        tree.range_search(query, max_footrule_distance(nyt_small.k), stats=large_stats)
        assert small_stats.nodes_visited < large_stats.nodes_visited
        assert large_stats.nodes_visited == len(nyt_small)

    def test_subtree_search_restricted(self, tree, paper_rankings, query_k5):
        assert tree.root is not None
        for child in tree.root.children.values():
            subtree_ids = {node.ranking.rid for node in child.iter_subtree()}
            results = tree.range_search_subtree(child, query_k5, 100)
            assert {r.rid for r, _ in results} <= subtree_ids

    def test_subtree_search_correct_within_subtree(self, tree, query_k5):
        assert tree.root is not None
        theta_raw = 20
        for child in tree.root.children.values():
            members = [node.ranking for node in child.iter_subtree()]
            expected = {
                r.rid for r in members if footrule_topk_raw(query_k5, r) <= theta_raw
            }
            found = {r.rid for r, _ in tree.range_search_subtree(child, query_k5, theta_raw)}
            assert found == expected
