"""A threaded TCP server exposing one :class:`Database` to remote clients.

:class:`DatabaseServer` is the stdlib-only wire layer over
:class:`~repro.api.database.Session`: every client connection gets its own
handler thread and its own session, all sharing the one database, and each
request frame (see :mod:`repro.api.protocol`) is answered with exactly one
response frame.  Because the session dispatch is byte-for-byte the same
code the in-process facade runs, a remote answer's
:meth:`~repro.api.responses.Response.result_bytes` equal the in-process
answer's — the server adds transport, never semantics.

The server speaks both protocol versions, decided per frame by
:func:`~repro.api.protocol.classify_frame`: bare v1 request payloads are
answered with bare response envelopes exactly as in PR 4, and v2 envelopes
(``id`` + ``kind`` + ``body``, opened by a ``hello`` handshake) are
answered with envelopes echoing the ``id`` — which is what lets a v2
client pipeline many requests over one connection.  Requests on one
connection are processed in arrival order (pipelining removes round-trip
waits, not ordering); the asyncio transport in :mod:`repro.api.aserver`
serves many *connections* without a thread each.

Error discipline: malformed requests come back as typed error envelopes on
a healthy connection; *frame-level* violations (torn frame, oversized
payload, not-JSON) are answered with one final ``protocol`` envelope and
the connection is closed, because a byte stream cannot be resynchronised
after a bad frame.  An ``admin``/``shutdown`` request is acknowledged and
then stops the whole server — that is how scripted deployments (and the CI
smoke job) exit cleanly.
"""

from __future__ import annotations

import socketserver
import threading
from dataclasses import replace
from typing import Optional

from repro.api.database import Database, Session
from repro.api.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    FrameTooLargeError,
    InboundFrame,
    classify_frame,
    encode_binary_frame,
    encode_frame,
    hello_data,
    push_envelope,
    read_frame_any,
    response_envelope,
    write_frame,
)
from repro.api.requests import SubscribeRequest, UnsubscribeRequest, parse_request
from repro.api.responses import Response, ResponseError, error_response
from repro.codec import CodecError
from repro.codec.wire import decode_request as decode_binary_request
from repro.codec.wire import encode_push as encode_binary_push
from repro.codec.wire import encode_response as encode_binary_response
from repro.core.errors import InvalidRequestError, UnsupportedProtocolError
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry
from repro.obs.tracing import Trace, use_trace

#: Host the server binds by default (loopback: serving is opt-in).
DEFAULT_HOST = "127.0.0.1"

#: Default TCP port of ``repro-topk serve`` (0 picks an ephemeral port).
DEFAULT_PORT = 7421


def envelope_error_payload(frame: InboundFrame) -> dict:
    """The reply to a malformed v2 envelope (the stream itself is healthy)."""
    response = Response(
        ok=False, error=ResponseError(code="invalid_request", message=frame.error or "")
    )
    return response_envelope(frame.request_id, response.to_dict())


def hello_reply_payload(frame: InboundFrame, max_frame_bytes: int) -> dict:
    """The reply to a v2 ``hello`` handshake."""
    response = Response(ok=True, data=hello_data(max_frame_bytes))
    return response_envelope(frame.request_id, response.to_dict())


def oversized_reply_response(error: FrameError) -> Response:
    """The (small) error envelope sent when an answer exceeds the frame limit."""
    return Response(
        ok=False,
        error=ResponseError(
            code="protocol",
            message=(
                f"response exceeds frame limit: {error}; retry with a"
                " smaller request (range queries support limit/cursor"
                " pagination; batches can be split into single queries)"
            ),
        ),
    )


#: v2 envelope kinds the servers intercept before session dispatch: they
#: change connection state (register/cancel pushes), which a bare
#: ``execute`` cannot express.
SUBSCRIPTION_KINDS = frozenset({"subscribe", "unsubscribe"})


def pre_hello_subscribe_response() -> Response:
    """The typed refusal for ``subscribe`` before the v2 ``hello`` handshake."""
    return error_response(
        UnsupportedProtocolError(
            "subscribe requires a protocol v2 connection opened with a hello"
            " handshake; send hello first"
        )
    )


def subscription_target_error(kind: str, collection: str) -> InvalidRequestError:
    """The refusal for subscribing to a collection that cannot change."""
    return InvalidRequestError(
        f"collection {collection!r} is {kind} (read-only); standing queries"
        " need a live collection"
    )


def unsubscribe_session(session: Session, request: UnsubscribeRequest) -> Response:
    """Cancel one of this connection's standing queries (both transports).

    Subscriptions are per-connection, so an id this session never
    registered (or already cancelled) is an invalid request, not a no-op.
    """
    sub = session.subscriptions.pop(request.subscription, None)
    if sub is None:
        raise InvalidRequestError(
            f"no subscription {request.subscription!r} on this connection"
        )
    session.database.subscriptions.unsubscribe(sub)
    return Response(ok=True, data={"unsubscribed": request.subscription})


def is_shutdown_payload(payload: Optional[dict]) -> bool:
    """Whether a dispatchable request payload asks the server to stop."""
    return (
        payload is not None
        and payload.get("type") == "admin"
        and payload.get("action") == "shutdown"
    )


class ServerMetrics:
    """Per-transport wire counters, shared by both server implementations.

    One instance per server; ``transport`` labels the samples so the two
    transports (``threaded``, ``asyncio``) stay distinguishable when both
    run in one process (the CLI never does, tests do).
    """

    def __init__(self, transport: str) -> None:
        registry = get_registry()
        self.connections = registry.counter(
            metric_names.SERVER_CONNECTIONS_TOTAL,
            "Client connections accepted.",
            transport=transport,
        )
        self.frames_in = registry.counter(
            metric_names.SERVER_FRAMES_TOTAL,
            "Wire frames processed.",
            transport=transport,
            direction="in",
        )
        self.frames_out = registry.counter(
            metric_names.SERVER_FRAMES_TOTAL,
            "Wire frames processed.",
            transport=transport,
            direction="out",
        )
        self.bytes_in = registry.counter(
            metric_names.SERVER_BYTES_TOTAL,
            "Wire bytes moved, frame headers included.",
            transport=transport,
            direction="in",
        )
        self.bytes_out = registry.counter(
            metric_names.SERVER_BYTES_TOTAL,
            "Wire bytes moved, frame headers included.",
            transport=transport,
            direction="out",
        )
        self.oversized = registry.counter(
            metric_names.SERVER_OVERSIZED_TOTAL,
            "Frames refused for exceeding the frame limit.",
            transport=transport,
        )


class _CountingStream:
    """File-object proxy totalling the bytes moved into a counter."""

    def __init__(self, stream, counter) -> None:
        self._stream = stream
        self._counter = counter

    def read(self, size: int = -1):
        data = self._stream.read(size)
        if data:
            self._counter.inc(len(data))
        return data

    def write(self, data) -> int:
        written = self._stream.write(data)
        self._counter.inc(len(data))
        return written

    def flush(self) -> None:
        self._stream.flush()


def execute_frame(session: Session, frame: InboundFrame) -> Response:
    """Dispatch one classified request frame, honouring its trace opt-in.

    Untraced frames (every v1 frame, and v2 envelopes without ``trace``)
    go straight to the session.  Traced frames get a :class:`Trace` —
    carrying the propagated id when the client sent one — installed for
    the dispatch, a root ``request:<kind>`` span, and the span tree
    attached to the response.  Both servers call this, so tracing works
    identically on either transport.
    """
    assert frame.payload is not None
    if not frame.traced:
        return session.execute(frame.payload)
    trace = Trace(frame.trace if isinstance(frame.trace, str) else None)
    with use_trace(trace):
        with trace.span(f"request:{frame.payload.get('type', frame.kind)}"):
            response = session.execute(frame.payload)
    return replace(response, trace=trace.to_dict())


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a frame loop over a dedicated session."""

    server: "_TCPServer"

    # response frames are small; without this a pipelined client's replies
    # queue behind Nagle + delayed ACKs (~40ms each, since a waiting client
    # sends nothing to piggyback ACKs on).  The asyncio transport disables
    # Nagle by default; this keeps both transports on equal footing.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        session = self.server.database.session()
        # pushes are written by per-subscription sender threads while this
        # thread writes replies: the lock keeps frames whole on the stream
        self._send_lock = threading.Lock()
        self._greeted = False
        metrics = self.server.metrics
        metrics.connections.inc()
        self._counted_rfile = _CountingStream(self.rfile, metrics.bytes_in)
        self._counted_wfile = _CountingStream(self.wfile, metrics.bytes_out)
        try:
            self._serve(session)
        finally:
            session.cancel_subscriptions()

    def _serve(self, session: Session) -> None:
        limit = self.server.max_frame_bytes
        metrics = self.server.metrics
        while not self.server.stopping:
            try:
                framed = read_frame_any(self._counted_rfile, limit)
            except FrameError as error:
                if isinstance(error, FrameTooLargeError):
                    metrics.oversized.inc()
                self._try_reply(
                    Response(
                        ok=False, error=ResponseError(code="protocol", message=str(error))
                    ).to_dict()
                )
                return
            except OSError:  # client aborted (RST, timeout): a clean close, not a crash
                return
            if framed is None:  # client hung up cleanly
                return
            metrics.frames_in.inc()
            shape, payload = framed
            if shape == "binary":
                if not self._handle_binary(session, payload):
                    return
                continue
            frame = classify_frame(payload)
            if frame.version == 2 and frame.error is not None:
                if not self._try_reply(envelope_error_payload(frame)):
                    return
                continue
            if frame.is_hello:
                if not self._try_reply(hello_reply_payload(frame, limit)):
                    return
                self._greeted = True
                continue
            if frame.version == 2 and frame.kind in SUBSCRIPTION_KINDS:
                if not self._handle_subscription(session, frame):
                    return
                continue
            assert frame.payload is not None
            response = execute_frame(session, frame)
            reply = response.to_dict()
            if frame.version == 2:
                reply = response_envelope(frame.request_id, reply)
            try:
                with self._send_lock:
                    write_frame(self._counted_wfile, reply, limit)
                metrics.frames_out.inc()
            except FrameError as error:
                metrics.oversized.inc()
                # the answer itself is too large for one frame: tell the
                # client (the error envelope is small) instead of vanishing.
                # With a v2 correlation id only that request fails and the
                # connection lives on; without one, close — a v1 client
                # cannot tell which request the error belongs to.
                oversized = oversized_reply_response(error).to_dict()
                if frame.version == 2:
                    if not self._try_reply(response_envelope(frame.request_id, oversized)):
                        return
                    continue
                self._try_reply(oversized)
                return
            except OSError:
                return
            if is_shutdown_payload(frame.payload) and response.ok:
                self.server.initiate_shutdown()
                return

    def _handle_binary(self, session: Session, body: bytes) -> bool:
        """Serve one RBF binary request frame; returns whether to keep going.

        The reply goes back binary when the response shape is
        representable and fits the frame limit; otherwise it falls back to
        a JSON v2 envelope with the same correlation id — the client
        accepts either.  A body the codec rejects is answered with one
        final ``protocol`` envelope and the connection closed, mirroring
        the JSON frame-error discipline (there is no trustworthy
        correlation id to answer on).
        """
        limit = self.server.max_frame_bytes
        metrics = self.server.metrics
        try:
            request_id, request_payload = decode_binary_request(body)
        except CodecError as error:
            self._try_reply(
                Response(
                    ok=False, error=ResponseError(code="protocol", message=str(error))
                ).to_dict()
            )
            return False
        frame = InboundFrame(
            version=2,
            request_id=request_id,
            kind=request_payload.get("type"),
            payload=request_payload,
        )
        response = execute_frame(session, frame)
        reply = response.to_dict()
        encoded = encode_binary_response(request_id, reply)
        if encoded is not None and len(encoded) <= limit:
            try:
                with self._send_lock:
                    self._counted_wfile.write(encode_binary_frame(encoded, limit))
                    self._counted_wfile.flush()
                metrics.frames_out.inc()
                return True
            except OSError:
                return False
        try:
            with self._send_lock:
                write_frame(self._counted_wfile, response_envelope(request_id, reply), limit)
            metrics.frames_out.inc()
            return True
        except FrameError as error:
            metrics.oversized.inc()
            oversized = oversized_reply_response(error).to_dict()
            return self._try_reply(response_envelope(request_id, oversized))
        except OSError:
            return False

    def _try_reply(self, payload: dict) -> bool:
        try:
            with self._send_lock:
                write_frame(self._counted_wfile, payload, self.server.max_frame_bytes)
            self.server.metrics.frames_out.inc()
            return True
        except (FrameError, OSError):
            return False

    # -- standing queries ----------------------------------------------------------

    def _handle_subscription(self, session: Session, frame: InboundFrame) -> bool:
        """Serve one ``subscribe``/``unsubscribe`` envelope; False closes.

        Registration happens here rather than in the session dispatch
        because a subscription is connection state: its pushes ride this
        socket and die with it.
        """
        if not self._greeted:
            reply = pre_hello_subscribe_response().to_dict()
            return self._try_reply(response_envelope(frame.request_id, reply))
        assert frame.payload is not None
        try:
            request = parse_request(frame.payload)
            if isinstance(request, UnsubscribeRequest):
                response = unsubscribe_session(session, request)
            else:
                assert isinstance(request, SubscribeRequest)
                response = self._register_subscription(session, request, frame.request_id)
        except Exception as error:
            response = error_response(error)
        return self._try_reply(response_envelope(frame.request_id, response.to_dict()))

    def _register_subscription(
        self, session: Session, request: SubscribeRequest, subscription_id
    ) -> Response:
        if subscription_id in session.subscriptions:
            raise InvalidRequestError(
                f"subscription id {subscription_id!r} is already registered"
                " on this connection"
            )
        entry = self.server.database._lookup(request.collection)
        if entry.kind != "live":
            raise subscription_target_error(entry.kind, request.collection)
        binary = request.format == "binary"
        limit = self.server.max_frame_bytes
        metrics = self.server.metrics

        def deliver(sub_id, body: dict) -> None:
            data = None
            if binary:
                encoded = encode_binary_push(sub_id, body)
                if encoded is not None and len(encoded) <= limit:
                    data = encode_binary_frame(encoded, limit)
            if data is None:
                data = encode_frame(push_envelope(sub_id, body), limit)
            with self._send_lock:
                self._counted_wfile.write(data)
                self._counted_wfile.flush()
            metrics.frames_out.inc()

        response, sub = self.server.database.subscriptions.subscribe(
            entry.engine, request, subscription_id, deliver, "threaded"
        )
        session.subscriptions[sub.id] = sub
        return response


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, database: Database, max_frame_bytes: int) -> None:
        super().__init__(address, _Handler)
        self.database = database
        self.max_frame_bytes = max_frame_bytes
        self.metrics = ServerMetrics("threaded")
        self.stopping = False
        self._loop_lock = threading.Lock()
        self._loop_started = False

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        with self._loop_lock:
            if self.stopping:
                return
            self._loop_started = True
        super().serve_forever(poll_interval)

    def stop_loop(self) -> None:
        """Stop the serve loop, also when it never ran.

        ``BaseServer.shutdown()`` waits on an event only ``serve_forever()``
        sets, so calling it on a server whose loop never started would hang
        forever; the flag handshake makes stopping safe in every state.
        """
        with self._loop_lock:
            self.stopping = True
            started = self._loop_started
        if started:
            self.shutdown()

    def initiate_shutdown(self) -> None:
        """Stop the serve loop without blocking the calling handler thread."""
        if self.stopping:
            return
        # stop_loop() blocks until serve_forever() exits, so run it off-thread
        threading.Thread(
            target=self.stop_loop, name="repro-server-shutdown", daemon=True
        ).start()


class DatabaseServer:
    """Serve one :class:`Database` over length-prefixed JSON frames.

    Parameters
    ----------
    database:
        The database to share across every client connection.  The server
        does **not** close it; the caller owns its lifecycle.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (read the
        actual one from :attr:`address`).
    max_frame_bytes:
        Upper bound on one request/response payload.

    Examples
    --------
    >>> from repro.core.ranking import RankingSet
    >>> database = Database()
    >>> _ = database.create_static("demo", RankingSet.from_lists([[1, 2, 3], [4, 5, 6]]))
    >>> with DatabaseServer(database, port=0) as server:
    ...     host, port = server.address
    ...     # clients connect to (host, port) here
    >>> database.close()
    """

    def __init__(
        self,
        database: Database,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._database = database
        self._server = _TCPServer((host, port), database, max_frame_bytes)
        self._thread: Optional[threading.Thread] = None

    @property
    def database(self) -> Database:
        """The served database."""
        return self._database

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (the real port, also when 0 was asked)."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Serve on a background thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or a
        client's ``admin``/``shutdown`` request) stops the loop."""
        self._server.serve_forever()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until a background :meth:`start` thread exits."""
        if self._thread is not None:
            self._thread.join(timeout)

    def shutdown(self) -> None:
        """Stop the serve loop (idempotent, callable from any thread, safe
        also when the loop was never started)."""
        self._server.stop_loop()

    def close(self) -> None:
        """Stop serving and release the listening socket."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "DatabaseServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return f"DatabaseServer({host}:{port}, collections={self._database.names()})"
