"""Remote shard transport: scale-out answers identical to single-process ones.

The topology under test mirrors production: the collection is partitioned
with :func:`partition_rankings`, each shard is served by its own
:class:`DatabaseServer` (one of them on the asyncio transport, to prove
transport neutrality), and a :class:`ShardedIndex` fans out through a
:class:`RemoteShardExecutor`.  Property: for every query, the remote
answer — rids, distances, order — equals the local sharded index's and
the single-index brute answer.
"""

from __future__ import annotations

import pytest

from repro.core.ranking import Ranking
from repro.api import AsyncDatabaseServer, Database, DatabaseServer, RemoteShardExecutor
from repro.service import ShardedIndex, partition_rankings
from repro.service.engine import QueryEngine
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries

K = 8
THETAS = (0.1, 0.3, 0.6)
ALGORITHMS = ("F&V", "ListMerge")


@pytest.fixture(scope="module")
def rankings():
    return nyt_like_dataset(n=150, k=K, seed=31)


@pytest.fixture(scope="module")
def queries(rankings):
    return sample_queries(rankings, 6, seed=13)


@pytest.fixture(scope="module", params=[2, 3])
def topology(request, rankings):
    """``num_shards`` shard servers plus the executor pointed at them."""
    num_shards = request.param
    shards = partition_rankings(rankings, num_shards)
    servers = []
    databases = []
    for index, shard in enumerate(shards):
        database = Database()
        database.create_static("default", shard)
        # one asyncio server in every topology: the executor must not care
        server_type = AsyncDatabaseServer if index == 0 else DatabaseServer
        server = server_type(database, port=0)
        server.start()
        servers.append(server)
        databases.append(database)
    executor = RemoteShardExecutor([server.address for server in servers])
    yield num_shards, executor
    executor.close()
    for server in servers:
        server.close()
    for database in databases:
        database.close()


class TestRemoteEqualsLocal:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_range_queries_identical(self, rankings, queries, topology, algorithm):
        num_shards, executor = topology
        with ShardedIndex(rankings, num_shards=num_shards) as local, ShardedIndex(
            rankings, num_shards=num_shards, executor=executor
        ) as remote:
            assert remote.executor_kind == "remote"
            for query in queries:
                for theta in THETAS:
                    local_result = local.range_query(query, theta, algorithm)
                    remote_result = remote.range_query(query, theta, algorithm)
                    assert [
                        (match.rid, match.distance) for match in remote_result
                    ] == [(match.rid, match.distance) for match in local_result]
                    assert remote_result.stats.extra["shards_queried"] == num_shards

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n_neighbours", (1, 5, 170))
    def test_knn_identical_including_overlong_k(
        self, rankings, queries, topology, algorithm, n_neighbours
    ):
        num_shards, executor = topology
        with ShardedIndex(rankings, num_shards=num_shards) as local, ShardedIndex(
            rankings, num_shards=num_shards, executor=executor
        ) as remote:
            for query in queries:
                local_result = local.knn(query, n_neighbours, algorithm)
                remote_result = remote.knn(query, n_neighbours, algorithm)
                assert [
                    (neighbour.distance, neighbour.rid)
                    for neighbour in remote_result.neighbours
                ] == [
                    (neighbour.distance, neighbour.rid)
                    for neighbour in local_result.neighbours
                ]

    def test_query_engine_serves_through_remote_executor(self, rankings, queries, topology):
        """The full serving stack (planner + cache) over remote shards."""
        num_shards, executor = topology
        with QueryEngine(
            rankings, num_shards=num_shards, algorithms=["F&V"], executor=executor
        ) as engine, QueryEngine(
            rankings, num_shards=num_shards, algorithms=["F&V"]
        ) as local:
            for query in queries:
                remote_response = engine.query(query, 0.3)
                local_response = local.query(query, 0.3)
                assert sorted(remote_response.result.rids) == sorted(local_response.result.rids)
            # second pass hits the coordinator's cache, not the wire
            cached = engine.query(queries[0], 0.3)
            assert cached.stats.cache_hit


class TestRemoteFailureModes:
    def test_shard_count_mismatch_is_a_clear_error(self, rankings, topology):
        num_shards, executor = topology
        with ShardedIndex(rankings, num_shards=num_shards + 1, executor=executor) as index:
            with pytest.raises(ValueError, match="shard server"):
                index.range_query(Ranking(list(range(1, K + 1))), 0.2, "F&V")

    def test_dead_shard_server_names_the_shard(self, rankings):
        shards = partition_rankings(rankings, 2)
        database = Database()
        database.create_static("default", shards[0])
        alive = DatabaseServer(database, port=0)
        alive.start()
        dead = DatabaseServer(Database(), port=0)  # bound but never started
        executor = RemoteShardExecutor([alive.address, dead.address])
        dead.close()  # shard 1's server is gone before the first query
        try:
            with ShardedIndex(rankings, num_shards=2, executor=executor) as index:
                with pytest.raises((ConnectionError, OSError), match="shard 1|refused"):
                    index.range_query(Ranking(list(range(1, K + 1))), 0.2, "F&V")
        finally:
            executor.close()
            alive.close()
            database.close()

    def test_prepare_is_rejected_on_remote_executors(self, rankings, topology):
        num_shards, executor = topology
        with ShardedIndex(rankings, num_shards=num_shards, executor=executor) as index:
            with pytest.raises(TypeError, match="executor"):
                index.prepare(Ranking(list(range(1, K + 1))), 0.2, "MinimalF&V")

    def test_bogus_executor_specs_are_rejected(self, rankings):
        with pytest.raises(ValueError, match="thread"):
            ShardedIndex(rankings, num_shards=2, executor="fiber")
        with pytest.raises(ValueError, match="range_shards"):
            ShardedIndex(rankings, num_shards=2, executor=object())

    def test_bad_addresses_are_rejected_up_front(self):
        with pytest.raises(ValueError, match="host:port"):
            RemoteShardExecutor(["nocolon"])
        with pytest.raises(ValueError, match="port"):
            RemoteShardExecutor(["host:http"])
        with pytest.raises(ValueError, match="at least one"):
            RemoteShardExecutor([])
