"""Tests for the distance functions, including the paper's worked examples."""

import pytest

from repro.core.distances import (
    footrule_complete,
    footrule_partial,
    footrule_topk,
    footrule_topk_raw,
    kendall_tau_complete,
    kendall_tau_topk,
    kendall_tau_topk_normalized,
    max_footrule_distance,
    max_kendall_tau_distance,
    normalize_distance,
    unnormalize_distance,
)
from repro.core.errors import RankingSizeMismatchError
from repro.core.ranking import Ranking


class TestMaxDistanceAndNormalisation:
    @pytest.mark.parametrize("k,expected", [(1, 2), (4, 20), (5, 30), (10, 110), (20, 420)])
    def test_max_footrule(self, k, expected):
        assert max_footrule_distance(k) == expected

    def test_max_footrule_rejects_non_positive(self):
        with pytest.raises(ValueError):
            max_footrule_distance(0)

    def test_normalize_roundtrip(self):
        assert normalize_distance(unnormalize_distance(0.3, 10), 10) == pytest.approx(0.3)

    def test_disjoint_rankings_normalise_to_one(self):
        left = Ranking([1, 2, 3])
        right = Ranking([4, 5, 6])
        assert footrule_topk(left, right) == pytest.approx(1.0)

    def test_identical_rankings_normalise_to_zero(self):
        ranking = Ranking([1, 2, 3])
        assert footrule_topk(ranking, ranking) == 0.0


class TestFootruleComplete:
    def test_identical_permutations(self):
        assert footrule_complete([1, 2, 3], [1, 2, 3]) == 0

    def test_reversed_permutation(self):
        # ranks: 0<->2 differ by 2 each, middle unchanged
        assert footrule_complete([1, 2, 3], [3, 2, 1]) == 4

    def test_different_domains_rejected(self):
        with pytest.raises(ValueError):
            footrule_complete([1, 2, 3], [1, 2, 4])

    def test_accepts_ranking_objects(self):
        assert footrule_complete(Ranking([1, 2]), Ranking([2, 1])) == 2


class TestFootruleTopK:
    def test_paper_example_tau1_tau2(self):
        """Fagin-style example from Section 3 of the paper.

        The paper uses rankings of different sizes in that example; with
        l fixed to the ranking size, the same computation is checked here on
        equal-size rankings derived from it.
        """
        tau1 = Ranking([2, 5, 6, 4, 1])
        tau3 = Ranking([0, 8, 4, 5, 7])
        # shared items: 5 (ranks 1 vs 3), 4 (ranks 3 vs 2); all others absent (rank 5)
        expected = abs(1 - 3) + abs(3 - 2)
        expected += (5 - 0) + (5 - 2) + (5 - 4)  # items 2, 6, 1 of tau1
        expected += (5 - 0) + (5 - 1) + (5 - 4)  # items 0, 8, 7 of tau3
        assert footrule_topk_raw(tau1, tau3) == expected

    def test_symmetry(self, paper_rankings):
        for left in paper_rankings:
            for right in paper_rankings:
                assert footrule_topk_raw(left, right) == footrule_topk_raw(right, left)

    def test_identity_of_indiscernibles(self, paper_rankings):
        for left in paper_rankings:
            for right in paper_rankings:
                raw = footrule_topk_raw(left, right)
                if left.items == right.items:
                    assert raw == 0
                else:
                    assert raw > 0

    def test_triangle_inequality(self, paper_rankings):
        rankings = list(paper_rankings)
        for a in rankings:
            for b in rankings:
                for c in rankings:
                    assert footrule_topk_raw(a, c) <= footrule_topk_raw(a, b) + footrule_topk_raw(b, c)

    def test_size_mismatch_rejected(self):
        with pytest.raises(RankingSizeMismatchError):
            footrule_topk_raw(Ranking([1, 2]), Ranking([1, 2, 3]))

    def test_single_swap_distance(self):
        assert footrule_topk_raw(Ranking([1, 2, 3]), Ranking([2, 1, 3])) == 2

    def test_one_item_replaced_at_bottom(self):
        # item 3 at rank 2 replaced by item 9: both pay |2 - 3| = 1
        assert footrule_topk_raw(Ranking([1, 2, 3]), Ranking([1, 2, 9])) == 2

    def test_bounded_by_maximum(self, paper_rankings):
        maximum = max_footrule_distance(paper_rankings.k)
        for left in paper_rankings:
            for right in paper_rankings:
                assert 0 <= footrule_topk_raw(left, right) <= maximum

    def test_footrule_values_are_even(self, paper_rankings):
        """The top-k Footrule distance is always even (sum of signed deviations is 0)."""
        for left in paper_rankings:
            for right in paper_rankings:
                assert footrule_topk_raw(left, right) % 2 == 0


class TestFootrulePartial:
    def test_partial_matches_full_when_everything_seen(self):
        query = Ranking([7, 6, 3, 9, 5])
        candidate = Ranking([7, 1, 9, 4, 5])
        seen = {item: candidate.rank_of(item) for item in candidate.items if item in query}
        partial = footrule_partial(query.rank_map(), seen, 5)
        expected = sum(abs(query.rank_of(item) - candidate.rank_of(item)) for item in seen)
        assert partial == expected

    def test_partial_uses_missing_rank_for_items_absent_from_query(self):
        query_ranks = {1: 0, 2: 1}
        seen = {9: 0}
        # item 9 is not in the query, so its query rank is k = 3
        assert footrule_partial(query_ranks, seen, 3) == 3


class TestKendallTau:
    def test_complete_identical(self):
        assert kendall_tau_complete([1, 2, 3], [1, 2, 3]) == 0

    def test_complete_reversed(self):
        assert kendall_tau_complete([1, 2, 3], [3, 2, 1]) == 3

    def test_complete_rejects_different_domains(self):
        with pytest.raises(ValueError):
            kendall_tau_complete([1, 2], [1, 3])

    def test_topk_disjoint_equals_maximum(self):
        left = Ranking([1, 2, 3])
        right = Ranking([4, 5, 6])
        assert kendall_tau_topk(left, right) == max_kendall_tau_distance(3)

    def test_topk_identical_is_zero(self):
        ranking = Ranking([1, 2, 3])
        assert kendall_tau_topk(ranking, ranking) == 0.0

    def test_topk_single_swap(self):
        assert kendall_tau_topk(Ranking([1, 2, 3]), Ranking([2, 1, 3])) == 1.0

    def test_topk_penalty_variant_larger(self):
        left = Ranking([1, 2, 3])
        right = Ranking([1, 4, 5])
        optimistic = kendall_tau_topk(left, right, penalty=0.0)
        neutral = kendall_tau_topk(left, right, penalty=0.5)
        assert neutral >= optimistic

    def test_topk_symmetry(self, paper_rankings):
        rankings = list(paper_rankings)[:5]
        for left in rankings:
            for right in rankings:
                assert kendall_tau_topk(left, right) == kendall_tau_topk(right, left)

    def test_normalized_in_unit_interval(self, paper_rankings):
        rankings = list(paper_rankings)[:5]
        for left in rankings:
            for right in rankings:
                assert 0.0 <= kendall_tau_topk_normalized(left, right) <= 1.0

    def test_max_kendall_rejects_non_positive(self):
        with pytest.raises(ValueError):
            max_kendall_tau_distance(0)

    def test_fagin_footrule_kendall_relation(self, paper_rankings):
        """K(tau1, tau2) <= F(tau1, tau2) for top-k lists (Diaconis-Graham style bound)."""
        rankings = list(paper_rankings)[:6]
        for left in rankings:
            for right in rankings:
                assert kendall_tau_topk(left, right) <= footrule_topk_raw(left, right)
