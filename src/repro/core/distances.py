"""Distance functions between rankings.

The paper's query model is built on **Spearman's Footrule** adapted to top-k
lists (Fagin, Kumar, Sivakumar 2003): an item that is missing from a ranking
is assigned the artificial rank ``l = k`` and the distance is the L1 distance
of the rank vectors over the union of both domains.  With ranks ``0..k-1``
the largest possible value is ``k * (k + 1)``, attained by two disjoint
rankings, and all public thresholds in the library are expressed on the
normalised scale ``[0, 1]`` obtained by dividing by this maximum.

Kendall's tau (with the optimistic ``p = 0`` handling of item pairs missing
from both lists) is provided as well so the metric-generic parts of the
library (coarse index, metric trees) can be exercised with a second distance.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Callable

from repro.core.errors import RankingSizeMismatchError
from repro.core.ranking import Ranking

DistanceFunction = Callable[[Ranking, Ranking], float]


def max_footrule_distance(k: int) -> int:
    """Maximum raw Footrule distance between two top-k lists of size ``k``.

    Two disjoint rankings realise the maximum: every item of either ranking
    at rank ``r`` contributes ``k - r`` against the artificial rank ``k``,
    which sums to ``k * (k + 1)`` over both rankings.
    """
    if k <= 0:
        raise ValueError(f"ranking size must be positive, got {k}")
    return k * (k + 1)


def normalize_distance(raw: float, k: int) -> float:
    """Map a raw Footrule distance into the normalised range ``[0, 1]``."""
    return raw / max_footrule_distance(k)


def unnormalize_distance(theta: float, k: int) -> float:
    """Map a normalised threshold back to the raw (integer) distance scale."""
    return theta * max_footrule_distance(k)


def _check_same_size(tau1: Ranking, tau2: Ranking) -> int:
    if tau1.size != tau2.size:
        raise RankingSizeMismatchError(tau1.size, tau2.size)
    return tau1.size


# ---------------------------------------------------------------------------
# Spearman's Footrule
# ---------------------------------------------------------------------------


def footrule_complete(sigma1: Sequence[int] | Ranking, sigma2: Sequence[int] | Ranking) -> int:
    """Footrule distance between two complete rankings of the same domain.

    Both arguments must be permutations of the same item set.  The result is
    ``sum_i |sigma1(i) - sigma2(i)|``.
    """
    r1 = sigma1 if isinstance(sigma1, Ranking) else Ranking(sigma1)
    r2 = sigma2 if isinstance(sigma2, Ranking) else Ranking(sigma2)
    if r1.domain != r2.domain:
        raise ValueError("complete rankings must be permutations of the same domain")
    return sum(abs(r1.rank_of(item) - r2.rank_of(item)) for item in r1.items)


def footrule_topk_raw(tau1: Ranking, tau2: Ranking) -> int:
    """Raw (integer) Footrule distance between two top-k lists.

    Missing items take the artificial rank ``l = k``.  The result lies in
    ``[0, k * (k + 1)]``.
    """
    k = _check_same_size(tau1, tau2)
    distance = 0
    for item in tau1.items:
        distance += abs(tau1.rank_of(item) - tau2.rank_of(item, default=k))
    for item in tau2.items:
        if item not in tau1:
            distance += abs(tau2.rank_of(item) - k)
    return distance


def footrule_topk(tau1: Ranking, tau2: Ranking) -> float:
    """Normalised Footrule distance between two top-k lists (range ``[0, 1]``)."""
    k = _check_same_size(tau1, tau2)
    return footrule_topk_raw(tau1, tau2) / max_footrule_distance(k)


def footrule_partial(
    query_ranks: Mapping[int, int],
    candidate_ranks: Mapping[int, int],
    k: int,
) -> int:
    """Footrule contribution of the items present in ``candidate_ranks``.

    Helper used by the list-at-a-time algorithms: given the ranks of the
    candidate items *seen so far* (a subset of the candidate's domain that
    intersects the query), return the exact partial distance contributed by
    those items, i.e. ``sum |q(i) - tau(i)|`` over the seen items.
    """
    partial = 0
    for item, candidate_rank in candidate_ranks.items():
        partial += abs(query_ranks.get(item, k) - candidate_rank)
    return partial


# ---------------------------------------------------------------------------
# Kendall's tau
# ---------------------------------------------------------------------------


def kendall_tau_complete(sigma1: Sequence[int] | Ranking, sigma2: Sequence[int] | Ranking) -> int:
    """Kendall's tau distance (number of discordant pairs) between permutations."""
    r1 = sigma1 if isinstance(sigma1, Ranking) else Ranking(sigma1)
    r2 = sigma2 if isinstance(sigma2, Ranking) else Ranking(sigma2)
    if r1.domain != r2.domain:
        raise ValueError("complete rankings must be permutations of the same domain")
    items = list(r1.items)
    discordant = 0
    for a_index in range(len(items)):
        for b_index in range(a_index + 1, len(items)):
            a, b = items[a_index], items[b_index]
            order1 = r1.rank_of(a) - r1.rank_of(b)
            order2 = r2.rank_of(a) - r2.rank_of(b)
            if order1 * order2 < 0:
                discordant += 1
    return discordant


def kendall_tau_topk(tau1: Ranking, tau2: Ranking, penalty: float = 0.0) -> float:
    """Kendall's tau distance between two top-k lists, K^(p) of Fagin et al.

    The four standard cases are handled:

    1. Both items in both lists: count 1 if the orders disagree.
    2. Both items in one list, only one of them in the other: count 1 if the
       item ranked ahead in the one-item list is behind in the two-item list.
    3. One item only in one list, the other item only in the other list:
       always discordant, count 1.
    4. Both items in one list, neither in the other: count ``penalty``
       (``p = 0`` is the optimistic variant, ``p = 0.5`` the neutral one).

    Returns the raw (possibly fractional) distance.
    """
    _check_same_size(tau1, tau2)
    union = sorted(tau1.domain | tau2.domain)
    distance = 0.0
    for a_index in range(len(union)):
        for b_index in range(a_index + 1, len(union)):
            a, b = union[a_index], union[b_index]
            in1 = (a in tau1, b in tau1)
            in2 = (a in tau2, b in tau2)
            if all(in1) and all(in2):
                if (tau1.rank_of(a) - tau1.rank_of(b)) * (tau2.rank_of(a) - tau2.rank_of(b)) < 0:
                    distance += 1.0
            elif all(in1) and any(in2):
                present = a if a in tau2 else b
                absent = b if present == a else a
                # absent is implicitly ranked behind every present item in tau2
                if tau1.rank_of(absent) < tau1.rank_of(present):
                    distance += 1.0
            elif all(in2) and any(in1):
                present = a if a in tau1 else b
                absent = b if present == a else a
                if tau2.rank_of(absent) < tau2.rank_of(present):
                    distance += 1.0
            elif all(in1) or all(in2):
                # both items live in exactly one of the lists, neither in the other
                distance += penalty
            elif (a in tau1 and b in tau2) or (a in tau2 and b in tau1):
                distance += 1.0
    return distance


def max_kendall_tau_distance(k: int) -> float:
    """Maximum K^(0) distance between two disjoint top-k lists.

    For disjoint lists every cross pair (k * k of them) is discordant and the
    within-list pairs contribute the penalty (0 for the optimistic variant).
    """
    if k <= 0:
        raise ValueError(f"ranking size must be positive, got {k}")
    return float(k * k)


def kendall_tau_topk_normalized(tau1: Ranking, tau2: Ranking) -> float:
    """K^(0) distance between top-k lists normalised into ``[0, 1]``."""
    k = _check_same_size(tau1, tau2)
    return kendall_tau_topk(tau1, tau2, penalty=0.0) / max_kendall_tau_distance(k)
