"""Tests for the medoid partitioning strategies."""

import pytest

from repro.core.distances import footrule_topk_raw, max_footrule_distance
from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking
from repro.metric.partitioning import (
    bktree_partition,
    random_medoid_partition,
    validate_partitions,
)


THETA_C_VALUES = [0.0, 0.1, 0.3, 0.5, 0.8]


def _raw(theta_c, k):
    return theta_c * max_footrule_distance(k)


@pytest.mark.parametrize("strategy", [bktree_partition, random_medoid_partition])
class TestPartitioningInvariants:
    @pytest.mark.parametrize("theta_c", THETA_C_VALUES)
    def test_partitions_cover_every_ranking_exactly_once(self, strategy, theta_c, small_rankings):
        partitions = strategy(
            list(small_rankings.rankings), footrule_topk_raw, _raw(theta_c, small_rankings.k)
        )
        validate_partitions(
            partitions, list(small_rankings.rankings), footrule_topk_raw, _raw(theta_c, small_rankings.k)
        )

    @pytest.mark.parametrize("theta_c", THETA_C_VALUES)
    def test_members_within_radius_of_medoid(self, strategy, theta_c, nyt_small):
        radius = _raw(theta_c, nyt_small.k)
        partitions = strategy(list(nyt_small.rankings), footrule_topk_raw, radius)
        for partition in partitions:
            for member in partition.members:
                assert footrule_topk_raw(partition.medoid, member) <= radius

    def test_zero_threshold_groups_only_duplicates(self, strategy, small_rankings):
        partitions = strategy(list(small_rankings.rankings), footrule_topk_raw, 0)
        for partition in partitions:
            for member in partition.members:
                assert member.items == partition.medoid.items

    def test_maximum_threshold_yields_single_partition(self, strategy, small_rankings):
        radius = max_footrule_distance(small_rankings.k)
        partitions = strategy(list(small_rankings.rankings), footrule_topk_raw, radius)
        assert len(partitions) == 1
        assert len(partitions[0]) == len(small_rankings)

    def test_larger_threshold_gives_no_more_partitions(self, strategy, nyt_small):
        counts = []
        for theta_c in (0.05, 0.2, 0.5):
            partitions = strategy(
                list(nyt_small.rankings), footrule_topk_raw, _raw(theta_c, nyt_small.k)
            )
            counts.append(len(partitions))
        assert counts == sorted(counts, reverse=True)

    def test_empty_collection_rejected(self, strategy):
        with pytest.raises(EmptyDatasetError):
            strategy([], footrule_topk_raw, 5)

    def test_medoid_is_a_member(self, strategy, small_rankings):
        partitions = strategy(list(small_rankings.rankings), footrule_topk_raw, 4)
        for partition in partitions:
            assert any(member.rid == partition.medoid.rid for member in partition.members)


class TestRandomMedoidSpecifics:
    def test_deterministic_for_fixed_seed(self, small_rankings):
        first = random_medoid_partition(list(small_rankings.rankings), footrule_topk_raw, 4, seed=5)
        second = random_medoid_partition(list(small_rankings.rankings), footrule_topk_raw, 4, seed=5)
        assert [p.medoid.rid for p in first] == [p.medoid.rid for p in second]

    def test_different_seed_may_change_medoids(self, nyt_small):
        radius = _raw(0.2, nyt_small.k)
        first = random_medoid_partition(list(nyt_small.rankings), footrule_topk_raw, radius, seed=1)
        second = random_medoid_partition(list(nyt_small.rankings), footrule_topk_raw, radius, seed=2)
        # the partitionings stay valid either way; medoid choice is seed-dependent
        assert {p.medoid.rid for p in first} != {p.medoid.rid for p in second} or len(first) == len(
            nyt_small
        )

    def test_requires_rids(self):
        with pytest.raises(ValueError):
            random_medoid_partition([Ranking([1, 2, 3])], footrule_topk_raw, 2)


class TestValidatePartitions:
    def test_detects_radius_violation(self, small_rankings):
        partitions = bktree_partition(list(small_rankings.rankings), footrule_topk_raw, 6)
        with pytest.raises(ValueError):
            validate_partitions(partitions, list(small_rankings.rankings), footrule_topk_raw, 0)

    def test_detects_missing_ranking(self, small_rankings):
        partitions = bktree_partition(list(small_rankings.rankings), footrule_topk_raw, 4)
        with pytest.raises(ValueError):
            validate_partitions(partitions[:-1] if len(partitions) > 1 else [],
                                list(small_rankings.rankings), footrule_topk_raw, 4)
