"""Result containers returned by every similarity-search algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.core.ranking import Ranking
from repro.core.stats import SearchStats


@dataclass(frozen=True, order=True)
class SearchMatch:
    """One ranking in a query answer together with its (normalised) distance."""

    distance: float
    rid: int
    ranking: Ranking = field(compare=False)


@dataclass
class SearchResult:
    """The answer to one similarity range query.

    Attributes
    ----------
    query:
        The query ranking.
    theta:
        The normalised query threshold.
    matches:
        All rankings with normalised distance at most ``theta``, sorted by
        increasing distance (ties broken by ranking id).
    stats:
        Counters and timings recorded while producing the answer.
    algorithm:
        The registry name of the algorithm that produced the result.
    """

    query: Ranking
    theta: float
    matches: list[SearchMatch] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    algorithm: str = ""

    def add(self, rid: int, ranking: Ranking, distance: float) -> None:
        """Record one qualifying ranking."""
        self.matches.append(SearchMatch(distance=distance, rid=rid, ranking=ranking))

    def finalize(self) -> "SearchResult":
        """Sort matches, deduplicate by ranking id and sync the result counter."""
        unique: dict[int, SearchMatch] = {}
        for match in self.matches:
            existing = unique.get(match.rid)
            if existing is None or match.distance < existing.distance:
                unique[match.rid] = match
        self.matches = sorted(unique.values())
        self.stats.results = len(self.matches)
        return self

    @property
    def rids(self) -> set[int]:
        """The ids of all matching rankings."""
        return {match.rid for match in self.matches}

    def distances(self) -> dict[int, float]:
        """Mapping of ranking id to its normalised distance from the query."""
        return {match.rid: match.distance for match in self.matches}

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[SearchMatch]:
        return iter(self.matches)

    def __contains__(self, rid: object) -> bool:
        return any(match.rid == rid for match in self.matches)

    def __repr__(self) -> str:
        return (
            f"SearchResult(algorithm={self.algorithm!r}, theta={self.theta}, "
            f"matches={len(self.matches)})"
        )
