"""Write-ahead log: every mutation is durable before it is applied.

The log is a JSONL file — one mutation per line, in the order the mutations
were accepted — so a crashed or restarted service can rebuild its logical
state by replaying the file.  Records carry a monotonically increasing
sequence number; a snapshot remembers the last sequence it covers, and a
restart replays only the records *after* it (the WAL tail).

Durability model
----------------
``append`` writes the line and flushes the Python buffer to the OS; with
``sync=True`` it additionally ``fsync``\\ s, trading throughput for
power-loss durability.  A torn final line (a crash mid-append) is tolerated
by :meth:`replay` — the partial record never took effect, so it is skipped —
while corruption anywhere *before* the tail raises :class:`CorruptWalError`,
because silently dropping an interior mutation would diverge the replayed
state from the served one.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.errors import ReproError

#: The mutation kinds a WAL record may carry.
WAL_OPERATIONS = ("insert", "delete", "upsert")


class CorruptWalError(ReproError):
    """An interior WAL record could not be decoded."""

    def __init__(self, path: Path, line_number: int, reason: str) -> None:
        self.path = path
        self.line_number = line_number
        super().__init__(f"corrupt WAL record at {path}:{line_number}: {reason}")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: sequence number, operation, key, payload."""

    seq: int
    op: str
    key: int
    items: Optional[tuple[int, ...]] = None

    def to_json(self) -> str:
        """Serialise to one JSONL line (no trailing newline)."""
        payload: dict = {"seq": self.seq, "op": self.op, "key": self.key}
        if self.items is not None:
            payload["items"] = list(self.items)
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        """Parse one JSONL line; raises ``ValueError`` on malformed input."""
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError("WAL record must be a JSON object")
        op = payload.get("op")
        if op not in WAL_OPERATIONS:
            raise ValueError(f"unknown WAL operation {op!r}")
        items = payload.get("items")
        if op == "delete":
            items = None
        elif not isinstance(items, list) or not items:
            raise ValueError(f"{op} record requires a non-empty 'items' list")
        return cls(
            seq=int(payload["seq"]),
            op=op,
            key=int(payload["key"]),
            items=None if items is None else tuple(int(item) for item in items),
        )


class WriteAheadLog:
    """Append-only JSONL mutation log with tail-tolerant replay.

    Parameters
    ----------
    path:
        Log file location; created (with parents) on first append.
    sync:
        ``fsync`` after every append.  Off by default: the benchmarks
        measure the in-process write path, and crash-consistency against
        power loss is a deployment decision.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "wal.jsonl")
    >>> wal = WriteAheadLog(path)
    >>> wal.append(WalRecord(seq=1, op="insert", key=0, items=(1, 2, 3)))
    >>> [record.key for record in wal.replay()]
    [0]
    >>> wal.close()
    """

    def __init__(self, path: str | Path, sync: bool = False) -> None:
        self._path = Path(path)
        self._sync = sync
        self._handle = None

    @property
    def path(self) -> Path:
        """The log file location."""
        return self._path

    @property
    def exists(self) -> bool:
        """Whether the log file is present on disk."""
        return self._path.exists()

    # -- writing -----------------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Make one mutation durable (buffered write + flush, optional fsync)."""
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._trim_torn_tail()
            self._handle = open(self._path, "a", encoding="utf-8")
        self._handle.write(record.to_json() + "\n")
        self._handle.flush()
        if self._sync:
            os.fsync(self._handle.fileno())

    def _trim_torn_tail(self) -> None:
        """Drop a partial final line left by a crash mid-append.

        The torn record never committed (replay skips it), but appending
        after it would glue the next record onto the same line and corrupt
        the log — so the tail is truncated back to the last newline before
        the first post-reopen append.
        """
        if not self._path.exists():
            return
        with open(self._path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            content = handle.read(size)
            keep = content.rfind(b"\n") + 1  # 0 when the whole file is one torn line
            handle.truncate(keep)

    def close(self) -> None:
        """Close the append handle (idempotent); replay still works."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[WalRecord]:
        """Yield the records with ``seq > after_seq`` in log order.

        The file is streamed line by line (replay cost is bounded by the log
        length, not by available memory).  A torn final line is skipped (the
        mutation never committed); a malformed interior line raises
        :class:`CorruptWalError`.
        """
        if not self._path.exists():
            return
        with open(self._path, encoding="utf-8") as handle:
            pending: Optional[tuple[int, str]] = None
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                if pending is not None:
                    record = self._decode(*pending, torn_ok=False)
                    assert record is not None
                    if record.seq > after_seq:
                        yield record
                pending = (line_number, line)
            if pending is not None:
                record = self._decode(*pending, torn_ok=True)
                if record is not None and record.seq > after_seq:
                    yield record

    def _decode(self, line_number: int, line: str, torn_ok: bool) -> Optional[WalRecord]:
        try:
            return WalRecord.from_json(line)
        except (ValueError, KeyError, TypeError) as error:
            if torn_ok:
                return None  # torn tail: the append never completed
            raise CorruptWalError(self._path, line_number, str(error)) from error

    def last_seq(self) -> int:
        """Sequence number of the newest committed record (0 when empty)."""
        seq = 0
        for record in self.replay():
            seq = record.seq
        return seq

    def truncate_through(self, seq: int) -> int:
        """Drop every committed record with ``seq`` at or below the given one.

        Called after a snapshot has durably captured the state through
        ``seq``, so restarts replay (and startup reads) only the tail.  The
        rewrite is atomic (temp file + rename); returns the number of
        records kept.
        """
        if not self._path.exists():
            return 0
        kept = list(self.replay(after_seq=seq))
        self.close()
        temporary = self._path.with_suffix(".jsonl.tmp")
        temporary.write_text(
            "".join(record.to_json() + "\n" for record in kept), encoding="utf-8"
        )
        temporary.replace(self._path)
        return len(kept)

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={str(self._path)!r}, sync={self._sync})"
