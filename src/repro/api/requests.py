"""Typed, JSON-serializable request objects for the serving API.

Every operation a client can ask of a :class:`~repro.api.database.Database`
is one of the request classes below.  Each is a frozen dataclass that

* validates itself on construction (so in-process callers fail fast with a
  :class:`~repro.core.errors.InvalidRequestError`),
* serializes to a plain dictionary via :meth:`to_dict` (the wire payload),
* deserializes **strictly** via :meth:`from_dict` / :func:`parse_request`:
  missing fields, unknown fields, wrong types, and out-of-range values all
  raise :class:`InvalidRequestError` — the protocol layer turns that into a
  typed error envelope instead of a deep stack trace.

The ``type`` field of the payload names the request kind::

    {"type": "range", "collection": "news", "items": [3, 1, 4], "theta": 0.2}

Booleans are deliberately rejected wherever an integer is expected
(``True`` *is* an ``int`` in Python, but ``{"key": true}`` on the wire is
almost certainly a client bug).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Optional, Union

from repro.core.errors import InvalidRequestError
from repro.core.ranking import Ranking

#: Name of the collection used when a request does not specify one.
DEFAULT_COLLECTION = "default"

#: Actions an :class:`AdminRequest` may carry.
ADMIN_ACTIONS = (
    "ping",
    "collections",
    "stats",
    "metrics",
    "slow_queries",
    "create",
    "drop",
    "flush",
    "compact",
    "snapshot",
    "shutdown",
    "route",
    "replicate",
    "promote",
    "export",
    "reshard",
)

#: Admin actions that address one specific (live) collection.
_COLLECTION_ADMIN_ACTIONS = ("stats", "flush", "compact", "snapshot", "replicate", "promote", "export")

#: Formats an admin ``metrics`` dump may ask for.
METRICS_FORMATS = ("json", "prometheus")

#: Scopes an admin ``metrics`` dump may ask for: the local process registry
#: (default) or — on a coordinator — every node of the topology merged.
METRICS_SCOPES = ("process", "cluster")

#: Roles an admin ``route`` push may assign to a node.
CLUSTER_ROLES = ("primary", "replica")

#: Operations a replicated WAL record may carry.
_WAL_OPS = ("insert", "delete", "upsert")

#: Engines an admin ``create`` may ask for.
COLLECTION_ENGINES = ("static", "live")

#: Query kinds a standing subscription may watch.
SUBSCRIPTION_MODES = ("range", "knn")

#: Delta-body encodings a subscription may ask for (mirrors the wire formats).
SUBSCRIPTION_FORMATS = ("json", "binary")

#: Upper bound on a subscription's pending-delta queue (the overflow knob).
MAX_SUBSCRIPTION_QUEUE = 4096


def _require_int(value: Any, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidRequestError(f"{field} must be an integer, got {value!r}")
    return value


def _require_number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidRequestError(f"{field} must be a number, got {value!r}")
    return float(value)


def _require_str(value: Any, field: str) -> str:
    if not isinstance(value, str):
        raise InvalidRequestError(f"{field} must be a string, got {value!r}")
    return value


def coerce_items(value: Any, field: str = "items") -> tuple[int, ...]:
    """Validate one ranked item list (a ranking's worth of integer ids)."""
    if isinstance(value, Ranking):
        return value.items
    if not isinstance(value, (list, tuple)):
        raise InvalidRequestError(f"{field} must be a list of item ids, got {value!r}")
    if not value:
        raise InvalidRequestError(f"{field} must not be empty")
    return tuple(_require_int(item, f"{field}[{position}]") for position, item in enumerate(value))


def _validate_wal_record(entry: Any, field: str) -> dict:
    """Validate one replicated WAL record: ``{seq, op, key, items}``."""
    if not isinstance(entry, dict):
        raise InvalidRequestError(f"{field} must be a WAL record object, got {entry!r}")
    unknown = set(entry) - {"seq", "op", "key", "items"}
    if unknown:
        raise InvalidRequestError(f"unknown field(s) in {field}: {', '.join(sorted(unknown))}")
    seq = _require_int(entry.get("seq"), f"{field}.seq")
    if seq <= 0:
        raise InvalidRequestError(f"{field}.seq must be positive, got {seq}")
    op = _require_str(entry.get("op"), f"{field}.op")
    if op not in _WAL_OPS:
        raise InvalidRequestError(f"{field}.op must be one of {', '.join(_WAL_OPS)}, got {op!r}")
    key = _require_int(entry.get("key"), f"{field}.key")
    if key < 0:
        raise InvalidRequestError(f"{field}.key must be non-negative, got {key}")
    items = entry.get("items")
    if op == "delete":
        if items is not None:
            raise InvalidRequestError(f"{field}: delete records carry no items")
        return {"seq": seq, "op": op, "key": key, "items": None}
    return {"seq": seq, "op": op, "key": key, "items": list(coerce_items(items, f"{field}.items"))}


def _validate_theta(theta: float) -> float:
    theta = _require_number(theta, "theta")
    if not 0.0 <= theta < 1.0:
        raise InvalidRequestError(f"theta must lie in [0, 1), got {theta!r}")
    return theta


def _validate_algorithm(algorithm: Any) -> Optional[str]:
    if algorithm is None:
        return None
    return _require_str(algorithm, "algorithm")


@dataclass(frozen=True)
class Request:
    """Base class: the collection address plus strict (de)serialization."""

    #: Wire name of the request kind; set by each concrete class.
    TYPE: ClassVar[str] = ""

    collection: str = DEFAULT_COLLECTION

    def __post_init__(self) -> None:
        _require_str(self.collection, "collection")
        if not self.collection:
            raise InvalidRequestError("collection must not be empty")

    def to_dict(self) -> dict:
        """The JSON-serializable wire payload (``type`` + every field)."""
        payload: dict = {"type": self.TYPE}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = [list(entry) if isinstance(entry, tuple) else entry for entry in value]
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Request":
        """Strictly rebuild a request from its wire payload."""
        if not isinstance(payload, dict):
            raise InvalidRequestError(f"request payload must be an object, got {payload!r}")
        data = dict(payload)
        declared_type = data.pop("type", cls.TYPE)
        if declared_type != cls.TYPE:
            raise InvalidRequestError(
                f"payload type {declared_type!r} does not match request type {cls.TYPE!r}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise InvalidRequestError(
                f"unknown field(s) for {cls.TYPE!r} request: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**data)
        except TypeError as error:  # missing required fields
            raise InvalidRequestError(f"malformed {cls.TYPE!r} request: {error}") from None


@dataclass(frozen=True)
class RangeQueryRequest(Request):
    """One similarity range query, optionally paginated.

    ``limit`` caps the number of matches returned and ``cursor`` is the
    match offset to resume from; the response's ``cursor`` field carries
    the next offset (or ``None`` when the answer is exhausted).
    """

    TYPE: ClassVar[str] = "range"

    items: tuple[int, ...] = ()
    theta: float = 0.0
    algorithm: Optional[str] = None
    limit: Optional[int] = None
    cursor: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "items", coerce_items(self.items))
        object.__setattr__(self, "theta", _validate_theta(self.theta))
        object.__setattr__(self, "algorithm", _validate_algorithm(self.algorithm))
        if self.limit is not None and _require_int(self.limit, "limit") <= 0:
            raise InvalidRequestError(f"limit must be positive, got {self.limit}")
        if _require_int(self.cursor, "cursor") < 0:
            raise InvalidRequestError(f"cursor must be non-negative, got {self.cursor}")

    @property
    def query(self) -> Ranking:
        """The query as a :class:`Ranking` (validates item distinctness)."""
        return Ranking(self.items)


@dataclass(frozen=True)
class KnnRequest(Request):
    """One exact k-nearest-neighbour query."""

    TYPE: ClassVar[str] = "knn"

    items: tuple[int, ...] = ()
    k: int = 1
    algorithm: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "items", coerce_items(self.items))
        if _require_int(self.k, "k") <= 0:
            raise InvalidRequestError(f"k must be positive, got {self.k}")
        object.__setattr__(self, "algorithm", _validate_algorithm(self.algorithm))

    @property
    def query(self) -> Ranking:
        """The query as a :class:`Ranking`."""
        return Ranking(self.items)


@dataclass(frozen=True)
class BatchRequest(Request):
    """A batch of range queries answered through one round trip."""

    TYPE: ClassVar[str] = "batch"

    queries: tuple[tuple[int, ...], ...] = ()
    theta: float = 0.0
    algorithm: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.queries, (list, tuple)) or not self.queries:
            raise InvalidRequestError("queries must be a non-empty list of item lists")
        object.__setattr__(
            self,
            "queries",
            tuple(
                coerce_items(entry, f"queries[{position}]")
                for position, entry in enumerate(self.queries)
            ),
        )
        object.__setattr__(self, "theta", _validate_theta(self.theta))
        object.__setattr__(self, "algorithm", _validate_algorithm(self.algorithm))


@dataclass(frozen=True)
class InsertRequest(Request):
    """Insert one ranking into a live collection; the response carries its key."""

    TYPE: ClassVar[str] = "insert"

    items: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "items", coerce_items(self.items))


@dataclass(frozen=True)
class DeleteRequest(Request):
    """Delete the ranking stored under ``key`` in a live collection."""

    TYPE: ClassVar[str] = "delete"

    key: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if _require_int(self.key, "key") < 0:
            raise InvalidRequestError(f"key must be non-negative, got {self.key}")


@dataclass(frozen=True)
class UpsertRequest(Request):
    """Replace (or insert) the ranking under ``key`` in a live collection."""

    TYPE: ClassVar[str] = "upsert"

    key: int = 0
    items: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if _require_int(self.key, "key") < 0:
            raise InvalidRequestError(f"key must be non-negative, got {self.key}")
        object.__setattr__(self, "items", coerce_items(self.items))


@dataclass(frozen=True)
class AdminRequest(Request):
    """Maintenance, introspection, and collection DDL.

    ``flush`` / ``compact`` / ``snapshot`` address one live collection;
    ``stats`` reports engine totals and layer sizes for one collection;
    ``collections`` and ``ping`` ignore the collection field.  ``shutdown``
    asks a *server* to stop after replying; an in-process session simply
    acknowledges it.

    ``metrics`` dumps the process metrics registry — structured JSON by
    default, Prometheus text exposition when ``format`` is
    ``"prometheus"`` (returned as the ``exposition`` string of the data
    payload).  ``slow_queries`` dumps the database's slow-query ring,
    slowest first.  Both are process-wide and ignore the collection
    field; ``format`` is only valid on ``metrics``.

    ``create`` registers a new collection named by the ``collection``
    field: ``engine`` picks ``"static"`` (read-only, requires ``rankings``
    as its data) or ``"live"`` (mutable, ``rankings`` optionally seed it);
    ``algorithm`` pins the serving algorithm, ``num_shards`` and
    ``cache_capacity`` size the engine.  ``drop`` removes a collection and
    closes its engine.  The DDL-only fields are rejected on every other
    action, so a typo cannot silently change what a request does.

    The cluster verbs (see :mod:`repro.cluster`):

    * ``route`` — with ``table`` set, pushes a routing table onto a node
      (``role`` and ``shard_id`` telling the node what it is); without,
      reads back the node's routing state.
    * ``replicate`` — applies a batch of WAL ``records`` to a follower
      replica; an **empty** batch is a probe that just reports the
      replica's applied sequence number.
    * ``promote`` — flips a replica to primary (warm failover).
    * ``export`` — dumps a live collection's entries for backfill.
    * ``reshard`` — asks a *coordinator* to move hash slots between
      shards (``moves`` maps slot -> target shard id); plain databases
      reject it.
    """

    TYPE: ClassVar[str] = "admin"

    action: str = "ping"
    engine: Optional[str] = None
    rankings: Optional[tuple[tuple[int, ...], ...]] = None
    algorithm: Optional[str] = None
    num_shards: Optional[int] = None
    cache_capacity: Optional[int] = None
    format: Optional[str] = None
    table: Optional[dict] = None
    role: Optional[str] = None
    shard_id: Optional[int] = None
    records: Optional[tuple[dict, ...]] = None
    scope: Optional[str] = None
    moves: Optional[dict] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_str(self.action, "action")
        if self.action not in ADMIN_ACTIONS:
            raise InvalidRequestError(
                f"unknown admin action {self.action!r}; use one of {', '.join(ADMIN_ACTIONS)}"
            )
        if self.action == "create":
            self._validate_create()
        else:
            for name in ("engine", "rankings", "algorithm", "num_shards", "cache_capacity"):
                if getattr(self, name) is not None:
                    raise InvalidRequestError(
                        f"admin field {name!r} only applies to action 'create', "
                        f"not {self.action!r}"
                    )
        if self.format is not None:
            if self.action != "metrics":
                raise InvalidRequestError(
                    f"admin field 'format' only applies to action 'metrics', not {self.action!r}"
                )
            if self.format not in METRICS_FORMATS:
                raise InvalidRequestError(
                    f"metrics format must be one of {', '.join(METRICS_FORMATS)}, "
                    f"got {self.format!r}"
                )
        if self.scope is not None:
            if self.action != "metrics":
                raise InvalidRequestError(
                    f"admin field 'scope' only applies to action 'metrics', not {self.action!r}"
                )
            if self.scope not in METRICS_SCOPES:
                raise InvalidRequestError(
                    f"metrics scope must be one of {', '.join(METRICS_SCOPES)}, "
                    f"got {self.scope!r}"
                )
        for name in ("table", "role", "shard_id"):
            if getattr(self, name) is not None and self.action != "route":
                raise InvalidRequestError(
                    f"admin field {name!r} only applies to action 'route', not {self.action!r}"
                )
        if self.action == "route":
            self._validate_route()
        if self.records is not None and self.action != "replicate":
            raise InvalidRequestError(
                f"admin field 'records' only applies to action 'replicate', not {self.action!r}"
            )
        if self.action == "replicate":
            self._validate_replicate()
        if self.moves is not None and self.action != "reshard":
            raise InvalidRequestError(
                f"admin field 'moves' only applies to action 'reshard', not {self.action!r}"
            )
        if self.action == "reshard":
            self._validate_reshard()

    def _validate_route(self) -> None:
        if self.table is not None and not isinstance(self.table, dict):
            raise InvalidRequestError(f"table must be a routing-table object, got {self.table!r}")
        if self.role is not None:
            _require_str(self.role, "role")
            if self.role not in CLUSTER_ROLES:
                raise InvalidRequestError(
                    f"role must be one of {', '.join(CLUSTER_ROLES)}, got {self.role!r}"
                )
        if self.shard_id is not None and _require_int(self.shard_id, "shard_id") < 0:
            raise InvalidRequestError(f"shard_id must be non-negative, got {self.shard_id}")
        if self.table is None and (self.role is not None or self.shard_id is not None):
            raise InvalidRequestError("route with role/shard_id needs a table (it is a push)")

    def _validate_replicate(self) -> None:
        if not isinstance(self.records, (list, tuple)):
            raise InvalidRequestError(
                f"replicate needs records, a (possibly empty) list of WAL records; "
                f"got {self.records!r}"
            )
        object.__setattr__(
            self,
            "records",
            tuple(
                _validate_wal_record(entry, f"records[{position}]")
                for position, entry in enumerate(self.records)
            ),
        )

    def _validate_reshard(self) -> None:
        if not isinstance(self.moves, dict) or not self.moves:
            raise InvalidRequestError(
                "reshard needs moves, a non-empty {slot: target shard id} mapping"
            )
        normalized: dict[int, int] = {}
        for raw_slot, raw_shard in self.moves.items():
            try:
                slot = int(raw_slot)
            except (TypeError, ValueError):
                raise InvalidRequestError(f"moves slot {raw_slot!r} is not an integer") from None
            if isinstance(raw_slot, bool) or slot < 0:
                raise InvalidRequestError(f"moves slot {raw_slot!r} must be a non-negative slot")
            shard = _require_int(raw_shard, f"moves[{slot}]")
            if shard < 0:
                raise InvalidRequestError(f"moves[{slot}] must be a shard id, got {shard}")
            normalized[slot] = shard
        object.__setattr__(self, "moves", normalized)

    def _validate_create(self) -> None:
        if self.engine not in COLLECTION_ENGINES:
            raise InvalidRequestError(
                f"create needs engine set to one of {', '.join(COLLECTION_ENGINES)}, "
                f"got {self.engine!r}"
            )
        if self.rankings is not None:
            if not isinstance(self.rankings, (list, tuple)) or not self.rankings:
                raise InvalidRequestError("rankings must be a non-empty list of item lists")
            object.__setattr__(
                self,
                "rankings",
                tuple(
                    coerce_items(entry, f"rankings[{position}]")
                    for position, entry in enumerate(self.rankings)
                ),
            )
        elif self.engine == "static":
            raise InvalidRequestError("create engine='static' needs rankings (its data)")
        object.__setattr__(self, "algorithm", _validate_algorithm(self.algorithm))
        if self.num_shards is not None and _require_int(self.num_shards, "num_shards") <= 0:
            raise InvalidRequestError(f"num_shards must be positive, got {self.num_shards}")
        if (
            self.cache_capacity is not None
            and _require_int(self.cache_capacity, "cache_capacity") < 0
        ):
            raise InvalidRequestError(
                f"cache_capacity must be non-negative, got {self.cache_capacity}"
            )

    def to_dict(self) -> dict:
        """The wire payload; DDL-only fields are omitted unless set.

        Keeping plain admin payloads free of ``null`` DDL fields preserves
        their PR 4 wire shape byte for byte, so v1 servers accept them.
        """
        payload: dict = {"type": self.TYPE, "collection": self.collection, "action": self.action}
        for name in (
            "engine",
            "algorithm",
            "num_shards",
            "cache_capacity",
            "format",
            "table",
            "role",
            "shard_id",
            "scope",
        ):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.rankings is not None:
            payload["rankings"] = [list(entry) for entry in self.rankings]
        if self.records is not None:
            payload["records"] = [dict(entry) for entry in self.records]
        if self.moves is not None:
            payload["moves"] = {str(slot): shard for slot, shard in self.moves.items()}
        return payload

    @property
    def addresses_collection(self) -> bool:
        """Whether the action operates on one specific collection."""
        return self.action in _COLLECTION_ADMIN_ACTIONS


@dataclass(frozen=True)
class SubscribeRequest(Request):
    """Register a standing range/k-NN query over a live collection.

    The server answers with the query's current result set (the snapshot)
    and then pushes incremental deltas — ``push`` frames correlated by the
    subscribe request's id — as mutations commit.  ``mode`` picks the query
    kind: ``"range"`` watches everything within ``theta`` of the query
    ranking, ``"knn"`` watches its ``k`` nearest neighbours.

    ``format`` asks for binary (RBF) delta bodies when the server
    advertised the binary wire in its hello; ``queue_size`` bounds the
    per-subscription pending-delta queue — a consumer that falls further
    behind is cancelled with a ``subscription_overflow`` error push rather
    than growing server memory without bound.
    """

    TYPE: ClassVar[str] = "subscribe"

    mode: str = "range"
    items: tuple[int, ...] = ()
    theta: float = 0.0
    k: int = 0
    algorithm: Optional[str] = None
    format: Optional[str] = None
    queue_size: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_str(self.mode, "mode")
        if self.mode not in SUBSCRIPTION_MODES:
            raise InvalidRequestError(
                f"mode must be one of {', '.join(SUBSCRIPTION_MODES)}, got {self.mode!r}"
            )
        object.__setattr__(self, "items", coerce_items(self.items))
        if self.mode == "range":
            object.__setattr__(self, "theta", _validate_theta(self.theta))
            if _require_int(self.k, "k") != 0:
                raise InvalidRequestError("k only applies to mode 'knn'")
        else:
            if _require_number(self.theta, "theta") != 0.0:
                raise InvalidRequestError("theta only applies to mode 'range'")
            if _require_int(self.k, "k") <= 0:
                raise InvalidRequestError(f"k must be positive, got {self.k}")
        object.__setattr__(self, "algorithm", _validate_algorithm(self.algorithm))
        if self.format is not None:
            _require_str(self.format, "format")
            if self.format not in SUBSCRIPTION_FORMATS:
                raise InvalidRequestError(
                    f"format must be one of {', '.join(SUBSCRIPTION_FORMATS)}, "
                    f"got {self.format!r}"
                )
        if self.queue_size is not None:
            if not 1 <= _require_int(self.queue_size, "queue_size") <= MAX_SUBSCRIPTION_QUEUE:
                raise InvalidRequestError(
                    f"queue_size must lie in [1, {MAX_SUBSCRIPTION_QUEUE}], "
                    f"got {self.queue_size}"
                )

    @property
    def query(self) -> Ranking:
        """The watched query as a :class:`Ranking`."""
        return Ranking(self.items)


@dataclass(frozen=True)
class UnsubscribeRequest(Request):
    """Cancel the standing query registered under ``subscription``.

    ``subscription`` is the correlation id of the original ``subscribe``
    request on the same connection; subscriptions are per-connection, so
    no other client can cancel them.
    """

    TYPE: ClassVar[str] = "unsubscribe"

    subscription: Union[int, str] = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.subscription, str):
            if not self.subscription:
                raise InvalidRequestError("subscription must not be empty")
        elif isinstance(self.subscription, bool) or not isinstance(self.subscription, int):
            raise InvalidRequestError(
                f"subscription must be a correlation id (integer or string), "
                f"got {self.subscription!r}"
            )


#: Wire ``type`` -> request class, the protocol dispatch table.
REQUEST_TYPES: dict[str, type[Request]] = {
    cls.TYPE: cls
    for cls in (
        RangeQueryRequest,
        KnnRequest,
        BatchRequest,
        InsertRequest,
        DeleteRequest,
        UpsertRequest,
        AdminRequest,
        SubscribeRequest,
        UnsubscribeRequest,
    )
}

#: Anything :func:`parse_request` accepts.
RequestLike = Union[Request, dict]


def parse_request(payload: RequestLike) -> Request:
    """Turn a wire payload (or an already-typed request) into a request.

    Raises :class:`InvalidRequestError` for anything malformed; never lets
    a ``KeyError``/``TypeError`` escape, so the caller can map failures to
    error envelopes uniformly.
    """
    if isinstance(payload, Request):
        return payload
    if not isinstance(payload, dict):
        raise InvalidRequestError(f"request payload must be an object, got {type(payload).__name__}")
    declared_type = payload.get("type")
    if not isinstance(declared_type, str):
        raise InvalidRequestError("request payload must carry a string 'type' field")
    request_cls = REQUEST_TYPES.get(declared_type)
    if request_cls is None:
        known = ", ".join(sorted(REQUEST_TYPES))
        raise InvalidRequestError(f"unknown request type {declared_type!r}; use one of {known}")
    return request_cls.from_dict(payload)
