"""Tests for the M-tree."""

import pytest

from repro.core.distances import footrule_topk_raw, max_footrule_distance
from repro.core.stats import SearchStats
from repro.metric.mtree import MTree


def brute_force(rankings, query, theta_raw):
    return {
        r.rid for r in rankings if footrule_topk_raw(query, r) <= theta_raw
    }


@pytest.fixture(params=[2, 4, 16])
def tree(request, paper_rankings):
    return MTree.build(paper_rankings.rankings, footrule_topk_raw, capacity=request.param)


class TestConstruction:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            MTree(footrule_topk_raw, capacity=1)

    def test_rejects_unknown_promotion(self):
        with pytest.raises(ValueError):
            MTree(footrule_topk_raw, promotion="best")

    def test_size(self, tree, paper_rankings):
        assert len(tree) == len(paper_rankings)

    def test_all_rankings_stored(self, tree, paper_rankings):
        assert {r.rid for r in tree} == {r.rid for r in paper_rankings}

    def test_small_capacity_grows_height(self, paper_rankings):
        small = MTree.build(paper_rankings.rankings, footrule_topk_raw, capacity=2)
        large = MTree.build(paper_rankings.rankings, footrule_topk_raw, capacity=64)
        assert small.height() >= large.height()
        assert large.height() == 1

    def test_covering_radius_invariant(self, tree):
        """Every object in a routing entry's subtree lies within its covering radius."""

        def check(node):
            for entry in node.entries:
                if entry.subtree is None:
                    continue
                for ranking in collect(entry.subtree):
                    assert footrule_topk_raw(entry.ranking, ranking) <= entry.covering_radius + 1e-9
                check(entry.subtree)

        def collect(node):
            output = []
            for entry in node.entries:
                if entry.subtree is None:
                    output.append(entry.ranking)
                else:
                    output.extend(collect(entry.subtree))
            return output

        check(tree._root)

    def test_random_promotion_also_correct(self, paper_rankings, query_k5):
        tree = MTree.build(
            paper_rankings.rankings, footrule_topk_raw, capacity=3, promotion="random"
        )
        theta_raw = 20
        expected = brute_force(paper_rankings, query_k5, theta_raw)
        assert {r.rid for r, _ in tree.range_search(query_k5, theta_raw)} == expected

    def test_construction_distance_calls_positive_for_small_capacity(self, paper_rankings):
        tree = MTree.build(paper_rankings.rankings, footrule_topk_raw, capacity=2)
        assert tree.construction_distance_calls > 0

    def test_memory_estimate_positive(self, tree):
        assert tree.memory_estimate_bytes() > 0

    def test_repr(self, tree):
        assert "MTree" in repr(tree)


class TestRangeSearch:
    @pytest.mark.parametrize("theta", [0.0, 0.1, 0.2, 0.3, 0.5, 0.9])
    def test_matches_brute_force(self, tree, paper_rankings, query_k5, theta):
        theta_raw = theta * max_footrule_distance(paper_rankings.k)
        expected = brute_force(paper_rankings, query_k5, theta_raw)
        assert {r.rid for r, _ in tree.range_search(query_k5, theta_raw)} == expected

    def test_exact_match(self, tree, paper_rankings):
        results = tree.range_search(paper_rankings[2], 0)
        assert {r.rid for r, _ in results} == {2}

    def test_distances_reported_correctly(self, tree, paper_rankings, query_k5):
        for ranking, separation in tree.range_search(query_k5, 40):
            assert separation == footrule_topk_raw(query_k5, ranking)

    def test_stats_recorded(self, tree, query_k5):
        stats = SearchStats()
        tree.range_search(query_k5, 10, stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.distance_calls >= 0

    def test_larger_collection_correct(self, nyt_small):
        tree = MTree.build(nyt_small.rankings, footrule_topk_raw, capacity=8)
        query = nyt_small[3]
        theta_raw = 0.2 * max_footrule_distance(nyt_small.k)
        expected = brute_force(nyt_small, query, theta_raw)
        assert {r.rid for r, _ in tree.range_search(query, theta_raw)} == expected

    def test_pruning_reduces_distance_calls(self, nyt_small):
        tree = MTree.build(nyt_small.rankings, footrule_topk_raw, capacity=8)
        query = nyt_small[3]
        small_stats, large_stats = SearchStats(), SearchStats()
        tree.range_search(query, 2, stats=small_stats)
        tree.range_search(query, max_footrule_distance(nyt_small.k), stats=large_stats)
        assert small_stats.distance_calls <= large_stats.distance_calls
