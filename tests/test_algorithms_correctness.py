"""End-to-end correctness: every algorithm returns exactly the true result set.

The ground truth is a brute-force scan computing the Footrule distance of
every indexed ranking.  All twelve registered algorithms are checked on both
dataset presets and on all paper thresholds; reported distances are verified
for every algorithm that reports exact distances (Blocked+Prune may report a
certified upper bound for early-accepted results, so only its result *set* is
checked).
"""

import pytest

from repro.core.distances import footrule_topk, footrule_topk_raw, max_footrule_distance
from repro.core.ranking import Ranking
from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.algorithms.minimal_fv import MinimalFilterValidate

THETAS = (0.0, 0.1, 0.2, 0.3)

#: Coarse variants are built once per module with the paper's tuning.
ALGORITHM_KWARGS = {"Coarse": {"theta_c": 0.3}, "Coarse+Drop": {"theta_c": 0.1}}

#: Algorithms whose reported per-match distances may be certified bounds
#: rather than exact values.
INEXACT_DISTANCE_ALGORITHMS = {"Blocked+Prune", "Blocked+Prune+Drop"}


def brute_force(rankings, query, theta):
    theta_raw = theta * max_footrule_distance(rankings.k)
    return {
        r.rid: footrule_topk(query, r)
        for r in rankings
        if footrule_topk_raw(query, r) <= theta_raw
    }


@pytest.fixture(scope="module")
def algorithms_nyt(nyt_small):
    return {
        name: make_algorithm(name, nyt_small, **ALGORITHM_KWARGS.get(name, {}))
        for name in available_algorithms()
    }


@pytest.fixture(scope="module")
def algorithms_yago(yago_small):
    return {
        name: make_algorithm(name, yago_small, **ALGORITHM_KWARGS.get(name, {}))
        for name in available_algorithms()
    }


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("name", available_algorithms())
class TestResultSetsMatchBruteForce:
    def test_nyt(self, name, theta, algorithms_nyt, nyt_small, nyt_queries):
        algorithm = algorithms_nyt[name]
        for query in nyt_queries[:6]:
            expected = brute_force(nyt_small, query, theta)
            if isinstance(algorithm, MinimalFilterValidate):
                algorithm.prepare(query, theta)
            result = algorithm.search(query, theta)
            assert result.rids == set(expected), f"{name} theta={theta}"
            if name not in INEXACT_DISTANCE_ALGORITHMS:
                for match in result:
                    assert match.distance == pytest.approx(expected[match.rid])

    def test_yago(self, name, theta, algorithms_yago, yago_small, yago_queries):
        algorithm = algorithms_yago[name]
        for query in yago_queries[:6]:
            expected = brute_force(yago_small, query, theta)
            if isinstance(algorithm, MinimalFilterValidate):
                algorithm.prepare(query, theta)
            result = algorithm.search(query, theta)
            assert result.rids == set(expected), f"{name} theta={theta}"


@pytest.mark.parametrize("name", available_algorithms())
class TestCommonBehaviour:
    def test_query_equal_to_indexed_ranking_is_found(self, name, nyt_small, algorithms_nyt):
        algorithm = algorithms_nyt[name]
        query = Ranking(nyt_small[5].items)
        if isinstance(algorithm, MinimalFilterValidate):
            algorithm.prepare(query, 0.0)
        result = algorithm.search(query, 0.0)
        assert 5 in result.rids

    def test_disjoint_query_returns_nothing(self, name, nyt_small, algorithms_nyt):
        algorithm = algorithms_nyt[name]
        domain_max = max(nyt_small.item_domain())
        query = Ranking(list(range(domain_max + 1, domain_max + 1 + nyt_small.k)))
        if isinstance(algorithm, MinimalFilterValidate):
            algorithm.prepare(query, 0.3)
        result = algorithm.search(query, 0.3)
        assert len(result) == 0

    def test_results_sorted_by_distance(self, name, algorithms_nyt, nyt_queries):
        algorithm = algorithms_nyt[name]
        query = nyt_queries[0]
        if isinstance(algorithm, MinimalFilterValidate):
            algorithm.prepare(query, 0.3)
        result = algorithm.search(query, 0.3)
        distances = [match.distance for match in result]
        assert distances == sorted(distances)

    def test_result_monotone_in_theta(self, name, algorithms_nyt, nyt_queries):
        algorithm = algorithms_nyt[name]
        query = nyt_queries[1]
        previous: set[int] = set()
        for theta in THETAS:
            if isinstance(algorithm, MinimalFilterValidate):
                algorithm.prepare(query, theta)
            current = algorithm.search(query, theta).rids
            assert previous <= current
            previous = current

    def test_rejects_invalid_theta(self, name, algorithms_nyt, nyt_queries):
        from repro.core.errors import InvalidThresholdError

        algorithm = algorithms_nyt[name]
        with pytest.raises(InvalidThresholdError):
            algorithm.search(nyt_queries[0], 1.0)
        with pytest.raises(InvalidThresholdError):
            algorithm.search(nyt_queries[0], -0.1)

    def test_rejects_query_of_wrong_size(self, name, algorithms_nyt):
        from repro.core.errors import InvalidThresholdError

        algorithm = algorithms_nyt[name]
        with pytest.raises(InvalidThresholdError):
            algorithm.search(Ranking([1, 2, 3]), 0.1)

    def test_stats_total_time_recorded(self, name, algorithms_nyt, nyt_queries):
        algorithm = algorithms_nyt[name]
        query = nyt_queries[2]
        if isinstance(algorithm, MinimalFilterValidate):
            algorithm.prepare(query, 0.2)
        result = algorithm.search(query, 0.2)
        assert result.stats.total_seconds > 0.0
        assert result.algorithm == name
