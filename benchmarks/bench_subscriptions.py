"""Standing-query cost: push latency paced, coalescing efficiency bursty.

Two figures for the subscription subsystem, measured over a real TCP
connection (threaded transport, protocol v2):

* **push latency** — commit-to-delivery time for paced mutations that
  each change a standing query's result set: the client inserts a
  near-query row, stamps the commit, and waits for the delta push that
  reflects it (median / p95 over ``--mutations`` rounds);
* **coalescing efficiency** — an unpaced burst of mutations against the
  same subscription: ``1 - deltas/commits`` is the fraction of commits
  the dispatcher folded away (each surviving delta is still exact — the
  replayed result is asserted byte-identical to a fresh query at the
  end of each phase).

Run under pytest-benchmark as part of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_subscriptions.py
    PYTHONPATH=src python benchmarks/bench_subscriptions.py --check

``--check`` exits non-zero unless the burst coalesced at all and the
equivalence assertions held — the CI smoke for the push pipeline.
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time

import pytest

from repro.api import Client, Database, DatabaseServer, Response
from repro.datasets.nyt import nyt_like_dataset

from _utils import run_once

THETA = 0.3
K = 10
BASE_ROWS = 400
PACED_MUTATIONS = 60
BURST_MUTATIONS = 200


def _result_bytes(matches) -> bytes:
    return Response(ok=True, matches=tuple(matches)).result_bytes()


def _variant(query, rng: random.Random) -> list[int]:
    """A near-query ranking: one random transposition of the query."""
    items = list(query)
    i, j = rng.randrange(len(items)), rng.randrange(len(items))
    items[i], items[j] = items[j], items[i]
    return items


def _drain_until_equivalent(subscription, session, query, timeout: float = 30.0) -> int:
    """Consume deltas until the handle equals a fresh query; count them."""
    expected = _result_bytes(session.range_query(query, THETA, collection="news").matches)
    deadline = time.monotonic() + timeout
    consumed = 0
    while subscription.result_bytes() != expected:
        if time.monotonic() > deadline:
            raise AssertionError("subscription never converged to the fresh answer")
        try:
            delta = subscription.get(timeout=0.5)
        except TimeoutError:
            continue
        if delta is not None:
            consumed += 1
    return consumed


def _setup(n: int):
    rankings = nyt_like_dataset(n=n, k=K, seed=19)
    rows = [list(ranking.items) for ranking in rankings]
    database = Database()
    live = database.create_live("news")
    for row in rows:
        live.insert(row)
    return database, rows


def measure_push_latency(database, query, mutations: int) -> dict:
    """Paced commit-to-push latency through a served subscription."""
    rng = random.Random(7)
    session = database.session()
    latencies = []
    with DatabaseServer(database, port=0) as server:
        with Client(*server.address) as client:
            subscription = client.subscribe(query, collection="news", theta=THETA)
            for _ in range(mutations):
                client.insert(_variant(query, rng), collection="news")
                started = time.perf_counter()
                delta = subscription.get(timeout=30.0)
                latencies.append(time.perf_counter() - started)
                assert delta is not None
            _drain_until_equivalent(subscription, session, query)
            subscription.unsubscribe()
    return {
        "mutations": mutations,
        "median_ms": statistics.median(latencies) * 1000.0,
        "p95_ms": sorted(latencies)[int(0.95 * (len(latencies) - 1))] * 1000.0,
    }


def measure_coalescing(database, query, mutations: int) -> dict:
    """Unpaced burst: how many commits fold into each delivered delta."""
    rng = random.Random(11)
    session = database.session()
    with DatabaseServer(database, port=0) as server:
        with Client(*server.address) as client:
            subscription = client.subscribe(query, collection="news", theta=THETA)
            started = time.perf_counter()
            for _ in range(mutations):
                client.insert(_variant(query, rng), collection="news")
            deltas = _drain_until_equivalent(subscription, session, query)
            elapsed = time.perf_counter() - started
            subscription.unsubscribe()
    return {
        "mutations": mutations,
        "deltas": deltas,
        "efficiency": 1.0 - (deltas / mutations),
        "elapsed_seconds": elapsed,
    }


# -- pytest-benchmark entry points -------------------------------------------------


def test_push_latency_paced(benchmark):
    database, rows = _setup(BASE_ROWS)
    try:
        report = run_once(
            benchmark, measure_push_latency, database, rows[3], PACED_MUTATIONS
        )
        benchmark.extra_info.update(report)
    finally:
        database.close()


def test_coalescing_under_burst(benchmark):
    database, rows = _setup(BASE_ROWS)
    try:
        report = run_once(
            benchmark, measure_coalescing, database, rows[3], BURST_MUTATIONS
        )
        benchmark.extra_info.update(report)
        assert report["deltas"] <= report["mutations"]
    finally:
        database.close()


# -- standalone ---------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=BASE_ROWS, help="base collection size")
    parser.add_argument(
        "--mutations", type=int, default=PACED_MUTATIONS, help="paced mutations to time"
    )
    parser.add_argument(
        "--burst", type=int, default=BURST_MUTATIONS, help="unpaced burst size"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the burst coalesced at all",
    )
    args = parser.parse_args(argv)

    database, rows = _setup(args.rows)
    try:
        latency = measure_push_latency(database, rows[3], args.mutations)
        print(
            f"push latency  ({latency['mutations']} paced commits): "
            f"median {latency['median_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms"
        )
        burst = measure_coalescing(database, rows[3], args.burst)
        print(
            f"coalescing    ({burst['mutations']} burst commits): "
            f"{burst['deltas']} delta(s), efficiency {burst['efficiency']:.1%}, "
            f"{burst['elapsed_seconds']:.2f}s end to end"
        )
    finally:
        database.close()

    if args.check and burst["deltas"] >= burst["mutations"]:
        print("CHECK FAILED: the burst never coalesced", file=sys.stderr)
        return 1
    if args.check:
        print(
            f"CHECK OK: {burst['mutations']} commits -> {burst['deltas']} deltas "
            f"(every one exact)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
