"""Sharded index: partition the collection, fan out queries, merge answers.

The collection is split round-robin over ``num_shards`` disjoint
:class:`RankingSet` shards.  Round-robin keeps shard sizes within one ranking
of each other and — because shard-local ids are assigned in increasing
global-id order — keeps the local id order of every shard consistent with
the global id order, so distance ties are broken identically with and
without sharding.

Any registered algorithm can serve as the per-shard index: instances are
built lazily (per shard, per parameter set) through the algorithm registry
and kept until the next :meth:`ShardedIndex.rebuild`.  Queries fan out over
a thread pool, one task per shard, and the per-shard answers are merged:

* **range queries** concatenate the per-shard matches (shards are disjoint,
  so no deduplication is needed) and re-sort by distance;
* **k-NN queries** take each shard's exact local top-k and keep the ``k``
  globally smallest ``(distance, rid)`` pairs — a bounded merge that never
  materialises more than ``num_shards * k`` candidates.

Both merges are exact: the sharded answer equals the single-index answer for
every query, which the property tests in ``tests/test_service_sharding.py``
assert across algorithms, datasets, and shard counts.

Rebuilds are safe under concurrent queries: each partitioning epoch is an
immutable :class:`_Build` snapshot, every query pins the snapshot it started
on (per-shard index instances are keyed by epoch), and the executor is
swapped out under the lock but shut down outside it — an in-flight query
either completes on its old epoch (still a correct answer over the same
collection) or retries on a fresh pool.

Pure-Python distance evaluation holds the GIL, so the fan-out does not buy
CPU parallelism here; it buys the *architecture* — per-shard build times,
bounded merges, and an executor seam where process pools, async backends, or
remote shard servers can be plugged in without touching the algorithms.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import SearchStats
from repro.algorithms.base import RankingSearchAlgorithm
from repro.algorithms.knn import KnnResult, Neighbour, exact_local_top
from repro.algorithms.registry import make_algorithm


@dataclass(frozen=True)
class _Build:
    """One immutable partitioning epoch; queries pin the one they started on."""

    version: int
    shards: tuple[RankingSet, ...]
    global_rids: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def _partition_round_robin(rankings: RankingSet, num_shards: int, version: int) -> _Build:
    """Split ``rankings`` into ``num_shards`` sets plus local-to-global id maps."""
    shards = [RankingSet(k=rankings.k) for _ in range(num_shards)]
    global_rids: list[list[int]] = [[] for _ in range(num_shards)]
    for ranking in rankings:
        assert ranking.rid is not None
        shard = ranking.rid % num_shards
        shards[shard].add(ranking.items)
        global_rids[shard].append(ranking.rid)
    return _Build(
        version=version,
        shards=tuple(shards),
        global_rids=tuple(tuple(rids) for rids in global_rids),
    )


class ShardedIndex:
    """A ranking collection partitioned over shards, queried by fan-out.

    Parameters
    ----------
    rankings:
        The full collection; kept so merged answers carry the global
        (id-bearing) ranking objects.
    num_shards:
        Number of partitions; must be positive.  One shard degenerates to
        the single-index case and skips the thread pool entirely.

    Examples
    --------
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9], [2, 1, 3]])
    >>> sharded = ShardedIndex.build(rankings, num_shards=2)
    >>> result = sharded.range_query(Ranking([1, 2, 3]), theta=0.3, algorithm="F&V")
    >>> sorted(result.rids)
    [0, 1, 3]
    """

    def __init__(self, rankings: RankingSet, num_shards: int = 1) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if len(rankings) == 0:
            raise ValueError("cannot shard an empty collection")
        self._rankings = rankings
        self._lock = threading.Lock()
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._instances: dict[tuple, RankingSearchAlgorithm] = {}
        self._build_state = _partition_round_robin(
            rankings, min(num_shards, len(rankings)), version=0
        )

    @classmethod
    def build(cls, rankings: RankingSet, num_shards: int = 1) -> "ShardedIndex":
        """Partition ``rankings``; per-shard indices are built lazily per algorithm."""
        return cls(rankings, num_shards=num_shards)

    # -- lifecycle ---------------------------------------------------------------

    def rebuild(self, num_shards: Optional[int] = None) -> None:
        """Repartition the collection, dropping every per-shard index.

        Cached results referring to the previous build are stale afterwards;
        the engine invalidates its result cache whenever this is called (the
        :attr:`version` counter is what the cache keys that decision on).
        In-flight queries finish on the epoch they started with.
        """
        if num_shards is not None and num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        with self._lock:
            build = self._build_state
            count = (
                min(num_shards, len(self._rankings)) if num_shards is not None else build.num_shards
            )
            version = build.version + 1
            self._build_state = _partition_round_robin(self._rankings, count, version)
            # drop index instances of superseded epochs; in-flight queries
            # keep theirs alive through their pinned snapshot
            self._instances = {
                key: value for key, value in self._instances.items() if key[0] == version
            }
            executor, self._executor = self._executor, None
        if executor is not None:  # shut down OUTSIDE the lock: tasks may need it
            executor.shutdown(wait=True)

    def close(self) -> None:
        """Shut the fan-out thread pool down (idempotent).

        Queries that race (or follow) the close still answer correctly —
        they fall back to running their shard tasks serially instead of
        resurrecting a pool nothing would ever shut down again.
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- accessors ---------------------------------------------------------------

    def _current_build(self) -> _Build:
        with self._lock:
            return self._build_state

    @property
    def rankings(self) -> RankingSet:
        """The full (unpartitioned) collection."""
        return self._rankings

    @property
    def num_shards(self) -> int:
        """The current number of shards."""
        return self._current_build().num_shards

    @property
    def version(self) -> int:
        """Build epoch, bumped by every :meth:`rebuild`."""
        return self._current_build().version

    @property
    def shard_sizes(self) -> list[int]:
        """Number of rankings in each shard."""
        return [len(shard) for shard in self._current_build().shards]

    def shard_algorithm(self, shard: int, name: str, **kwargs) -> RankingSearchAlgorithm:
        """The (lazily built) instance of algorithm ``name`` on one shard."""
        return self._instance(self._current_build(), shard, name, kwargs)

    def _instance(
        self, build: _Build, shard: int, name: str, kwargs: dict
    ) -> RankingSearchAlgorithm:
        key = (build.version, shard, name, tuple(sorted(kwargs.items())))
        with self._lock:
            instance = self._instances.get(key)
        if instance is None:
            # build outside the lock: index construction can be expensive and
            # concurrent shards should not serialise on it
            instance = make_algorithm(name, build.shards[shard], **kwargs)
            with self._lock:
                instance = self._instances.setdefault(key, instance)
        return instance

    def prepare(self, query: Ranking, theta: float, algorithm: str, **kwargs) -> None:
        """Forward per-query materialisation (Minimal F&V) to every shard."""
        build = self._current_build()
        for shard in range(build.num_shards):
            instance = self._instance(build, shard, algorithm, kwargs)
            prepare = getattr(instance, "prepare", None)
            if prepare is None:
                raise TypeError(f"algorithm {algorithm!r} has no prepare() step")
            prepare(query, theta)

    # -- fan-out machinery ---------------------------------------------------------

    def _get_executor(self, workers: int) -> Optional[ThreadPoolExecutor]:
        """The fan-out pool, or ``None`` once the index is closed."""
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
            return self._executor

    def _fan_out(self, task, count: int) -> list:
        """Run ``task(shard_index)`` for every shard, concurrently if > 1."""
        if count == 1:
            return [task(0)]
        while True:
            executor = self._get_executor(count)
            if executor is None:  # closed: answer serially rather than leak a pool
                return [task(shard) for shard in range(count)]
            try:
                return list(executor.map(task, range(count)))
            except RuntimeError as error:
                # Only a pool shut down by a concurrent rebuild/close between
                # lookup and submission is retryable (tasks are read-only
                # against their pinned epoch, so re-running is safe); a
                # RuntimeError raised by the task itself must propagate or
                # the retry would loop forever on a failing query.
                if "shutdown" not in str(error):
                    raise
                continue

    @staticmethod
    def _merge_shard_stats(merged: SearchStats, shard_stats: list[SearchStats], wall: float) -> None:
        """Sum per-shard counters; report wall time, keep CPU-sum as an extra."""
        for stats in shard_stats:
            merged.merge(stats)
        merged.extra["shard_seconds"] = merged.total_seconds
        merged.extra["shards_queried"] = float(len(shard_stats))
        merged.total_seconds = wall

    # -- range queries ---------------------------------------------------------------

    def range_query(self, query: Ranking, theta: float, algorithm: str, **kwargs) -> SearchResult:
        """Answer one similarity range query through every shard.

        The merged answer is exactly the single-index answer: shards are
        disjoint and range predicates are independent per ranking.
        """
        build = self._current_build()

        def run_shard(shard: int) -> SearchResult:
            instance = self._instance(build, shard, algorithm, kwargs)
            return instance.search(query, theta)

        start = time.perf_counter()
        shard_results = self._fan_out(run_shard, build.num_shards)
        wall = time.perf_counter() - start

        merged = SearchResult(query=query, theta=theta, algorithm=f"sharded:{algorithm}")
        for shard, shard_result in enumerate(shard_results):
            rid_map = build.global_rids[shard]
            for match in shard_result.matches:
                global_rid = rid_map[match.rid]
                merged.add(global_rid, self._rankings[global_rid], match.distance)
        self._merge_shard_stats(merged.stats, [r.stats for r in shard_results], wall)
        return merged.finalize()

    # -- k-NN queries -----------------------------------------------------------------

    def knn(
        self,
        query: Ranking,
        n_neighbours: int,
        algorithm: str,
        initial_theta: float = 0.05,
        growth: float = 2.0,
        **kwargs,
    ) -> KnnResult:
        """Exact k-nearest neighbours through per-shard search + bounded merge.

        Each shard answers its local top-``n_neighbours`` by expanding range
        queries (radius doubled until enough results qualify).  Rankings at
        the maximum possible distance are unreachable by any range query with
        ``theta < 1``, so a shard that still comes up short finishes with a
        brute-force scan — this keeps the sharded answer exact even on
        collections with fully disjoint rankings.  Ties are broken by global
        ranking id, matching a ``sorted((distance, rid))`` brute-force scan.
        """
        if n_neighbours <= 0:
            raise ValueError(f"n_neighbours must be positive, got {n_neighbours}")

        build = self._current_build()

        def run_shard(shard: int) -> tuple[list[tuple[float, int]], SearchStats]:
            instance = self._instance(build, shard, algorithm, kwargs)
            local_top, stats = exact_local_top(
                instance, build.shards[shard], query, n_neighbours,
                initial_theta=initial_theta, growth=growth,
            )
            rid_map = build.global_rids[shard]
            return [(distance, rid_map[local_rid]) for distance, local_rid in local_top], stats

        start = time.perf_counter()
        shard_answers = self._fan_out(run_shard, build.num_shards)
        wall = time.perf_counter() - start

        best = heapq.nsmallest(
            n_neighbours, (entry for top, _ in shard_answers for entry in top)
        )
        neighbours = [
            Neighbour(distance=distance, rid=rid, ranking=self._rankings[rid])
            for distance, rid in best
        ]
        merged_stats = SearchStats()
        self._merge_shard_stats(merged_stats, [stats for _, stats in shard_answers], wall)
        return KnnResult(query=query, neighbours=neighbours, stats=merged_stats)

    def __repr__(self) -> str:
        build = self._current_build()
        return (
            f"ShardedIndex(n={len(self._rankings)}, shards={build.num_shards}, "
            f"version={build.version})"
        )
