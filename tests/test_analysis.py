"""Tests for dataset statistics, cost calibration and report formatting."""

import pytest

from repro.analysis.calibration import CalibrationResult, calibrate_costs, measure_footrule_cost
from repro.analysis.report import format_kv, format_series, format_table
from repro.analysis.stats import (
    EmpiricalDistanceDistribution,
    distance_histogram,
    estimate_intrinsic_dimensionality,
    estimate_zipf_skew,
)
from repro.core.errors import EmptyDatasetError
from repro.core.ranking import RankingSet


class TestEmpiricalDistanceDistribution:
    def test_cdf_boundaries(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=500)
        assert distribution.cdf(-0.5) == 0.0
        assert distribution.cdf(1.0) == 1.0

    def test_cdf_monotone(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=500)
        values = [distribution.cdf(x / 10) for x in range(11)]
        assert values == sorted(values)

    def test_callable_interface(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=200)
        assert distribution(0.5) == distribution.cdf(0.5)

    def test_quantile_within_range(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=500)
        assert 0.0 <= distribution.quantile(0.5) <= 1.0
        with pytest.raises(ValueError):
            distribution.quantile(1.5)

    def test_mean_and_std(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=500)
        assert 0.0 < distribution.mean() <= 1.0
        assert distribution.std() >= 0.0

    def test_len(self, nyt_small):
        assert len(EmpiricalDistanceDistribution(nyt_small, sample_pairs=321)) == 321

    def test_rejects_tiny_collections(self):
        with pytest.raises(EmptyDatasetError):
            EmpiricalDistanceDistribution(RankingSet.from_lists([[1, 2, 3]]))

    def test_rejects_non_positive_sample(self, nyt_small):
        with pytest.raises(ValueError):
            EmpiricalDistanceDistribution(nyt_small, sample_pairs=0)

    def test_clustered_data_has_mass_at_small_distances(self, nyt_small):
        """Near-duplicate clusters put noticeable probability mass below 0.3."""
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=2000)
        assert distribution.cdf(0.3) > 0.0


class TestZipfAndDimensionality:
    def test_zipf_skew_positive_for_skewed_data(self, nyt_small):
        assert estimate_zipf_skew(nyt_small) > 0.1

    def test_zipf_skew_near_zero_for_uniform_frequencies(self):
        rankings = RankingSet.from_lists([[i, i + 1000] for i in range(200)])
        assert estimate_zipf_skew(rankings) < 0.2

    def test_zipf_skew_empty_collection_rejected(self):
        with pytest.raises(EmptyDatasetError):
            estimate_zipf_skew(RankingSet(k=2))

    def test_zipf_skew_max_items_truncation(self, nyt_small):
        full = estimate_zipf_skew(nyt_small)
        truncated = estimate_zipf_skew(nyt_small, max_items=50)
        assert truncated >= 0.0
        assert isinstance(full, float)

    def test_intrinsic_dimensionality_positive(self, nyt_small):
        assert estimate_intrinsic_dimensionality(nyt_small, sample_pairs=1000) > 0.0

    def test_distance_histogram_shape(self, nyt_small):
        edges, counts = distance_histogram(nyt_small, sample_pairs=500, bins=10)
        assert len(edges) == 11
        assert counts.sum() == 500


class TestCalibration:
    def test_footrule_cost_positive(self):
        assert measure_footrule_cost(10, repetitions=50) > 0.0

    def test_footrule_cost_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            measure_footrule_cost(10, repetitions=0)

    def test_calibrate_costs_fields(self):
        calibration = calibrate_costs(5, repetitions=50)
        assert isinstance(calibration, CalibrationResult)
        assert calibration.cost_footrule > 0.0
        assert calibration.merge_cost_per_posting > 0.0
        assert calibration.merge_cost_constant >= 0.0

    def test_cost_merge_scales_with_size(self):
        calibration = calibrate_costs(5, repetitions=50)
        assert calibration.cost_merge(5, 10000) > calibration.cost_merge(5, 10)


class TestReportFormatting:
    def test_format_table_alignment_and_rows(self):
        rows = [{"algorithm": "F&V", "time": 1.5}, {"algorithm": "Coarse", "time": 0.25}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "F&V" in text and "Coarse" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        series = {"F&V": {0.1: 1.0, 0.2: 2.0}, "Coarse": {0.1: 0.5}}
        text = format_series(series, x_label="theta")
        assert "theta" in text
        assert "F&V" in text and "Coarse" in text

    def test_format_large_and_small_numbers(self):
        rows = [{"value": 1234567.0}, {"value": 0.000123}, {"value": 0}]
        text = format_table(rows)
        assert "1,234,567" in text

    def test_format_kv(self):
        text = format_kv({"n": 100, "k": 10}, title="params")
        assert "params" in text
        assert "n" in text and "100" in text

    def test_format_kv_empty(self):
        assert "(empty)" in format_kv({})
