"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidRankingError(ReproError):
    """A ranking violates the top-k list model (wrong type, empty, ...)."""


class DuplicateItemError(InvalidRankingError):
    """A ranking contains the same item at two different ranks."""

    def __init__(self, item: int) -> None:
        super().__init__(f"item {item!r} appears more than once in the ranking")
        self.item = item


class RankingSizeMismatchError(ReproError):
    """Two rankings (or a ranking and an index) have incompatible sizes k."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(f"expected ranking of size {expected}, got size {actual}")
        self.expected = expected
        self.actual = actual


class InvalidThresholdError(ReproError):
    """A similarity threshold lies outside its valid range."""

    def __init__(self, theta: float, reason: str = "") -> None:
        message = f"invalid threshold {theta!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.theta = theta


class EmptyDatasetError(ReproError):
    """An index or model was asked to operate on an empty collection."""


class IndexNotBuiltError(ReproError):
    """A query was issued against an index that has not been built yet."""


class InvalidRequestError(ReproError, ValueError):
    """A serving request is malformed or references impossible parameters.

    Subclasses ``ValueError`` so call sites that predate the typed API keep
    working; the protocol layer maps it to an ``invalid_request`` envelope.
    """


class UnknownKeyError(ReproError, KeyError):
    """A mutation addressed a logical key that holds no live ranking."""

    def __init__(self, key: int) -> None:
        super().__init__(f"no live ranking under key {key}")
        self.key = key

    def __str__(self) -> str:
        # KeyError.__str__ reprs its single argument; keep the message plain.
        return self.args[0]


class UnknownCollectionError(ReproError, KeyError):
    """A request addressed a collection name the database does not hold."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown collection {name!r}")
        self.name = name

    def __str__(self) -> str:
        return self.args[0]


class CollectionClosedError(ReproError):
    """A request reached a database or collection that was already closed."""


class NotPrimaryError(ReproError):
    """A request reached a replica (or a demoted node) that cannot serve it.

    Carries the node's current routing table (when it has one) so stale
    clients can self-correct from the error envelope alone.
    """

    def __init__(self, message: str, routing: dict | None = None) -> None:
        super().__init__(message)
        self.routing = routing


class UnsupportedProtocolError(ReproError):
    """A request needs a protocol capability the connection does not have.

    Raised when a standing-query ``subscribe`` arrives on a protocol v1
    connection, before the v2 hello, or through an in-process session:
    push frames only exist on enveloped v2 connections, and a v1 client
    that received one would misparse it as a reply.  The protocol layer
    maps it to an ``unsupported_protocol`` envelope on a healthy
    connection — the client can keep using request/response verbs.
    """


class SubscriptionOverflowError(ReproError):
    """A standing query fell too far behind and was cancelled.

    Raised (as the terminal push of the subscription) when a slow consumer
    filled its bounded delta queue; re-subscribing starts a fresh snapshot.
    """


class StaleRoutingError(ReproError):
    """A routed request hit a node that no longer owns the addressed key.

    Raised by a primary when the key's hash slot maps to a different shard
    under the node's current routing table — the client routed with a stale
    table version.  Carries the current table for self-correction.
    """

    def __init__(self, message: str, routing: dict | None = None) -> None:
        super().__init__(message)
        self.routing = routing
