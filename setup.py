"""Legacy setup shim.

The project is configured declaratively in ``pyproject.toml``; this file only
exists so ``pip install -e .`` keeps working in fully offline environments
where the PEP-517 editable build path is unavailable (no ``wheel`` package
and no index to fetch build requirements from).
"""

from setuptools import setup

setup()
