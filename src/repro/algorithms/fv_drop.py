"""F&V+Drop: Filter & Validate with entire index lists dropped (Section 6.1).

Lemma 2 shows that any result ranking must share at least
``omega = floor(0.5 * (1 + 2k - sqrt(1 + 4 * theta_raw)))`` items with the
query, so accessing ``k - omega + 1`` query lists (any of them) is enough to
see every candidate at least once; the positional refinement accesses only
``k - omega`` lists provided one of them belongs to an item ranked in the
query's top ``omega`` positions.  Dropping the *longest* lists yields the
largest savings, which is how the query items to keep are selected here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bounds import min_overlap_for_threshold
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import PhaseTimer
from repro.invindex.plain import PlainInvertedIndex
from repro.algorithms.base import RankingSearchAlgorithm


def select_query_items(
    index_lengths: dict[int, int],
    query: Ranking,
    theta_raw: float,
    positional: bool = False,
) -> list[int]:
    """Choose which query items' index lists to access (drop the longest lists).

    Parameters
    ----------
    index_lengths:
        Item -> index-list length for the query's items.
    query:
        The query ranking (needed for the positional refinement).
    theta_raw:
        Raw query threshold.
    positional:
        Use the refined ``k - omega``-list variant of Lemma 2, which requires
        at least one accessed item to sit in the query's top ``omega``
        positions.  The paper itself notes this variant may miss rankings
        whose ``omega`` overlapping items are not top-positioned, so the safe
        ``k - omega + 1`` variant is the default.

    Returns
    -------
    list[int]
        The query items whose lists must be accessed.
    """
    k = query.size
    omega = min_overlap_for_threshold(k, theta_raw)
    if omega <= 0:
        return list(query.items)
    keep_count = (k - omega) if positional else (k - omega + 1)
    keep_count = max(1, min(k, keep_count))
    # keep the shortest lists (drop the longest ones)
    by_length = sorted(query.items, key=lambda item: (index_lengths.get(item, 0), query.rank_of(item)))
    kept = by_length[:keep_count]
    if positional and not any(query.rank_of(item) < omega for item in kept):
        # swap the longest kept list for the shortest top-omega item list to
        # satisfy the positional requirement of the refined bound
        top_items = [item for item in by_length if query.rank_of(item) < omega]
        if top_items:
            kept[-1] = top_items[0]
    return kept


class FilterValidateDrop(RankingSearchAlgorithm):
    """F&V accessing only the index lists required by the overlap bound."""

    name = "F&V+Drop"

    def __init__(
        self,
        rankings: RankingSet,
        index: Optional[PlainInvertedIndex] = None,
        positional: bool = False,
    ) -> None:
        super().__init__(rankings)
        self._index = index if index is not None else PlainInvertedIndex.build(rankings)
        self._positional = positional

    @classmethod
    def build(cls, rankings: RankingSet, positional: bool = False) -> "FilterValidateDrop":
        """Build the algorithm together with its plain inverted index."""
        return cls(rankings, positional=positional)

    @property
    def index(self) -> PlainInvertedIndex:
        """The underlying plain inverted index."""
        return self._index

    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        theta_raw = self.theta_raw(theta)
        with PhaseTimer(result.stats, "filter_seconds"):
            lengths = {item: self._index.list_length(item) for item in query.items}
            kept_items = select_query_items(lengths, query, theta_raw, positional=self._positional)
            result.stats.lists_dropped += query.size - len(kept_items)
            candidates = self._index.candidates(query, stats=result.stats, query_items=kept_items)
        with PhaseTimer(result.stats, "validate_seconds"):
            self._validate_candidates(candidates, query, theta, result)
