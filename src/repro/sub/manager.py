"""The server side of standing queries: watch, recompute, diff, deliver.

One :class:`SubscriptionManager` lives on each
:class:`~repro.api.database.Database`.  Per watched live collection it
installs a commit hook (chaining any hook already present) and runs one
*dispatcher* thread; the hook only bumps a counter and notifies, so the
mutator never computes queries while holding the collection lock.  The
dispatcher drains the counter — a burst of ``n`` commits becomes **one**
recompute (``repro_sub_coalesced_total`` counts the ``n - 1`` merged
wake-ups) — re-runs every subscription's query through the collection's
serving engine (exact by construction, so deltas inherit the paper
algorithms' correctness), and diffs against the subscription's previous
result.  Priming (the initial snapshot) runs on the same thread, which
totally orders every result a subscription ever sees.

Each subscription owns a bounded pending-delta queue and a *sender*
thread that hands bodies to the transport's ``deliver`` callable (which
writes the ``push`` frame; blocking there is the backpressure).  When the
queue is full the subscription is cancelled with one terminal
``subscription_overflow`` error push instead of buffering without bound.

Locking: the manager lock may nest a watch condition (retirement checks
membership), never the reverse; subscription conditions are leaves held
by no caller of manager or watch methods.  The commit hook takes the
watch condition while the mutator holds the collection lock; the
dispatcher only queries *after* releasing the watch condition, so that
edge never closes a cycle.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Optional

from repro.api.requests import SubscribeRequest
from repro.api.responses import MatchPayload, Response, error_response
from repro.core.errors import CollectionClosedError, SubscriptionOverflowError
from repro.core.ranking import Ranking
from repro.devtools.locktrace import make_lock
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry
from repro.sub.delta import delta_body, diff_matches, EVENT_ERROR

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "DeliverFn",
    "ServerSubscription",
    "SubscriptionManager",
]

logger = logging.getLogger(__name__)

#: Pending-delta queue bound when the subscribe request names none.
DEFAULT_QUEUE_SIZE = 64

#: How long a subscribe waits for the dispatcher to compute its snapshot.
_PRIME_TIMEOUT_SECONDS = 30.0

#: Transport callback delivering one push body for one subscription id.
#: Raises on connection failure; blocking here is the backpressure.
DeliverFn = Callable[[Any, dict], None]


def _compute_matches(engine, request: SubscribeRequest) -> list[MatchPayload]:
    """Run the subscription's query; the same shape a fresh request returns."""
    query = Ranking(request.items)
    if request.mode == "range":
        answered = engine.query(query, request.theta, algorithm=request.algorithm)
        return [
            MatchPayload(rid=match.rid, distance=match.distance, items=match.ranking.items)
            for match in answered.result.matches
        ]
    answered = engine.knn(query, request.k, algorithm=request.algorithm)
    return [
        MatchPayload(
            rid=neighbour.rid, distance=neighbour.distance, items=neighbour.ranking.items
        )
        for neighbour in answered.result.neighbours
    ]


def _error_body(error: BaseException) -> dict:
    """The terminal push body carrying a typed error envelope."""
    envelope = error_response(error)
    assert envelope.error is not None
    return {"event": EVENT_ERROR, "error": envelope.error.to_dict()}


class ServerSubscription:
    """One registered standing query: its state, queue, and sender thread.

    State machine (under ``_cond``): ``active`` — live, deltas flow;
    ``ending`` — a terminal error push is queued, the sender drains the
    queue and exits; ``closed`` — cancelled, nothing more is sent.
    """

    def __init__(
        self,
        manager: "SubscriptionManager",
        subscription_id: Any,
        request: SubscribeRequest,
        deliver: DeliverFn,
        transport: str,
        queue_size: int,
        pushes_counter,
    ) -> None:
        self.id = subscription_id
        self.request = request
        self.transport = transport
        self.queue_size = queue_size
        self._manager = manager
        self._watch: Optional["_Watch"] = None  # set by subscribe before attach
        self._deliver = deliver
        self._m_pushes = pushes_counter
        self._cond = threading.Condition(make_lock("ServerSubscription._cond"))
        self._queue: deque[dict] = deque()  # guarded-by: _cond
        self._state = "active"  # guarded-by: _cond
        self._last: Optional[dict[int, MatchPayload]] = None  # guarded-by: _cond
        self._snapshot: Optional[tuple[MatchPayload, ...]] = None  # guarded-by: _cond
        self._snapshot_version = 0  # guarded-by: _cond
        self._prime_error: Optional[BaseException] = None  # guarded-by: _cond
        self._released = False  # manager bookkeeping; guarded by the manager lock
        self._sender = threading.Thread(
            target=self._run_sender, name=f"repro-sub-send-{subscription_id}", daemon=True
        )

    # -- dispatcher side -----------------------------------------------------------

    def offer(self, matches: list[MatchPayload], version: int) -> bool:
        """Absorb one recomputed result; returns ``True`` on overflow cancel.

        The first offer primes the subscription (it becomes the snapshot
        the subscribe reply carries); later offers enqueue the diff against
        the previous result, or the terminal overflow push when the
        consumer is too far behind.  Dispatcher thread only.
        """
        with self._cond:
            if self._state != "active":
                return False
            if self._last is None:
                self._last = {match.rid: match for match in matches}
                self._snapshot = tuple(matches)
                self._snapshot_version = version
                self._cond.notify_all()
                return False
            delta = diff_matches(self._last, matches, version)
            if delta.empty:
                return False
            self._last = {match.rid: match for match in matches}
            if len(self._queue) >= self.queue_size:
                overflow = SubscriptionOverflowError(
                    f"subscription {self.id!r} fell {len(self._queue) + 1} deltas behind "
                    f"its queue bound of {self.queue_size}; cancelled"
                )
                self._state = "ending"
                self._queue.clear()
                self._queue.append(_error_body(overflow))
                self._cond.notify_all()
                return True
            self._queue.append(delta_body(delta))
            self._cond.notify_all()
            return False

    def fail(self, error: BaseException) -> None:
        """Terminate with a typed error: the watched collection went away.

        Before priming the error surfaces on the subscribe call itself;
        after, it becomes the terminal error push.  Dispatcher thread only.
        """
        with self._cond:
            if self._state != "active":
                return
            if self._last is None:
                self._prime_error = error
                self._state = "closed"
            else:
                self._state = "ending"
                self._queue.append(_error_body(error))
            self._cond.notify_all()

    # -- subscribe/teardown side ---------------------------------------------------

    def wait_primed(self) -> tuple[tuple[MatchPayload, ...], int]:
        """Block until the dispatcher computed the snapshot; raise its error."""
        deadline = time.monotonic() + _PRIME_TIMEOUT_SECONDS
        with self._cond:
            while (
                self._snapshot is None
                and self._prime_error is None
                and self._state == "active"
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    break
            if self._prime_error is not None:
                raise self._prime_error
            if self._snapshot is None:
                raise CollectionClosedError(
                    f"subscription {self.id!r} was cancelled before its snapshot"
                )
            return self._snapshot, self._snapshot_version

    def start_sender(self) -> None:
        """Start delivering queued pushes (after the snapshot reply is built)."""
        self._sender.start()

    def close(self) -> None:
        """Drop the subscription now: clear the queue, stop the sender."""
        with self._cond:
            if self._state == "closed":
                return
            self._state = "closed"
            self._queue.clear()
            self._cond.notify_all()

    @property
    def active(self) -> bool:
        with self._cond:
            return self._state == "active"

    # -- sender thread -------------------------------------------------------------

    def _run_sender(self) -> None:
        while True:
            with self._cond:
                while not self._queue and self._state in ("active", "ending"):
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                body = self._queue.popleft()
                terminal = not self._queue and self._state == "ending"
            try:
                self._deliver(self.id, body)
                self._m_pushes.inc()
            except Exception as error:
                logger.debug("subscription %r push delivery failed: %s", self.id, error)
                self._manager.connection_lost(self)
                return
            if terminal:
                self._manager.release(self)
                return


class _Watch:
    """One watched live collection: commit hook + dispatcher thread."""

    def __init__(self, manager: "SubscriptionManager", engine) -> None:
        self._manager = manager
        self._engine = engine
        self.key = id(engine.collection)
        self._cond = threading.Condition(make_lock("SubscriptionWatch._cond"))
        self._subs: dict[int, ServerSubscription] = {}  # guarded-by: _cond
        self._pending = 0  # guarded-by: _cond
        self._stopped = False  # guarded-by: _cond
        collection = engine.collection
        self._prior_hook = collection.wal_hook
        # one stable hook object: ``self._on_commit`` makes a fresh bound
        # method per access, so identity checks need this exact reference
        self._hook = self._on_commit
        collection.wal_hook = self._hook
        self._thread = threading.Thread(
            target=self._run, name="repro-sub-dispatch", daemon=True
        )
        self._thread.start()

    def _on_commit(self, record) -> None:
        # Runs on the mutator thread under the collection lock: never block,
        # never query — just hand the work to the dispatcher.
        prior = self._prior_hook
        if prior is not None:
            prior(record)
        with self._cond:
            self._pending += 1
            self._cond.notify_all()

    def attach(self, sub: ServerSubscription) -> bool:
        """Register; ``False`` when the watch already stopped (caller retries)."""
        with self._cond:
            if self._stopped:
                return False
            self._subs[id(sub)] = sub
            self._pending += 1  # force a pass so the new sub gets primed
            self._cond.notify_all()
            return True

    def discard(self, sub: ServerSubscription) -> None:
        with self._cond:
            self._subs.pop(id(sub), None)

    def subscribers(self) -> list[ServerSubscription]:
        with self._cond:
            return list(self._subs.values())

    def empty(self) -> bool:
        with self._cond:
            return not self._subs

    def stop(self) -> None:
        collection = self._engine.collection
        if collection.wal_hook is self._hook:
            collection.wal_hook = self._prior_hook
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._pending == 0 and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                batch = self._pending
                self._pending = 0
                subs = list(self._subs.values())
            if batch > 1:
                self._manager.note_coalesced(batch - 1)
            version = self._engine.collection.version
            for sub in subs:
                self._refresh(sub, version)

    def _refresh(self, sub: ServerSubscription, version: int) -> None:
        try:
            matches = _compute_matches(self._engine, sub.request)
        except Exception as error:
            # The collection was dropped or closed under the subscription
            # (or the engine rejected the query): terminate it with the
            # typed envelope a fresh query would have failed with.
            logger.debug("standing query %r failed: %s", sub.id, error)
            sub.fail(error)
            self._manager.release(sub)
            return
        if sub.offer(matches, version):
            self._manager.release(sub, overflow=True)


class SubscriptionManager:
    """Registry of every standing query a database is serving."""

    def __init__(self, *, default_queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        self._default_queue_size = default_queue_size
        self._lock = make_lock("SubscriptionManager._lock")
        self._watches: dict[int, _Watch] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        registry = get_registry()
        self._m_active = registry.gauge(
            metric_names.SUB_ACTIVE, "Standing queries currently registered."
        )
        self._m_coalesced = registry.counter(
            metric_names.SUB_COALESCED_TOTAL,
            "Commit wake-ups merged into an already-pending recompute.",
        )
        self._m_overflows = registry.counter(
            metric_names.SUB_OVERFLOWS_TOTAL,
            "Subscriptions cancelled because their delta queue overflowed.",
        )

    @property
    def active(self) -> int:
        """How many subscriptions are currently registered."""
        with self._lock:
            return self._count

    def subscribe(
        self,
        engine,
        request: SubscribeRequest,
        subscription_id: Any,
        deliver: DeliverFn,
        transport: str,
    ) -> tuple[Response, ServerSubscription]:
        """Register one standing query against ``engine``'s live collection.

        Returns the snapshot reply (current result set plus subscription
        metadata under ``data``) and the live handle; the caller sends the
        reply, then pushes flow until unsubscribe, overflow, or disconnect.
        """
        queue_size = (
            request.queue_size if request.queue_size is not None else self._default_queue_size
        )
        pushes = get_registry().counter(
            metric_names.SUB_PUSHES_TOTAL,
            "Push frames delivered to standing-query subscribers.",
            transport=transport,
        )
        sub = ServerSubscription(
            self, subscription_id, request, deliver, transport, queue_size, pushes
        )
        with self._lock:
            if self._closed:
                raise CollectionClosedError("database is closed; cannot subscribe")
            self._count += 1
        self._m_active.inc()
        try:
            key = id(engine.collection)
            while True:
                with self._lock:
                    if self._closed:
                        raise CollectionClosedError("database is closed; cannot subscribe")
                    watch = self._watches.get(key)
                    if watch is None:
                        watch = _Watch(self, engine)
                        self._watches[key] = watch
                sub._watch = watch
                if watch.attach(sub):
                    break
                with self._lock:
                    if self._watches.get(key) is watch:
                        del self._watches[key]
            snapshot, version = sub.wait_primed()
        except BaseException:
            sub.close()
            self.release(sub)
            raise
        response = Response(
            ok=True,
            matches=snapshot,
            data={
                "subscription": sub.id,
                "mode": request.mode,
                "version": version,
                "queue_size": queue_size,
                "format": request.format or "json",
            },
        )
        sub.start_sender()
        return response, sub

    def unsubscribe(self, sub: ServerSubscription) -> None:
        """Cancel one subscription cleanly (idempotent)."""
        sub.close()
        self.release(sub)

    def cancel_all(self, subs: Iterable[ServerSubscription]) -> None:
        """Tear down a connection's subscriptions on disconnect."""
        for sub in list(subs):
            self.unsubscribe(sub)

    def connection_lost(self, sub: ServerSubscription) -> None:
        """A push write failed: the connection is gone, drop the subscription."""
        sub.close()
        self.release(sub)

    def note_coalesced(self, merged: int) -> None:
        self._m_coalesced.inc(merged)

    def release(self, sub: ServerSubscription, *, overflow: bool = False) -> None:
        """Detach a subscription from its watch and settle the metrics once."""
        with self._lock:
            if sub._released:
                return
            sub._released = True
            self._count -= 1
        watch = sub._watch
        if watch is not None:
            watch.discard(sub)
            self._maybe_retire(watch)
        self._m_active.dec()
        if overflow:
            self._m_overflows.inc()

    def _maybe_retire(self, watch: _Watch) -> None:
        if not watch.empty():
            return
        with self._lock:
            if self._watches.get(watch.key) is watch and watch.empty():
                del self._watches[watch.key]
            else:
                return
        watch.stop()

    def close(self) -> None:
        """Cancel every subscription and stop every watch (database close)."""
        with self._lock:
            self._closed = True
            watches = list(self._watches.values())
            self._watches.clear()
        for watch in watches:
            for sub in watch.subscribers():
                sub.close()
                self.release(sub)
            watch.stop()
        for watch in watches:
            watch.join(timeout=5.0)
