"""Tests for query-workload sampling and ranking (de)serialisation."""

import pytest

from repro.core.errors import InvalidRankingError
from repro.datasets.loader import load_rankings, save_rankings
from repro.datasets.queries import QueryWorkload, make_workload, sample_queries


class TestSampleQueries:
    def test_number_of_queries(self, nyt_small):
        assert len(sample_queries(nyt_small, 17)) == 17

    def test_queries_have_collection_ranking_size(self, nyt_small):
        for query in sample_queries(nyt_small, 5):
            assert query.size == nyt_small.k

    def test_deterministic_for_fixed_seed(self, nyt_small):
        first = sample_queries(nyt_small, 10, seed=4)
        second = sample_queries(nyt_small, 10, seed=4)
        assert [q.items for q in first] == [q.items for q in second]

    def test_unperturbed_queries_are_indexed_rankings(self, nyt_small):
        indexed = {ranking.items for ranking in nyt_small}
        for query in sample_queries(nyt_small, 10, perturb=False):
            assert query.items in indexed

    def test_perturbed_queries_overlap_their_source(self, nyt_small):
        """Perturbation only swaps adjacent items, so the item set is preserved."""
        indexed_domains = [set(ranking.items) for ranking in nyt_small]
        for query in sample_queries(nyt_small, 10, perturb=True):
            assert any(set(query.items) == domain for domain in indexed_domains)

    def test_oversampling_with_replacement(self, small_rankings):
        queries = sample_queries(small_rankings, 3 * len(small_rankings))
        assert len(queries) == 3 * len(small_rankings)

    def test_rejects_non_positive_count(self, nyt_small):
        with pytest.raises(ValueError):
            sample_queries(nyt_small, 0)

    def test_make_workload(self, nyt_small):
        workload = make_workload("smoke", nyt_small, 5, thetas=(0.1, 0.2))
        assert isinstance(workload, QueryWorkload)
        assert len(workload) == 5
        assert workload.thetas == (0.1, 0.2)
        assert len(list(iter(workload))) == 5


class TestLoader:
    def test_tsv_roundtrip(self, small_rankings, tmp_path):
        path = save_rankings(small_rankings, tmp_path / "rankings.tsv")
        loaded = load_rankings(path)
        assert [r.items for r in loaded] == [r.items for r in small_rankings]

    def test_json_roundtrip(self, small_rankings, tmp_path):
        path = save_rankings(small_rankings, tmp_path / "rankings.json", fmt="json")
        loaded = load_rankings(path)
        assert [r.items for r in loaded] == [r.items for r in small_rankings]

    def test_format_inferred_from_extension(self, small_rankings, tmp_path):
        json_path = save_rankings(small_rankings, tmp_path / "data.json", fmt="json")
        tsv_path = save_rankings(small_rankings, tmp_path / "data.tsv", fmt="tsv")
        assert len(load_rankings(json_path)) == len(load_rankings(tsv_path))

    def test_tsv_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "with_comments.tsv"
        path.write_text("# header\n1\t2\t3\n\n4\t5\t6\n", encoding="utf-8")
        loaded = load_rankings(path)
        assert len(loaded) == 2

    def test_tsv_rejects_non_integer_items(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tx\t3\n", encoding="utf-8")
        with pytest.raises(InvalidRankingError):
            load_rankings(path)

    def test_json_rejects_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"not_rankings\": []}", encoding="utf-8")
        with pytest.raises(InvalidRankingError):
            load_rankings(path)

    def test_unknown_format_rejected(self, small_rankings, tmp_path):
        with pytest.raises(ValueError):
            save_rankings(small_rankings, tmp_path / "data.bin", fmt="binary")
        path = save_rankings(small_rankings, tmp_path / "data.tsv")
        with pytest.raises(ValueError):
            load_rankings(path, fmt="binary")

    def test_creates_parent_directories(self, small_rankings, tmp_path):
        path = save_rankings(small_rankings, tmp_path / "nested" / "dir" / "data.tsv")
        assert path.exists()
