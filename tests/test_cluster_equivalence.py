"""A 2x2 cluster must be byte-identical to one LiveCollection.

The acceptance bar from the clustering work: route the same mutation
stream through a real 2-shard x 2-replica topology (TCP servers, wire
DDL, hash routing, WAL shipping) and through a single-node live
collection, then compare ``result_bytes()`` — the canonical answer bytes
with volatile stats stripped — on every query shape.  Resharding moves
half the key space mid-stream and the equivalence must still hold,
including the tombstone-forwarding cleanup on the old owner.
"""

from __future__ import annotations

import random

import pytest

from repro.api.database import Database
from repro.api.requests import (
    AdminRequest,
    BatchRequest,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    RangeQueryRequest,
    UpsertRequest,
)
from repro.cluster import LocalCluster

DOMAIN = 40
K = 8


@pytest.fixture(scope="module")
def topology():
    """One 2x2 cluster and one single-node shadow, fed identical streams."""
    cluster = LocalCluster(shards=2, replicas=2, num_slots=16)
    cluster.start()
    shadow_db = Database()
    shadow = shadow_db.session()
    shadow.execute(
        AdminRequest(collection="default", action="create", engine="live")
    ).raise_for_error()
    try:
        yield cluster.coordinator, shadow
    finally:
        cluster.close()
        shadow_db.close()


def _mutate_identically(coordinator, shadow, rng, rounds: int) -> list[int]:
    keys: list[int] = []
    for _ in range(rounds):
        items = tuple(rng.sample(range(DOMAIN), K))
        a = coordinator.execute(InsertRequest(collection="default", items=items))
        b = shadow.execute(InsertRequest(collection="default", items=items))
        assert a.result_bytes() == b.result_bytes()
        assert a.key == b.key  # central allocation matches single-node keys
        keys.append(a.key)
    for _ in range(rounds // 4):
        key = rng.choice(keys)
        items = tuple(rng.sample(range(DOMAIN), K))
        a = coordinator.execute(UpsertRequest(collection="default", key=key, items=items))
        b = shadow.execute(UpsertRequest(collection="default", key=key, items=items))
        assert a.result_bytes() == b.result_bytes()
    for key in rng.sample(keys, rounds // 5):
        a = coordinator.execute(DeleteRequest(collection="default", key=key))
        b = shadow.execute(DeleteRequest(collection="default", key=key))
        # byte-equal also on tombstone errors (double deletes)
        assert a.result_bytes() == b.result_bytes()
    return keys


def _assert_query_equivalence(coordinator, shadow, rng) -> None:
    for _ in range(10):
        query = tuple(rng.sample(range(DOMAIN), K))
        theta = rng.choice([0.3, 0.5, 0.8])
        for request in (
            RangeQueryRequest(collection="default", items=query, theta=theta),
            KnnRequest(collection="default", items=query, k=rng.choice([1, 7, 25])),
            BatchRequest(
                collection="default",
                queries=(query, tuple(rng.sample(range(DOMAIN), K))),
                theta=theta,
            ),
        ):
            a = coordinator.execute(request)
            b = shadow.execute(request)
            assert a.result_bytes() == b.result_bytes(), request


class TestClusterEquivalence:
    def test_mixed_mutations_then_queries(self, topology):
        coordinator, shadow = topology
        rng = random.Random(11)
        _mutate_identically(coordinator, shadow, rng, rounds=120)
        _assert_query_equivalence(coordinator, shadow, rng)

    def test_pagination_walk_matches_single_node(self, topology):
        coordinator, shadow = topology
        rng = random.Random(13)
        query = tuple(rng.sample(range(DOMAIN), K))
        cursor = 0
        pages = 0
        while True:
            request = RangeQueryRequest(
                collection="default", items=query, theta=0.8, limit=7, cursor=cursor
            )
            a = coordinator.execute(request)
            b = shadow.execute(request)
            assert a.result_bytes() == b.result_bytes()
            pages += 1
            if a.cursor is None:
                break
            cursor = a.cursor
        assert pages > 1  # the walk actually paginated

    def test_size_mismatch_envelope_matches_single_node(self, topology):
        coordinator, shadow = topology
        bad = tuple(range(K + 3))  # wrong ranking size
        for request in (
            InsertRequest(collection="default", items=bad),
            KnnRequest(collection="default", items=bad, k=2),
        ):
            a = coordinator.execute(request)
            b = shadow.execute(request)
            assert not a.ok and not b.ok
            assert a.result_bytes() == b.result_bytes()

    def test_reshard_preserves_equivalence(self, topology):
        coordinator, shadow = topology
        rng = random.Random(17)
        table = coordinator.routing_table
        moves = {
            slot: 1 - owner for slot, owner in enumerate(table.slots) if slot % 2 == 0
        }
        summary = coordinator.reshard(moves)
        assert summary["version"] == table.version + 1
        assert summary["moved_keys"] > 0
        # tombstone forwarding drained the moved keys off their old owners:
        # per-shard sizes must sum to the single-node size, with no residue
        stats = coordinator.execute(
            AdminRequest(collection="default", action="stats")
        ).raise_for_error()
        shadow_stats = shadow.execute(
            AdminRequest(collection="default", action="stats")
        ).raise_for_error()
        per_shard = [
            shard["size"] for shard in stats.data["shards"].values()
        ]
        assert sum(per_shard) == shadow_stats.data["size"]
        _assert_query_equivalence(coordinator, shadow, rng)
        # and the cluster keeps accepting the same stream afterwards
        _mutate_identically(coordinator, shadow, rng, rounds=40)
        _assert_query_equivalence(coordinator, shadow, rng)
