"""Batch query processing (the paper's "ongoing work" extension).

The conclusion of the paper sketches how large batches of queries could be
processed with the coarse-indexing idea applied to the *query* side: the
batch is partitioned into groups of similar queries, each group represented
by a query medoid.  One relaxed search per group (threshold enlarged by the
group radius) produces a candidate superset valid for every query in the
group, and each query then validates only those candidates.

This module implements that sketch on top of any
:class:`RankingSearchAlgorithm`, defaulting to the coarse index for the
per-group relaxed search.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.distances import footrule_topk_raw, max_footrule_distance
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import SearchStats
from repro.metric.partitioning import random_medoid_partition
from repro.algorithms.base import RankingSearchAlgorithm


@dataclass
class BatchResult:
    """Results of a batch run: one :class:`SearchResult` per query plus totals."""

    results: list[SearchResult]
    group_count: int
    stats: SearchStats

    def __len__(self) -> int:
        return len(self.results)


class BatchCoarseSearch:
    """Answer a batch of queries by grouping similar queries together.

    Parameters
    ----------
    algorithm:
        Any single-query algorithm used for the per-group relaxed search.
    query_theta_c:
        Normalised radius used when clustering the query batch.
    """

    def __init__(self, algorithm: RankingSearchAlgorithm, query_theta_c: float = 0.1) -> None:
        if not 0.0 <= query_theta_c < 1.0:
            raise ValueError(f"query_theta_c must lie in [0, 1), got {query_theta_c}")
        self._algorithm = algorithm
        self._query_theta_c = query_theta_c

    @property
    def algorithm(self) -> RankingSearchAlgorithm:
        """The single-query algorithm performing the per-group searches."""
        return self._algorithm

    def search_batch(self, queries: Sequence[Ranking], theta: float) -> BatchResult:
        """Answer every query in the batch with threshold ``theta``.

        The group search uses threshold ``theta + query_theta_c`` so that
        every true result of every member query appears among the group
        candidates (triangle inequality through the group medoid); member
        queries only validate those candidates.
        """
        k = self._algorithm.k
        maximum = max_footrule_distance(k)
        theta_raw = theta * maximum

        query_set = RankingSet(k=k)
        for query in queries:
            query_set.add(query.items)
        groups = random_medoid_partition(
            list(query_set.rankings),
            footrule_topk_raw,
            self._query_theta_c * maximum,
        )

        total_stats = SearchStats()
        results_by_position: dict[int, SearchResult] = {}
        relaxed = min(theta + self._query_theta_c, 0.999)
        for group in groups:
            group_answer = self._algorithm.search(group.medoid, relaxed)
            total_stats.merge(group_answer.stats)
            candidates = [(match.rid, match.ranking) for match in group_answer.matches]
            for member in group.members:
                assert member.rid is not None
                original_query = queries[member.rid]
                member_result = SearchResult(
                    query=original_query, theta=theta, algorithm="BatchCoarse"
                )
                for rid, ranking in candidates:
                    member_result.stats.distance_calls += 1
                    separation = footrule_topk_raw(original_query, ranking)
                    if separation <= theta_raw:
                        member_result.add(rid, ranking, separation / maximum)
                member_result.finalize()
                total_stats.merge(member_result.stats)
                results_by_position[member.rid] = member_result

        ordered = [results_by_position[position] for position in range(len(queries))]
        return BatchResult(results=ordered, group_count=len(groups), stats=total_stats)
