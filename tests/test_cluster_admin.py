"""Shard-side cluster verbs and guards, without sockets.

A shard server is an ordinary :class:`Database` that has been handed a
routing table (``admin route``).  These tests drive that surface directly:
the routing guard that turns misdirected mutations into self-correcting
``not_primary`` / ``stale_routing`` envelopes, the idempotent ``replicate``
apply path, ``promote``, ``export``, and the metrics merge that backs
``admin metrics --cluster``.
"""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.api.requests import (
    AdminRequest,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    UpsertRequest,
)
from repro.cluster.routing import RoutingTable, ShardSpec
from repro.core.errors import NotPrimaryError, StaleRoutingError
from repro.obs.metrics import merge_snapshots


def _table(num_slots: int = 8) -> RoutingTable:
    return RoutingTable.assign(
        "default",
        [ShardSpec(0, "127.0.0.1:7001"), ShardSpec(1, "127.0.0.1:7003")],
        num_slots=num_slots,
        coordinator="127.0.0.1:7000",
    )


@pytest.fixture()
def shard0():
    """A live collection configured as shard 0's primary."""
    database = Database()
    session = database.session()
    session.execute(
        AdminRequest(collection="default", action="create", engine="live")
    ).raise_for_error()
    table = _table()
    session.execute(
        AdminRequest(
            collection="default",
            action="route",
            table=table.to_dict(),
            role="primary",
            shard_id=0,
        )
    ).raise_for_error()
    yield session, table
    database.close()


def _key_owned_by(table: RoutingTable, shard_id: int) -> int:
    return next(key for key in range(1000) if table.owner_of(key) == shard_id)


class TestRoutingGuard:
    def test_owned_key_accepted(self, shard0):
        session, table = shard0
        key = _key_owned_by(table, 0)
        session.execute(
            UpsertRequest(collection="default", key=key, items=(1, 2, 3))
        ).raise_for_error()

    def test_foreign_key_rejected_with_embedded_table(self, shard0):
        session, table = shard0
        key = _key_owned_by(table, 1)
        response = session.execute(
            UpsertRequest(collection="default", key=key, items=(1, 2, 3))
        )
        assert not response.ok
        assert response.error.code == "stale_routing"
        with pytest.raises(StaleRoutingError) as info:
            response.raise_for_error()
        # the error envelope IS the table update: a stale client installs
        # this and retries without a coordinator round trip
        assert RoutingTable.from_dict(info.value.routing) == table

    def test_delete_guarded_like_upsert(self, shard0):
        session, table = shard0
        response = session.execute(
            DeleteRequest(collection="default", key=_key_owned_by(table, 1))
        )
        assert not response.ok
        assert response.error.code == "stale_routing"

    def test_insert_redirected_to_coordinator(self, shard0):
        session, table = shard0
        response = session.execute(InsertRequest(collection="default", items=(1, 2, 3)))
        assert not response.ok
        assert response.error.code == "not_primary"
        assert "127.0.0.1:7000" in response.error.message  # points home
        with pytest.raises(NotPrimaryError) as info:
            response.raise_for_error()
        assert RoutingTable.from_dict(info.value.routing) == table

    def test_replica_rejects_reads_and_writes(self):
        database = Database()
        session = database.session()
        session.execute(
            AdminRequest(collection="default", action="create", engine="live")
        ).raise_for_error()
        table = _table()
        session.execute(
            AdminRequest(
                collection="default",
                action="route",
                table=table.to_dict(),
                role="replica",
                shard_id=0,
            )
        ).raise_for_error()
        key = _key_owned_by(table, 0)
        for request in (
            UpsertRequest(collection="default", key=key, items=(1, 2, 3)),
            KnnRequest(collection="default", items=(1, 2, 3), k=1),
        ):
            response = session.execute(request)
            assert not response.ok
            assert response.error.code == "not_primary"
        database.close()

    def test_unrouted_collection_is_unguarded(self):
        database = Database()
        session = database.session()
        session.execute(
            AdminRequest(collection="default", action="create", engine="live")
        ).raise_for_error()
        session.execute(
            UpsertRequest(collection="default", key=123, items=(1, 2, 3))
        ).raise_for_error()
        database.close()


def _replicate(session, records):
    return session.execute(
        AdminRequest(collection="default", action="replicate", records=tuple(records))
    )


class TestReplicateApply:
    def test_apply_and_idempotent_reapply(self, shard0):
        session, _ = shard0
        records = [
            {"seq": 1, "op": "upsert", "key": 0, "items": [1, 2, 3]},
            {"seq": 2, "op": "upsert", "key": 1, "items": [3, 2, 1]},
            {"seq": 3, "op": "delete", "key": 0, "items": None},
        ]
        first = _replicate(session, records).raise_for_error()
        assert first.data == {"applied_seq": 3, "applied": 3, "skipped": 0}
        # a re-shipped batch (shipper crash, ack lost) must change nothing
        again = _replicate(session, records).raise_for_error()
        assert again.data == {"applied_seq": 3, "applied": 0, "skipped": 3}

    def test_empty_batch_is_an_applied_seq_probe(self, shard0):
        session, _ = shard0
        _replicate(
            session, [{"seq": 1, "op": "upsert", "key": 0, "items": [1, 2, 3]}]
        ).raise_for_error()
        probe = _replicate(session, []).raise_for_error()
        assert probe.data["applied_seq"] == 1

    def test_gap_is_rejected(self, shard0):
        session, _ = shard0
        _replicate(
            session, [{"seq": 1, "op": "upsert", "key": 0, "items": [1, 2, 3]}]
        ).raise_for_error()
        response = _replicate(
            session, [{"seq": 5, "op": "upsert", "key": 1, "items": [3, 2, 1]}]
        )
        assert not response.ok
        assert "replication gap" in response.error.message
        assert "seq 2" in response.error.message  # names the expected seq

    def test_delete_of_absent_key_applies_cleanly(self, shard0):
        session, _ = shard0
        response = _replicate(
            session, [{"seq": 1, "op": "delete", "key": 42, "items": None}]
        ).raise_for_error()
        assert response.data["applied_seq"] == 1


class TestPromoteAndExport:
    def test_promote_flips_replica_to_primary(self, shard0):
        session, table = shard0
        session.execute(
            AdminRequest(
                collection="default",
                action="route",
                table=table.to_dict(),
                role="replica",
                shard_id=0,
            )
        ).raise_for_error()
        key = _key_owned_by(table, 0)
        blocked = session.execute(
            UpsertRequest(collection="default", key=key, items=(1, 2, 3))
        )
        assert blocked.error.code == "not_primary"
        session.execute(
            AdminRequest(collection="default", action="promote")
        ).raise_for_error()
        session.execute(
            UpsertRequest(collection="default", key=key, items=(1, 2, 3))
        ).raise_for_error()

    def test_export_returns_sorted_state(self, shard0):
        session, _ = shard0
        _replicate(
            session,
            [
                {"seq": 1, "op": "upsert", "key": 7, "items": [1, 2, 3]},
                {"seq": 2, "op": "upsert", "key": 3, "items": [3, 2, 1]},
            ],
        ).raise_for_error()
        response = session.execute(
            AdminRequest(collection="default", action="export")
        ).raise_for_error()
        assert response.data["entries"] == [[3, [3, 2, 1]], [7, [1, 2, 3]]]
        assert response.data["last_seq"] == 2

    def test_route_get_reports_config(self, shard0):
        session, table = shard0
        response = session.execute(
            AdminRequest(collection="default", action="route")
        ).raise_for_error()
        assert response.data["role"] == "primary"
        assert response.data["shard_id"] == 0
        assert RoutingTable.from_dict(response.data["routing"]) == table


class TestClusterMetricsSurface:
    def test_plain_database_rejects_cluster_scope(self, shard0):
        session, _ = shard0
        response = session.execute(
            AdminRequest(collection="default", action="metrics", scope="cluster")
        )
        assert not response.ok
        assert response.error.code == "invalid_request"
        assert "coordinator" in response.error.message

    def test_merge_snapshots_labels_every_sample(self):
        a = {
            "metrics": [
                {
                    "name": "repro_x_total",
                    "type": "counter",
                    "help": "x",
                    "samples": [{"labels": {}, "value": 2.0}],
                }
            ]
        }
        b = {
            "metrics": [
                {
                    "name": "repro_x_total",
                    "type": "counter",
                    "help": "x",
                    "samples": [{"labels": {"shard": "0"}, "value": 3.0}],
                }
            ]
        }
        merged = merge_snapshots([("coordinator", a), ("127.0.0.1:7001", b)])
        (family,) = merged["metrics"]
        assert family["name"] == "repro_x_total"
        labels = [sample["labels"]["node"] for sample in family["samples"]]
        assert labels == ["coordinator", "127.0.0.1:7001"]
        # source labels survive alongside the node label
        assert family["samples"][1]["labels"]["shard"] == "0"

    def test_merge_snapshots_rejects_bad_label(self):
        with pytest.raises(ValueError):
            merge_snapshots([("x", {"metrics": []})], label="not a label!")
