"""Yago-like dataset preset.

The paper's Yago dataset contains 25,000 top-k entity rankings mined from the
Yago knowledge base (entities qualifying a subject/predicate constraint,
ranked by some numeric criterion).  Its decisive properties, as reported in
the paper, are

* mildly skewed item popularity (Zipf exponent s ~ 0.53): entities appear in
  only a few rankings each, so index lists are short and evenly sized,
* many *small* clusters of similar rankings whose members are close to each
  other but far from other clusters, which makes the final result sets tiny
  (often a single ranking).

The preset uses the two-level generator with many small topics over a large
entity domain: rankings of the same topic (related constraints over the same
entity pool) share entities, clusters of three model re-ranked variants of
the same constraint, and the low base skew keeps document frequencies small
(measured exponent ~ 0.6, versus 0.53 reported for the real data).  Unlike
the NYT preset, cross-topic rankings are almost always disjoint, so the
distance distribution is far more concentrated near the maximum — the
property behind the paper's observation that result sets on Yago are tiny.
"""

from __future__ import annotations

from repro.core.ranking import RankingSet
from repro.datasets.synthetic import DatasetSpec, generate_clustered_rankings

#: Zipf skew the paper estimates for the real Yago dataset.
YAGO_ZIPF_S = 0.53

#: Base skew of the generator (see module docstring).
YAGO_GENERATOR_ZIPF_S = 0.3


def yago_like_spec(n: int = 2500, k: int = 10, seed: int = 53) -> DatasetSpec:
    """The :class:`DatasetSpec` used for the Yago-like preset.

    Many small topics (about 15 rankings each) over a large entity domain
    keep document frequencies low; clusters of three with little perturbation
    model the small groups of related entity rankings.
    """
    return DatasetSpec(
        n=n,
        k=k,
        domain_size=max(10 * n, 20 * k),
        zipf_s=YAGO_GENERATOR_ZIPF_S,
        cluster_size=3,
        swap_probability=0.25,
        substitution_probability=0.15,
        topic_count=max(1, n // 15),
        topic_pool_size=max(14, k + 4),
        seed=seed,
    )


def yago_like_dataset(n: int = 2500, k: int = 10, seed: int = 53) -> RankingSet:
    """Generate the Yago-like collection (see module docstring for rationale)."""
    return generate_clustered_rankings(yago_like_spec(n=n, k=k, seed=seed))
