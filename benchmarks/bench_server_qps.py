"""Served QPS over the wire: serial, pipelined, and asyncio-server variants.

Boots servers over the shared NYT-like collection and measures
queries-per-second along three axes:

* **concurrency** — client counts {1, 2, 4, 8}, each over its own
  connection (the PR 4 sweep);
* **pipelining** — one protocol v2 connection with ``--pipeline N``
  requests in flight: the wire carries the same frames but the client
  stops paying one round trip per request;
* **transport** — the threaded server vs the asyncio server
  (:class:`repro.api.aserver.AsyncDatabaseServer`), same dispatch code;
* **wire format** — the pipelined workload over JSON vs RBF binary frame
  bodies on the same connection, the wire-side figure that (with the
  storage figures from ``bench_live_updates.py``) lands in
  ``BENCH_codec.json``.

The in-process :class:`~repro.api.database.Session` serving the identical
workload is the baseline — the gap is pure transport (framing + JSON +
loopback TCP), since the dispatch behind every path is the same code.

Run under pytest-benchmark as part of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_server_qps.py
    PYTHONPATH=src python benchmarks/bench_server_qps.py --pipeline 8 --check
    PYTHONPATH=src python benchmarks/bench_server_qps.py --obs

``--check`` exits non-zero unless pipelined QPS reaches at least
``--check-tolerance`` (default 0.9) of the serial single-client path —
the CI smoke guarding the protocol v2 win, with slack for noisy shared
runners (both numbers are always printed).  ``--obs`` instead measures
the metrics-instrumentation overhead: the identical in-process workload
against an enabled vs a disabled registry (engines are built fresh under
each, since metric handles bind at construction), exiting non-zero when
the overhead exceeds 5%.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import pytest

from repro.api import AsyncDatabaseServer, Client, Database, DatabaseServer, RangeQueryRequest

from _utils import run_once

#: Concurrent client connections the sweep exercises.
CLIENT_COUNTS = (1, 2, 4, 8)

#: Passes each client makes over the query workload.
PASSES = 2

#: Requests in flight per connection in the pipelined benchmarks.
PIPELINE_DEPTH = 8

THETA = 0.2


def _serve_clients(address, queries, n_clients: int) -> int:
    """Run the workload from ``n_clients`` concurrent connections."""
    host, port = address
    served = [0] * n_clients
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        try:
            with Client(host, port) as client:
                for _ in range(PASSES):
                    for query in queries:
                        response = client.range_query(query, THETA, collection="news")
                        assert response.ok, response.error
                        served[worker_id] += 1
        except Exception as error:  # noqa: BLE001 - reported by the caller
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return sum(served)


def _serve_pipelined(address, queries, depth: int, wire_format: str = "json") -> int:
    """Run the workload through one connection, ``depth`` requests in flight."""
    host, port = address
    requests = [
        RangeQueryRequest(collection="news", items=query, theta=THETA) for query in queries
    ]
    served = 0
    with Client(host, port, protocol=2, wire_format=wire_format) as client:
        assert client.protocol_version == 2, "pipelining needs a v2 server"
        assert client.wire_format == wire_format
        for _ in range(PASSES):
            for start in range(0, len(requests), depth):
                for response in client.pipeline(requests[start:start + depth]):
                    assert response.ok, response.error
                    served += 1
    return served


def _serve_in_process(session, queries) -> int:
    served = 0
    for _ in range(PASSES):
        for query in queries:
            response = session.range_query(query, THETA, collection="news")
            assert response.ok
            served += 1
    return served


@pytest.fixture(scope="module")
def served_database(nyt_setup):
    database = Database()
    database.create_static("news", nyt_setup.rankings, num_shards=2)
    with DatabaseServer(database, port=0) as server:
        # warm-up: planner exploration + cache fill happen untimed
        session = database.session()
        _serve_in_process(session, nyt_setup.queries)
        yield server, database
    database.close()


@pytest.fixture(scope="module")
def served_async_database(nyt_setup):
    database = Database()
    database.create_static("news", nyt_setup.rankings, num_shards=2)
    session = database.session()
    _serve_in_process(session, nyt_setup.queries)  # warm-up
    with AsyncDatabaseServer(database, port=0) as server:
        yield server, database
    database.close()


@pytest.mark.benchmark(group="server-qps")
def test_in_process_baseline(benchmark, served_database, nyt_setup):
    """The same dispatch without the wire: the transport-free ceiling."""
    _, database = served_database
    session = database.session()
    start = time.perf_counter()
    served = run_once(benchmark, _serve_in_process, session, nyt_setup.queries)
    elapsed = time.perf_counter() - start
    benchmark.extra_info["clients"] = 0
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps")
@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_server_qps(benchmark, served_database, nyt_setup, n_clients):
    """Wire-served QPS for one concurrent-client count."""
    server, _ = served_database
    start = time.perf_counter()
    served = run_once(benchmark, _serve_clients, server.address, nyt_setup.queries, n_clients)
    elapsed = time.perf_counter() - start
    benchmark.extra_info["clients"] = n_clients
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps-pipelined")
def test_server_qps_pipelined(benchmark, served_database, nyt_setup):
    """One connection, PIPELINE_DEPTH requests in flight (protocol v2)."""
    server, _ = served_database
    start = time.perf_counter()
    served = run_once(
        benchmark, _serve_pipelined, server.address, nyt_setup.queries, PIPELINE_DEPTH
    )
    elapsed = time.perf_counter() - start
    benchmark.extra_info["pipeline_depth"] = PIPELINE_DEPTH
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps-wire-format")
@pytest.mark.parametrize("wire_format", ("json", "binary"))
def test_server_qps_wire_format(benchmark, served_database, nyt_setup, wire_format):
    """Pipelined QPS per wire format: JSON vs RBF binary frame bodies."""
    server, _ = served_database
    start = time.perf_counter()
    served = run_once(
        benchmark,
        _serve_pipelined,
        server.address,
        nyt_setup.queries,
        PIPELINE_DEPTH,
        wire_format,
    )
    elapsed = time.perf_counter() - start
    benchmark.extra_info["wire_format"] = wire_format
    benchmark.extra_info["pipeline_depth"] = PIPELINE_DEPTH
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps-async")
@pytest.mark.parametrize("n_clients", (1, 4))
def test_async_server_qps(benchmark, served_async_database, nyt_setup, n_clients):
    """The asyncio transport under the serial-client workload."""
    server, _ = served_async_database
    start = time.perf_counter()
    served = run_once(benchmark, _serve_clients, server.address, nyt_setup.queries, n_clients)
    elapsed = time.perf_counter() - start
    benchmark.extra_info["clients"] = n_clients
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps-async")
def test_async_server_qps_pipelined(benchmark, served_async_database, nyt_setup):
    """Pipelining against the asyncio transport."""
    server, _ = served_async_database
    start = time.perf_counter()
    served = run_once(
        benchmark, _serve_pipelined, server.address, nyt_setup.queries, PIPELINE_DEPTH
    )
    elapsed = time.perf_counter() - start
    benchmark.extra_info["pipeline_depth"] = PIPELINE_DEPTH
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


def _timed_qps(function, *args) -> float:
    start = time.perf_counter()
    served = function(*args)
    elapsed = time.perf_counter() - start
    return served / elapsed if elapsed > 0 else float("inf")


#: Maximum tolerated slowdown from metrics instrumentation, in-process.
OBS_OVERHEAD_LIMIT = 0.05

#: Timed repetitions per registry mode in ``--obs``; best-of damps noise.
OBS_TRIALS = 3


def _measure_obs_overhead(rankings, queries) -> dict[str, float]:
    """Best-of QPS for the in-process workload with metrics on vs off.

    Metric handles bind at engine construction, so each mode installs its
    registry first and builds a fresh :class:`Database` under it — the
    "off" engines hold :class:`NullMetric` handles, the "on" engines the
    real ones.  The process-default registry is restored afterwards.
    """
    from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

    results: dict[str, float] = {}
    original = get_registry()
    try:
        for label, enabled in (("off", False), ("on", True)):
            set_registry(MetricsRegistry(enabled=enabled))
            database = Database()
            database.create_static("news", rankings, num_shards=2)
            session = database.session()
            _serve_in_process(session, queries)  # warm-up
            results[label] = max(
                _timed_qps(_serve_in_process, session, queries) for _ in range(OBS_TRIALS)
            )
            database.close()
    finally:
        set_registry(original)
    return results


def _run_obs_mode(rankings, queries, check: bool) -> int:
    """Report instrumentation overhead; under ``check``, enforce the limit."""
    qps = _measure_obs_overhead(rankings, queries)
    overhead = 1.0 - qps["on"] / qps["off"] if qps["off"] else 0.0
    print("in-process instrumentation overhead "
          f"(best of {OBS_TRIALS} trials per mode):")
    print(f"{'registry':>9s}  {'QPS':>9s}")
    print(f"{'off':>9s}  {qps['off']:>9.1f}")
    print(f"{'on':>9s}  {qps['on']:>9.1f}")
    print(f"overhead: {overhead:.1%} (limit {OBS_OVERHEAD_LIMIT:.0%})")
    if check and overhead > OBS_OVERHEAD_LIMIT:
        print(
            f"CHECK FAILED: instrumentation overhead {overhead:.1%} exceeds "
            f"{OBS_OVERHEAD_LIMIT:.0%} (on {qps['on']:.1f} QPS vs off {qps['off']:.1f} QPS)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    """Standalone report: QPS per client count, pipeline depth, and transport."""
    from repro.datasets.nyt import nyt_like_dataset
    from repro.datasets.queries import sample_queries

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipeline", type=int, default=PIPELINE_DEPTH, metavar="N",
        help="requests in flight per connection in the pipelined rows",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless pipelined QPS >= --check-tolerance x serial QPS "
             "(or, with --obs, unless instrumentation overhead stays under "
             f"{OBS_OVERHEAD_LIMIT:.0%})",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=0.9, metavar="FACTOR",
        help="fraction of serial QPS the pipelined run must reach under --check "
             "(default 0.9 — slack for noisy shared runners)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="measure metrics-instrumentation overhead (registry on vs off, "
             "in-process) instead of the transport sweep",
    )
    args = parser.parse_args(argv)
    if args.pipeline <= 0:
        parser.error("--pipeline must be positive")
    if args.check_tolerance <= 0:
        parser.error("--check-tolerance must be positive")

    rankings = nyt_like_dataset(n=800, k=10)
    queries = sample_queries(rankings, 30, seed=3)
    if args.obs:
        return _run_obs_mode(rankings, queries, args.check)
    database = Database()
    database.create_static("news", rankings, num_shards=2)
    session = database.session()
    _serve_in_process(session, queries)  # warm-up
    print(f"server QPS on NYT-like n={len(rankings)}, k={rankings.k}, "
          f"{len(queries)} queries x {PASSES} passes, theta={THETA}")
    print(f"{'clients':>8s}  {'QPS':>9s}  note")
    baseline = _timed_qps(_serve_in_process, session, queries)
    print(f"{'-':>8s}  {baseline:>9.1f}  in-process session (no wire)")
    serial_qps = pipelined_qps = 0.0
    with DatabaseServer(database, port=0) as server:
        for n_clients in CLIENT_COUNTS:
            qps = _timed_qps(_serve_clients, server.address, queries, n_clients)
            if n_clients == 1:
                serial_qps = qps
            print(f"{n_clients:>8d}  {qps:>9.1f}  {qps / baseline:.0%} of baseline, threaded")
        pipelined_qps = _timed_qps(_serve_pipelined, server.address, queries, args.pipeline)
        print(f"{1:>8d}  {pipelined_qps:>9.1f}  pipelined depth={args.pipeline}, threaded")
    with AsyncDatabaseServer(database, port=0) as server:
        async_qps = _timed_qps(_serve_clients, server.address, queries, 1)
        print(f"{1:>8d}  {async_qps:>9.1f}  serial, asyncio transport")
        async_pipelined = _timed_qps(_serve_pipelined, server.address, queries, args.pipeline)
        print(f"{1:>8d}  {async_pipelined:>9.1f}  pipelined depth={args.pipeline}, asyncio")
    database.close()
    gain = pipelined_qps / serial_qps if serial_qps else float("inf")
    print(f"\npipelining gain (threaded, depth={args.pipeline}): {gain:.2f}x serial "
          f"(pipelined {pipelined_qps:.1f} QPS vs serial {serial_qps:.1f} QPS)")
    if args.check and pipelined_qps < args.check_tolerance * serial_qps:
        print(
            f"CHECK FAILED: pipelined {pipelined_qps:.1f} QPS < "
            f"{args.check_tolerance:.2f} x serial {serial_qps:.1f} QPS",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
