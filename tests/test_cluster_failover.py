"""Kill a primary, lose nothing: promotion from the coordinator log.

The durability claim under test (in the spirit of the crash simulations
in ``test_live_stress.py``): *committed = acknowledged to the client =
present in the coordinator's replication log*, so when a primary dies —
even mid-stream, with concurrent writers — the promoted replica, after a
bounded replay of the retained log tail, holds every acknowledged write.
These tests kill real servers (no farewell: in-flight requests see torn
connections or one last ``collection_closed`` envelope) and then verify
the survivors byte-for-byte.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api.requests import AdminRequest, InsertRequest, KnnRequest
from repro.cluster import ClusterClient, LocalCluster
from repro.devtools.locktrace import (
    get_lock_registry,
    locktrace_enabled,
    reset_lock_registry,
)
from repro.obs.metrics import get_registry

@pytest.fixture(autouse=True)
def _no_lock_inversions():
    """Under ``REPRO_LOCKTRACE=1`` every test here doubles as a lockdep run:
    the traced-lock order graph must stay acyclic."""
    if locktrace_enabled():
        reset_lock_registry()
    yield
    if locktrace_enabled():
        inversions = get_lock_registry().inversions()
        assert inversions == [], "\n".join(entry.describe() for entry in inversions)


DOMAIN = 40
K = 8


def _sample(rng) -> tuple[int, ...]:
    return tuple(rng.sample(range(DOMAIN), K))


def _counter_value(name: str, **labels) -> float:
    for family in get_registry().snapshot()["metrics"]:
        if family["name"] != name:
            continue
        for sample in family["samples"]:
            if all(sample["labels"].get(key) == value for key, value in labels.items()):
                return sample["value"]
    return 0.0


def _cluster_contents(coordinator, expected: int) -> dict[int, tuple[int, ...]]:
    response = coordinator.execute(
        KnnRequest(collection="default", items=tuple(range(K)), k=max(expected, 1))
    ).raise_for_error()
    return {match.rid: match.items for match in response.matches or ()}


class TestPromotionLosesNothing:
    def test_sequential_kill_keeps_every_acked_write(self):
        rng = random.Random(23)
        with LocalCluster(shards=2, replicas=1, heartbeat_interval=0.1) as cluster:
            coordinator = cluster.coordinator
            acked: dict[int, tuple[int, ...]] = {}
            for _ in range(80):
                items = _sample(rng)
                response = coordinator.execute(
                    InsertRequest(collection="default", items=items)
                ).raise_for_error()
                acked[response.key] = items
            # let the shipper catch the replicas up, then kill hard
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = coordinator.status()
                if all(
                    replica["lag"] == 0
                    for shard in status["shards"]
                    for replica in shard["replicas"]
                ):
                    break
                time.sleep(0.02)
            version_before = coordinator.routing_table.version
            dead = cluster.kill_primary(0)
            # the next write to shard 0 forces an inline failover; writes to
            # shard 1 are untouched — either way nothing acked may vanish
            for _ in range(40):
                items = _sample(rng)
                response = coordinator.execute(
                    InsertRequest(collection="default", items=items)
                ).raise_for_error()
                acked[response.key] = items
            assert coordinator.routing_table.version > version_before
            status = coordinator.status()
            shard0 = status["shards"][0]
            assert shard0["primary"] != dead
            assert shard0["primary_alive"]
            assert _cluster_contents(coordinator, len(acked)) == acked
            assert _counter_value("repro_cluster_failovers_total", shard="0") >= 1.0

    def test_concurrent_writers_survive_a_mid_stream_kill(self):
        with LocalCluster(
            shards=2, replicas=2, heartbeat_interval=0.1, ship_interval=0.005
        ) as cluster:
            coordinator = cluster.coordinator
            acked: dict[int, tuple[int, ...]] = {}
            acked_lock = threading.Lock()
            failures: list[Exception] = []

            def writer(seed: int) -> None:
                rng = random.Random(seed)
                for _ in range(40):
                    items = _sample(rng)
                    try:
                        response = coordinator.execute(
                            InsertRequest(collection="default", items=items)
                        )
                    except Exception as error:  # pragma: no cover - fail loudly
                        failures.append(error)
                        return
                    if response.ok:
                        with acked_lock:
                            acked[response.key] = items
                    else:
                        failures.append(AssertionError(str(response.error)))
                        return

            threads = [threading.Thread(target=writer, args=(seed,)) for seed in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let the stream get going, then pull the plug
            cluster.kill_primary(0)
            for thread in threads:
                thread.join(timeout=30.0)
            assert not failures, failures
            # every acknowledged write must be present with its exact items
            assert _cluster_contents(coordinator, len(acked)) == acked

    def test_status_and_stale_client_self_correct_after_failover(self):
        rng = random.Random(29)
        with LocalCluster(
            shards=2, replicas=1, heartbeat_interval=0.1, serve_coordinator=True
        ) as cluster:
            coordinator = cluster.coordinator
            for _ in range(30):
                coordinator.execute(
                    InsertRequest(collection="default", items=_sample(rng))
                ).raise_for_error()
            host, port = cluster.coordinator_address.rsplit(":", 1)
            client = ClusterClient(host, int(port))
            try:
                query = _sample(rng)
                before = client.knn(query, 5)
                stale_version = client.routing_version
                cluster.kill_primary(0)
                coordinator.execute(  # force the inline failover
                    InsertRequest(collection="default", items=_sample(rng))
                ).raise_for_error()
                # the client still holds the old table; the retry loop must
                # install the fresh one and answer from the new primary
                after = client.knn(query, 5)
                assert client.routing_version > stale_version
                assert {match.rid for match in before.matches} <= {
                    match.rid for match in after.matches
                } | {match.rid for match in before.matches}
                status = client.status()
                assert status["version"] == coordinator.routing_table.version
                assert all(
                    shard["primary_alive"] for shard in status["shards"]
                )
            finally:
                client.close()

    def test_dead_replica_is_dropped_from_the_table(self):
        rng = random.Random(31)
        with LocalCluster(
            shards=1, replicas=2, heartbeat_interval=0.05, miss_threshold=2
        ) as cluster:
            coordinator = cluster.coordinator
            coordinator.execute(
                InsertRequest(collection="default", items=_sample(rng))
            ).raise_for_error()
            replica = coordinator.routing_table.shard(0).replicas[0]
            version_before = coordinator.routing_table.version
            cluster.kill_node(replica)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                spec = coordinator.routing_table.shard(0)
                if replica not in spec.replicas:
                    break
                time.sleep(0.05)
            spec = coordinator.routing_table.shard(0)
            assert replica not in spec.replicas
            assert len(spec.replicas) == 1
            assert coordinator.routing_table.version > version_before
            # writes keep flowing with the remaining replica
            coordinator.execute(
                InsertRequest(collection="default", items=_sample(rng))
            ).raise_for_error()


class TestFailoverObservability:
    def test_replication_metrics_exported_cluster_wide(self):
        rng = random.Random(37)
        with LocalCluster(shards=2, replicas=1) as cluster:
            coordinator = cluster.coordinator
            for _ in range(10):
                coordinator.execute(
                    InsertRequest(collection="default", items=_sample(rng))
                ).raise_for_error()
            response = coordinator.execute(
                AdminRequest(collection="default", action="metrics", scope="cluster")
            ).raise_for_error()
            families = {family["name"] for family in response.data["metrics"]}
            assert "repro_cluster_replication_lag" in families
            assert "repro_cluster_routing_version" in families
            # every sample carries the node label the merge added
            for family in response.data["metrics"]:
                for sample in family["samples"]:
                    assert "node" in sample["labels"]
