"""The single response envelope every serving request comes back in.

A :class:`Response` is ``ok`` plus the fields the request kind fills in:

* ``matches`` — the answer to a range or k-NN query, each match carrying
  ``(rid, distance, items)``;
* ``stats`` — the per-request :class:`~repro.service.recording.QueryStats`
  as a flat dictionary;
* ``cursor`` — the next pagination offset for a limited range query
  (``None`` once the answer is exhausted);
* ``key`` — the logical key a mutation touched (insert returns the newly
  assigned key);
* ``batch`` — one nested envelope per query of a batch request;
* ``data`` — admin payloads (stats dumps, collection listings, ...);
* ``trace`` — the span tree of a traced request (opt-in via the v2
  envelope's ``trace`` field; see :mod:`repro.obs.tracing`);
* ``error`` — a typed :class:`ResponseError` when ``ok`` is false.

Envelopes are JSON-serializable (:meth:`to_dict` / :meth:`from_dict` are
exact inverses) and **deterministically** so: :meth:`canonical_bytes`
serializes with sorted keys and no whitespace, and :meth:`result_bytes`
additionally strips the volatile ``stats`` and ``trace`` fields (latency,
cache state, and span timings are the only parts of an answer that
legitimately differ between a cache hit and a miss, or between a remote
and an in-process call) — two answers are *the same* exactly when their
``result_bytes`` are equal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.errors import (
    CollectionClosedError,
    InvalidRequestError,
    NotPrimaryError,
    ReproError,
    StaleRoutingError,
    SubscriptionOverflowError,
    UnknownCollectionError,
    UnknownKeyError,
    UnsupportedProtocolError,
)

#: Error codes the protocol layer emits, mapped to the exception raised by
#: :meth:`Response.raise_for_error` on the client side.
ERROR_TYPES: dict[str, type[Exception]] = {
    "invalid_request": InvalidRequestError,
    "unknown_collection": UnknownCollectionError,
    "unknown_key": UnknownKeyError,
    "collection_closed": CollectionClosedError,
    "not_primary": NotPrimaryError,
    "stale_routing": StaleRoutingError,
    "unsupported_protocol": UnsupportedProtocolError,
    "subscription_overflow": SubscriptionOverflowError,
    "protocol": ConnectionError,
    "internal": RuntimeError,
}


@dataclass(frozen=True)
class ResponseError:
    """The typed error carried by a failed envelope.

    ``details`` carries the structured constructor arguments of the
    original exception (e.g. ``{"key": 42}`` for an unknown-key error), so
    the client can rebuild the *same* typed exception, attributes and all.
    """

    code: str
    message: str
    details: Optional[dict] = None

    def to_dict(self) -> dict:
        payload = {"code": self.code, "message": self.message}
        if self.details is not None:
            payload["details"] = self.details
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ResponseError":
        if not isinstance(payload, dict):
            raise InvalidRequestError(f"error payload must be an object, got {payload!r}")
        return cls(
            code=str(payload.get("code", "internal")),
            message=str(payload.get("message", "")),
            details=payload.get("details"),
        )


@dataclass(frozen=True)
class MatchPayload:
    """One matched ranking: its logical id, distance, and items."""

    rid: int
    distance: float
    items: tuple[int, ...]

    def to_dict(self) -> dict:
        return {"rid": self.rid, "distance": self.distance, "items": list(self.items)}

    @classmethod
    def from_dict(cls, payload: dict) -> "MatchPayload":
        if not isinstance(payload, dict):
            raise InvalidRequestError(f"match payload must be an object, got {payload!r}")
        return cls(
            rid=int(payload["rid"]),
            distance=float(payload["distance"]),
            items=tuple(int(item) for item in payload["items"]),
        )


@dataclass(frozen=True)
class Response:
    """The envelope; see the module docstring for the field semantics."""

    ok: bool = True
    error: Optional[ResponseError] = None
    matches: Optional[tuple[MatchPayload, ...]] = None
    stats: Optional[dict] = None
    cursor: Optional[int] = None
    key: Optional[int] = None
    batch: Optional[tuple["Response", ...]] = None
    data: Optional[dict] = None
    trace: Optional[dict] = None

    def to_dict(self) -> dict:
        """The JSON-serializable wire payload (unset fields omitted)."""
        payload: dict = {"ok": self.ok}
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        if self.matches is not None:
            payload["matches"] = [match.to_dict() for match in self.matches]
        if self.stats is not None:
            payload["stats"] = self.stats
        if self.cursor is not None:
            payload["cursor"] = self.cursor
        if self.key is not None:
            payload["key"] = self.key
        if self.batch is not None:
            payload["batch"] = [entry.to_dict() for entry in self.batch]
        if self.data is not None:
            payload["data"] = self.data
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Response":
        """Rebuild an envelope from its wire payload."""
        if not isinstance(payload, dict):
            raise InvalidRequestError(f"response payload must be an object, got {payload!r}")
        error = payload.get("error")
        matches = payload.get("matches")
        batch = payload.get("batch")
        return cls(
            ok=bool(payload.get("ok", False)),
            error=ResponseError.from_dict(error) if error is not None else None,
            matches=(
                tuple(MatchPayload.from_dict(match) for match in matches)
                if matches is not None
                else None
            ),
            stats=payload.get("stats"),
            cursor=payload.get("cursor"),
            key=payload.get("key"),
            batch=(
                tuple(cls.from_dict(entry) for entry in batch) if batch is not None else None
            ),
            data=payload.get("data"),
            trace=payload.get("trace"),
        )

    # -- determinism ---------------------------------------------------------------

    def canonical_bytes(self) -> bytes:
        """The full envelope, deterministically serialized."""
        return canonical_json(self.to_dict())

    def result_bytes(self) -> bytes:
        """The answer without its volatile ``stats`` and ``trace`` fields.

        Latency, cache/planner provenance, and span timings differ run to
        run; the rids, distances, items, pagination cursor, mutation key,
        and error code must not.  Two envelopes describe the same answer
        exactly when their ``result_bytes`` are equal — the contract the
        server tests hold remote execution to.
        """
        return canonical_json(_strip_volatile(self.to_dict()))

    # -- convenience ---------------------------------------------------------------

    @property
    def rids(self) -> list[int]:
        """Matched ranking ids in answer order (empty when not a query)."""
        return [match.rid for match in self.matches] if self.matches is not None else []

    def raise_for_error(self) -> "Response":
        """Raise the typed exception a failed envelope describes; else self.

        The envelope's ``details`` rebuild structured exceptions faithfully
        — a remote ``UnknownKeyError`` carries the same ``.key`` attribute
        the in-process one does.
        """
        if self.ok:
            return self
        error = self.error if self.error is not None else ResponseError("internal", "unknown error")
        details = error.details or {}
        if error.code == "unknown_key" and "key" in details:
            raise UnknownKeyError(details["key"])
        if error.code == "unknown_collection" and "name" in details:
            raise UnknownCollectionError(details["name"])
        if error.code == "not_primary":
            raise NotPrimaryError(error.message, routing=details.get("routing"))
        if error.code == "stale_routing":
            raise StaleRoutingError(error.message, routing=details.get("routing"))
        exception_type = ERROR_TYPES.get(error.code, RuntimeError)
        if exception_type in (UnknownKeyError, UnknownCollectionError):
            # no structured details available: bypass the structured
            # constructor and carry the formatted message
            exception = exception_type.__new__(exception_type)
            Exception.__init__(exception, error.message)
            raise exception
        raise exception_type(error.message)


_VOLATILE_KEYS = frozenset({"stats", "trace"})


def _strip_volatile(payload: Any) -> Any:
    if isinstance(payload, dict):
        return {
            key: _strip_volatile(value)
            for key, value in payload.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(payload, list):
        return [_strip_volatile(entry) for entry in payload]
    return payload


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON encoding: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def error_response(error: BaseException) -> Response:
    """Map an exception to its typed error envelope."""
    details = None
    if isinstance(error, InvalidRequestError):
        code = "invalid_request"
    elif isinstance(error, UnknownCollectionError):
        code = "unknown_collection"
        details = {"name": error.name}
    elif isinstance(error, UnknownKeyError):
        code = "unknown_key"
        details = {"key": error.key}
    elif isinstance(error, CollectionClosedError):
        code = "collection_closed"
    elif isinstance(error, NotPrimaryError):
        code = "not_primary"
        if error.routing is not None:
            details = {"routing": error.routing}
    elif isinstance(error, StaleRoutingError):
        code = "stale_routing"
        if error.routing is not None:
            details = {"routing": error.routing}
    elif isinstance(error, UnsupportedProtocolError):
        code = "unsupported_protocol"
    elif isinstance(error, SubscriptionOverflowError):
        code = "subscription_overflow"
    elif isinstance(error, (ReproError, ValueError, KeyError)):
        # remaining library/user-input failures (bad threshold, duplicate
        # items, size mismatch, ...) are the client's to fix
        code = "invalid_request"
    else:
        code = "internal"
    message = str(error) or type(error).__name__
    if code == "internal":
        message = f"{type(error).__name__}: {message}"
    return Response(ok=False, error=ResponseError(code=code, message=message, details=details))
