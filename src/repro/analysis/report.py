"""Plain-text report formatting for experiment output.

The experiment harness produces rows of measurements (dictionaries); this
module renders them as aligned text tables and as "series" blocks (one line
per x-value with one column per algorithm), which is how the repository
reports each figure of the paper without requiring a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of measurements as an aligned, pipe-separated text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [len(column) for column in header]
    for line in body:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(column.ljust(width) for column, width in zip(header, widths)))
    lines.append(separator)
    for line in body:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render several named series over a shared x-axis as a text table.

    ``series`` maps a series name (for example an algorithm) to a mapping of
    x-value -> y-value.  Missing points are rendered as blanks.
    """
    x_values = sorted({x for points in series.values() for x in points})
    rows = []
    for x in x_values:
        row: dict[str, object] = {x_label: x}
        for name, points in series.items():
            if x in points:
                row[name] = points[x]
            else:
                row[name] = ""
        rows.append(row)
    columns = [x_label] + list(series.keys())
    return format_table(rows, columns=columns, title=title)


def format_kv(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat key/value mapping, one aligned line per entry."""
    if not values:
        return (title + "\n" if title else "") + "(empty)"
    width = max(len(str(key)) for key in values)
    lines = [title] if title else []
    for key, value in values.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value)}")
    return "\n".join(lines)
