"""Figure 5 — M-tree versus BK-tree query time (NYT-like dataset).

Left panel: vary the ranking size k at theta = 0.1.
Right panel: vary theta at k = 10.
Expected shape: the BK-tree answers queries faster than the M-tree (both are
orders of magnitude behind the inverted-index methods of Figure 6).
"""

from __future__ import annotations

import pytest

from repro.algorithms.metric_search import BKTreeSearch, MTreeSearch
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries
from repro.experiments.harness import run_workload

from _utils import attach_counters, run_once
from conftest import BENCH_METRIC_N

KS = (5, 10, 20)
THETAS = (0.1, 0.2, 0.3)
TREES = {"BK-tree": BKTreeSearch, "M-tree": MTreeSearch}

_datasets = {}
_algorithms = {}


def _setup(k: int):
    if k not in _datasets:
        rankings = nyt_like_dataset(n=BENCH_METRIC_N, k=k)
        queries = sample_queries(rankings, 5, seed=3)
        _datasets[k] = (rankings, queries)
    return _datasets[k]


def _algorithm(name: str, k: int):
    key = (name, k)
    if key not in _algorithms:
        rankings, _queries = _setup(k)
        _algorithms[key] = TREES[name].build(rankings)
    return _algorithms[key]


@pytest.mark.benchmark(group="figure5-vary-k")
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("tree", list(TREES))
def test_figure5_vary_k(benchmark, tree, k):
    """Left panel: query time for theta = 0.1 as k grows."""
    _rankings, queries = _setup(k)
    algorithm = _algorithm(tree, k)
    measurement = run_once(benchmark, run_workload, algorithm, queries, 0.1)
    benchmark.extra_info["k"] = k
    attach_counters(benchmark, measurement)


@pytest.mark.benchmark(group="figure5-vary-theta")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tree", list(TREES))
def test_figure5_vary_theta(benchmark, tree, theta):
    """Right panel: query time at k = 10 as theta grows."""
    _rankings, queries = _setup(10)
    algorithm = _algorithm(tree, 10)
    measurement = run_once(benchmark, run_workload, algorithm, queries, theta)
    benchmark.extra_info["theta"] = theta
    attach_counters(benchmark, measurement)
