"""The request layer: cache -> planner -> sharded fan-out, with stats.

:class:`QueryEngine` is the one object a serving deployment holds onto.  It
owns a :class:`~repro.service.sharding.ShardedIndex`, an
:class:`~repro.service.planner.AdaptivePlanner`, and an
:class:`~repro.service.cache.LRUResultCache`, and exposes three request
entry points:

``query(query, theta)``
    One similarity range query.  Cache lookup first; on a miss the planner
    picks the algorithm, the shards answer concurrently, the observation
    feeds the planner, and the answer is cached.
``batch_query(queries, theta)``
    A batch of range queries, answered through the same path (duplicate
    queries inside a batch hit the cache naturally).
``knn(query, n_neighbours)``
    One exact k-nearest-neighbour query over the sharded collection.

The cached request flow and all statistics bookkeeping live in
:mod:`repro.service.recording` and are shared with the live-update engine;
this module re-exports :class:`QueryStats` / :class:`EngineStats` /
:class:`EngineResponse` from there so existing imports keep working.

``rebuild(num_shards=...)`` repartitions the collection online and
invalidates the cache, the seam later PRs (persistence, replication,
async backends) build on.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from repro.core.ranking import Ranking, RankingSet
from repro.obs.tracing import trace_span
from repro.service.cache import LRUResultCache, knn_fingerprint, range_fingerprint
from repro.service.planner import AdaptivePlanner, PlanDecision
from repro.service.recording import (
    EngineResponse,
    EngineStats,
    QueryStats,
    RequestRecorder,
    serve_cached,
)
from repro.service.sharding import ExecutorSpec, ShardedIndex

__all__ = [
    "EngineResponse",
    "EngineStats",
    "QueryEngine",
    "QueryStats",
]

#: Nominal threshold used to bucket planner statistics for k-NN requests
#: (k-NN has no client-supplied theta; expansion starts near this radius).
_KNN_PLANNING_THETA = 0.1


class QueryEngine:
    """Sharded, planned, cached query service over a ranking collection.

    Parameters
    ----------
    rankings:
        The collection to serve.
    num_shards:
        Number of index shards (1 = single-index serving).
    algorithms:
        Candidate algorithm names the planner chooses from; defaults to the
        registry's service set.  A single-element list pins the algorithm.
    cache_capacity:
        LRU capacity; ``0`` disables result caching.
    executor:
        Fan-out backend for the sharded index: ``"thread"`` (default),
        ``"process"`` for real CPU parallelism, or a
        :class:`~repro.api.remote.RemoteShardExecutor` to fan sub-queries
        out to shard servers (see :mod:`repro.service.sharding`).
    planner / cache / sharded:
        Pre-built components, for tests and custom deployments.

    Examples
    --------
    >>> from repro.core.ranking import RankingSet
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9], [2, 1, 3]])
    >>> engine = QueryEngine(rankings, num_shards=2, algorithms=["F&V"])
    >>> response = engine.query(Ranking([1, 2, 3]), theta=0.3)
    >>> sorted(response.result.rids), response.stats.cache_hit
    ([0, 1, 3], False)
    >>> engine.query(Ranking([1, 2, 3]), theta=0.3).stats.cache_hit
    True
    """

    def __init__(
        self,
        rankings: RankingSet,
        num_shards: int = 1,
        algorithms: Optional[list[str]] = None,
        cache_capacity: int = 1024,
        executor: ExecutorSpec = "thread",
        planner: Optional[AdaptivePlanner] = None,
        cache: Optional[LRUResultCache] = None,
        sharded: Optional[ShardedIndex] = None,
    ) -> None:
        self._sharded = (
            sharded
            if sharded is not None
            else ShardedIndex.build(rankings, num_shards, executor=executor)
        )
        self._planner = (
            planner
            if planner is not None
            else AdaptivePlanner(self._sharded.rankings, candidates=algorithms)
        )
        self._cache = cache if cache is not None else LRUResultCache(cache_capacity)
        self._recorder = RequestRecorder(self._cache.stats, lambda: self._sharded.num_shards)

    # -- component access ---------------------------------------------------------

    @property
    def rankings(self) -> RankingSet:
        """The served collection."""
        return self._sharded.rankings

    @property
    def sharded_index(self) -> ShardedIndex:
        """The partitioned index behind the engine."""
        return self._sharded

    @property
    def planner(self) -> AdaptivePlanner:
        """The per-query planner."""
        return self._planner

    @property
    def cache(self) -> LRUResultCache:
        """The result cache."""
        return self._cache

    @property
    def num_shards(self) -> int:
        """Current shard count."""
        return self._sharded.num_shards

    def stats(self) -> EngineStats:
        """The engine's running totals (live object, do not mutate)."""
        return self._recorder.stats

    # -- lifecycle ----------------------------------------------------------------

    def rebuild(self, num_shards: Optional[int] = None) -> None:
        """Repartition the shards and invalidate every cached result."""
        self._sharded.rebuild(num_shards=num_shards)
        self._cache.invalidate()
        self._recorder.count_rebuild()

    def close(self) -> None:
        """Release the fan-out thread pool."""
        self._sharded.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request entry points ------------------------------------------------------

    def query(
        self, query: Ranking, theta: float, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one similarity range query (``algorithm`` pins the plan)."""

        def compute():
            with trace_span("plan", kind="range"):
                decision = self._plan(query, theta, kind="range", algorithm=algorithm)
            start = time.perf_counter()
            result = self._sharded.range_query(query, theta, decision.algorithm, **decision.params)
            latency = time.perf_counter() - start
            self._planner.observe(decision, latency, candidates=float(result.stats.candidates))
            return result, decision.algorithm, decision.source

        return serve_cached(
            kind="range",
            fingerprint=range_fingerprint(query, theta),
            cache_get=self._cache.get,
            cache_put=self._cache.put,
            compute=compute,
            recorder=self._recorder,
            theta=theta,
        )

    def batch_query(
        self, queries: Sequence[Ranking], theta: float, algorithm: Optional[str] = None
    ) -> list[EngineResponse]:
        """Answer a batch of range queries through the full serving path."""
        return [self.query(query, theta, algorithm=algorithm) for query in queries]

    def knn(
        self, query: Ranking, n_neighbours: int, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one exact k-nearest-neighbour query."""

        def compute():
            with trace_span("plan", kind="knn"):
                decision = self._plan(query, _KNN_PLANNING_THETA, kind="knn", algorithm=algorithm)
            start = time.perf_counter()
            result = self._sharded.knn(query, n_neighbours, decision.algorithm, **decision.params)
            latency = time.perf_counter() - start
            self._planner.observe(decision, latency, candidates=float(result.stats.candidates))
            return result, decision.algorithm, decision.source

        return serve_cached(
            kind="knn",
            fingerprint=knn_fingerprint(query, n_neighbours),
            cache_get=self._cache.get,
            cache_put=self._cache.put,
            compute=compute,
            recorder=self._recorder,
            n_neighbours=n_neighbours,
        )

    # -- internals ------------------------------------------------------------------

    def _plan(
        self, query: Ranking, theta: float, kind: str, algorithm: Optional[str]
    ) -> PlanDecision:
        if algorithm is None:
            return self._planner.plan(query, theta, kind=kind)
        return PlanDecision(
            algorithm=algorithm,
            params=self._planner.params_for(algorithm, theta),
            source="pinned",
            kind=kind,
            theta_bucket=self._planner.bucket(theta),
        )

    def __repr__(self) -> str:
        return (
            f"QueryEngine(n={len(self.rankings)}, shards={self.num_shards}, "
            f"requests={self._recorder.stats.requests})"
        )
