#!/usr/bin/env python3
"""Service-engine demo: batch queries with planner decisions printed.

The quickstart example queries one monolithic index synchronously.  This
demo serves the same kind of workload the way a deployment would — through
:class:`repro.service.QueryEngine`:

1. the collection is partitioned over 4 shards, searched concurrently;
2. the adaptive planner picks the algorithm per query — cost-model priors
   order the cold-start exploration, then latency EWMAs take over;
3. answers land in an LRU result cache, so the second pass over the batch
   is served without touching any index;
4. a rebuild re-shards the collection online and invalidates the cache.

Run with::

    PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

from repro import QueryEngine
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries


def describe(index: int, response) -> None:
    stats = response.stats
    origin = "cache" if stats.cache_hit else stats.planner_source
    print(
        f"  [{index:2d}] {stats.algorithm:12s} via {origin:8s} "
        f"results={stats.results:<4d} latency={stats.latency_seconds * 1000.0:7.2f}ms"
    )


def main() -> None:
    # -- a mid-sized skewed collection and a query workload --------------------
    rankings = nyt_like_dataset(n=600, k=10)
    queries = sample_queries(rankings, 12, seed=7)
    theta = 0.2
    print(f"serving {len(rankings)} rankings (k={rankings.k}) over 4 shards\n")

    with QueryEngine(rankings, num_shards=4, cache_capacity=256) as engine:
        # -- first pass: cold start, the planner explores its candidates -------
        print(f"first pass ({len(queries)} queries, theta={theta}):")
        for index, response in enumerate(engine.batch_query(queries, theta), start=1):
            describe(index, response)

        # -- second pass: identical queries come straight from the cache -------
        print("\nsecond pass (same batch):")
        for index, response in enumerate(engine.batch_query(queries, theta), start=1):
            describe(index, response)

        totals = engine.stats()
        print(f"\ncache: {totals.cache.hits} hits / {totals.cache.lookups} lookups "
              f"(hit rate {totals.cache.hit_rate:.0%})")
        picks = ", ".join(f"{name} x{count}" for name, count in sorted(totals.algorithm_counts.items()))
        print(f"algorithm picks: {picks}")

        # -- k-NN rides the same shards, planner, and cache --------------------
        response = engine.knn(queries[0], 5)
        neighbours = ", ".join(f"tau_{n.rid}({n.distance:.2f})" for n in response.result.neighbours)
        print(f"\n5-NN of query 1 via {response.stats.algorithm}: {neighbours}")

        # -- online re-sharding invalidates the cache --------------------------
        engine.rebuild(num_shards=2)
        refreshed = engine.query(queries[0], theta)
        print(
            f"\nafter rebuild to {engine.num_shards} shards: cache invalidated "
            f"(hit={refreshed.stats.cache_hit}), same answer "
            f"({refreshed.stats.results} results)"
        )


if __name__ == "__main__":
    main()
