"""Serving layer over a mutable collection: cached queries + mutations.

:class:`LiveQueryEngine` is the live-update counterpart of
:class:`~repro.service.engine.QueryEngine`: the same request API
(``query`` / ``batch_query`` / ``knn`` returning
:class:`~repro.service.engine.EngineResponse` with per-request
:class:`~repro.service.engine.QueryStats`), the same
:class:`~repro.service.cache.LRUResultCache` — but over a
:class:`~repro.live.collection.LiveCollection` that also accepts
``insert`` / ``delete`` / ``upsert`` between queries.

Cache correctness under mutation is epoch-based: the collection bumps its
``version`` on every mutation, flush, and compaction, and the engine
invalidates the whole cache the first time it sees a new version.  A burst
of writes therefore costs exactly one invalidation, and read-only periods
keep their hit rate — the same discipline ``QueryEngine`` applies around
``rebuild()``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Optional, Union

from repro.core.ranking import Ranking
from repro.algorithms.registry import LIVE_ALGORITHMS
from repro.live.collection import DEFAULT_LIVE_ALGORITHM, LiveCollection
from repro.service.cache import LRUResultCache, knn_fingerprint, range_fingerprint
from repro.service.engine import EngineResponse, EngineStats, QueryStats


class LiveQueryEngine:
    """Cached query service over a mutable :class:`LiveCollection`.

    Parameters
    ----------
    collection:
        The live collection to serve; a fresh empty one by default.
    algorithm:
        Default index algorithm for base and segment queries; must be one of
        the registry's :data:`~repro.algorithms.registry.LIVE_ALGORITHMS`
        (per-request overrides are unrestricted).
    cache_capacity:
        LRU capacity; ``0`` disables result caching.

    Examples
    --------
    >>> engine = LiveQueryEngine()
    >>> engine.insert([1, 2, 3])
    0
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    False
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    True
    >>> engine.insert([7, 8, 9])                # bumps the collection version
    1
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    False
    """

    def __init__(
        self,
        collection: Optional[LiveCollection] = None,
        *,
        algorithm: str = DEFAULT_LIVE_ALGORITHM,
        cache_capacity: int = 1024,
    ) -> None:
        if algorithm not in LIVE_ALGORITHMS:
            known = ", ".join(LIVE_ALGORITHMS)
            raise ValueError(f"algorithm {algorithm!r} cannot serve live traffic; use one of {known}")
        self._collection = collection if collection is not None else LiveCollection()
        self._algorithm = algorithm
        self._cache = LRUResultCache(cache_capacity)
        self._stats = EngineStats(cache=self._cache.stats)
        self._epoch_lock = threading.Lock()
        self._cached_version = self._collection.version

    # -- component access ---------------------------------------------------------

    @property
    def collection(self) -> LiveCollection:
        """The served mutable collection."""
        return self._collection

    @property
    def cache(self) -> LRUResultCache:
        """The result cache."""
        return self._cache

    @property
    def algorithm(self) -> str:
        """The default index algorithm."""
        return self._algorithm

    def stats(self) -> EngineStats:
        """Running totals (``rebuilds`` counts cache-invalidation epochs)."""
        return self._stats

    # -- mutations (delegate; the version bump invalidates lazily) ----------------

    def insert(self, items: Union[Ranking, list[int], tuple[int, ...]]) -> int:
        """Insert one ranking; returns its logical key."""
        return self._collection.insert(items)

    def delete(self, key: int) -> None:
        """Delete the ranking stored under ``key``."""
        self._collection.delete(key)

    def upsert(self, key: int, items: Union[Ranking, list[int], tuple[int, ...]]) -> None:
        """Replace (or insert) the ranking under ``key``."""
        self._collection.upsert(key, items)

    def flush(self) -> Optional[int]:
        """Seal the memtable into a segment."""
        return self._collection.flush()

    def compact(self) -> bool:
        """Fold segments and tombstones into a fresh base epoch."""
        return self._collection.compact()

    def sync(self) -> None:
        """Force a WAL barrier: everything accepted so far becomes durable."""
        self._collection.sync()

    def snapshot(self) -> Path:
        """Checkpoint the collection so restarts replay only the WAL tail."""
        return self._collection.snapshot()

    @property
    def durability(self) -> str:
        """The served collection's write-path guarantee."""
        return self._collection.durability

    def close(self) -> None:
        """Close the collection (WAL handle, thread pools, compactor)."""
        self._collection.close()

    def __enter__(self) -> "LiveQueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request entry points ------------------------------------------------------

    def query(
        self, query: Ranking, theta: float, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one range query over the current logical collection."""
        start = time.perf_counter()
        version = self._refresh_epoch()
        fingerprint = range_fingerprint(query, theta)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return self._record(
                kind="range", result=cached, cache_hit=True,
                latency=time.perf_counter() - start, theta=theta,
            )
        chosen = algorithm if algorithm is not None else self._algorithm
        result = self._collection.range_query(query, theta, algorithm=chosen)
        self._put_if_current(fingerprint, result, version)
        return self._record(
            kind="range", result=result, cache_hit=False, algorithm=chosen,
            latency=time.perf_counter() - start, theta=theta,
        )

    def batch_query(
        self, queries: Sequence[Ranking], theta: float, algorithm: Optional[str] = None
    ) -> list[EngineResponse]:
        """Answer a batch of range queries through the cached path."""
        return [self.query(query, theta, algorithm=algorithm) for query in queries]

    def knn(
        self, query: Ranking, n_neighbours: int, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one exact k-nearest-neighbour query."""
        start = time.perf_counter()
        version = self._refresh_epoch()
        fingerprint = knn_fingerprint(query, n_neighbours)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return self._record(
                kind="knn", result=cached, cache_hit=True,
                latency=time.perf_counter() - start, n_neighbours=n_neighbours,
            )
        chosen = algorithm if algorithm is not None else self._algorithm
        result = self._collection.knn(query, n_neighbours, algorithm=chosen)
        self._put_if_current(fingerprint, result, version)
        return self._record(
            kind="knn", result=result, cache_hit=False, algorithm=chosen,
            latency=time.perf_counter() - start, n_neighbours=n_neighbours,
        )

    # -- internals ------------------------------------------------------------------

    def _refresh_epoch(self) -> int:
        """Invalidate the cache once per observed collection version change.

        An empty cache has nothing stale in it, so write bursts that arrive
        before any query re-populates it cost zero invalidations.  Returns
        the version the caller's answer will be computed against.
        """
        with self._epoch_lock:
            version = self._collection.version
            if version != self._cached_version:
                if len(self._cache) > 0:
                    self._cache.invalidate()
                    self._stats.rebuilds += 1
                self._cached_version = version
            return version

    def _put_if_current(self, fingerprint, result, version: int) -> None:
        """Cache an answer unless a mutation landed while it was computed.

        Without the check, a result computed against version ``v`` could be
        stored after a concurrent invalidation already advanced the epoch —
        and then be served as a fresh hit.  A mutation that lands after the
        put is still safe: the epoch it bumps invalidates on the next query.
        """
        with self._epoch_lock:
            if self._collection.version == version and self._cached_version == version:
                self._cache.put(fingerprint, result)

    def _record(
        self,
        kind: str,
        result,
        cache_hit: bool,
        latency: float,
        algorithm: str = "",
        theta: float = 0.0,
        n_neighbours: int = 0,
    ) -> EngineResponse:
        result_count = len(result.neighbours) if kind == "knn" else len(result)
        if cache_hit:
            algorithm = getattr(result, "algorithm", "") or "cached"
        # counters are shared across concurrently served requests
        with self._epoch_lock:
            if kind == "knn":
                self._stats.knn_queries += 1
            else:
                self._stats.queries += 1
            if cache_hit:
                self._stats.cache_hits += 1
            else:
                counts = self._stats.algorithm_counts
                counts[algorithm] = counts.get(algorithm, 0) + 1
            self._stats.total_latency_seconds += latency
        stats = QueryStats(
            kind=kind,
            algorithm=algorithm,
            cache_hit=cache_hit,
            latency_seconds=latency,
            shard_count=self._collection.num_shards,
            planner_source="cache" if cache_hit else "pinned",
            theta=theta,
            n_neighbours=n_neighbours,
            results=result_count,
            distance_calls=result.stats.distance_calls,
            candidates=result.stats.candidates,
        )
        return EngineResponse(result=result, stats=stats)

    def __repr__(self) -> str:
        return (
            f"LiveQueryEngine(live={len(self._collection)}, "
            f"version={self._collection.version}, requests={self._stats.requests})"
        )
