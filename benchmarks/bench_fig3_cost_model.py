"""Figure 3 — cost-model curves for varying theta_C on both dataset presets.

The benchmark times the model evaluation itself (it is part of index tuning,
so its cost matters) and records the predicted filter/validate/overall values
plus the recommended theta_C in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import cost_model_inputs_for
from repro.core.cost_model import CostModel

from _utils import run_once

THETA = 0.2
GRID = [round(0.05 * i, 2) for i in range(16)]


@pytest.mark.benchmark(group="figure3-cost-model")
@pytest.mark.parametrize("dataset", ["nyt", "yago"])
def test_figure3_cost_curve(benchmark, dataset, nyt_setup, yago_setup):
    setup = nyt_setup if dataset == "nyt" else yago_setup
    inputs = cost_model_inputs_for(setup.rankings, sample_pairs=5000)
    model = CostModel(inputs)
    feasible = [value for value in GRID if value + THETA < 1.0]

    def evaluate():
        return model.recommend_theta_c(THETA, feasible)

    recommendation = run_once(benchmark, evaluate)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["zipf_s"] = round(inputs.zipf_s, 3)
    benchmark.extra_info["recommended_theta_c"] = recommendation.theta_c
    benchmark.extra_info["curve_overall"] = {
        str(point.theta_c): round(point.total, 2) for point in recommendation.curve
    }
    benchmark.extra_info["curve_filter"] = {
        str(point.theta_c): round(point.filter_cost, 2) for point in recommendation.curve
    }
    benchmark.extra_info["curve_validate"] = {
        str(point.theta_c): round(point.validate_cost, 2) for point in recommendation.curve
    }
