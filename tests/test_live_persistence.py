"""Durability tests: WAL replay, snapshot/restore, and restart equivalence."""

from __future__ import annotations

import json
import random

from repro.core.ranking import Ranking
from repro.live import LiveCollection
from repro.live.collection import SNAPSHOT_FILENAME, WAL_FILENAME


def logical_state(live: LiveCollection) -> list[tuple[int, tuple[int, ...]]]:
    return [(key, live.get(key).items) for key in live.live_keys()]


def churn(live: LiveCollection, rng: random.Random, operations: int) -> None:
    for _ in range(operations):
        keys = live.live_keys()
        roll = rng.random()
        if roll < 0.6 or not keys:
            live.insert(rng.sample(range(50), 5))
        elif roll < 0.8:
            live.delete(rng.choice(keys))
        else:
            live.upsert(rng.choice(keys), rng.sample(range(50), 5))


def test_restart_replays_wal(tmp_path):
    rng = random.Random(5)
    live = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    churn(live, rng, 40)
    expected = logical_state(live)
    next_key = live._next_key
    live.close()

    reopened = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    assert reopened.stats().replayed == 40
    assert logical_state(reopened) == expected
    assert reopened._next_key == next_key
    reopened.close()


def test_restart_answers_equal_pre_restart_answers(tmp_path):
    rng = random.Random(8)
    live = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    churn(live, rng, 50)
    query = Ranking(rng.sample(range(50), 5))
    before_range = [(m.distance, m.rid) for m in live.range_query(query, 0.4).matches]
    before_knn = [(n.distance, n.rid) for n in live.knn(query, 5).neighbours]
    live.close()

    reopened = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    after_range = [(m.distance, m.rid) for m in reopened.range_query(query, 0.4).matches]
    after_knn = [(n.distance, n.rid) for n in reopened.knn(query, 5).neighbours]
    assert after_range == before_range
    assert after_knn == before_knn
    reopened.close()


def test_snapshot_limits_replay_to_wal_tail(tmp_path):
    rng = random.Random(13)
    live = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    churn(live, rng, 30)
    live.snapshot()
    churn(live, rng, 7)  # the tail
    expected = logical_state(live)
    live.close()

    reopened = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    assert reopened.stats().replayed == 7
    assert logical_state(reopened) == expected
    reopened.close()


def test_snapshot_round_trip_without_tail(tmp_path):
    rng = random.Random(21)
    live = LiveCollection.open(tmp_path, memtable_threshold=4, max_segments=2)
    churn(live, rng, 25)
    expected = logical_state(live)
    path = live.snapshot()
    live.close()
    assert path.name == SNAPSHOT_FILENAME

    payload = json.loads(path.read_text(encoding="utf-8"))
    assert [tuple(entry[1]) for entry in payload["entries"]] == [items for _, items in expected]

    reopened = LiveCollection.open(tmp_path)
    assert reopened.stats().replayed == 0
    assert logical_state(reopened) == expected
    # the restored base serves queries directly
    key, items = expected[0]
    assert reopened.knn(Ranking(list(items)), 1).rids == [key]
    reopened.close()


def test_snapshot_truncates_covered_wal_records(tmp_path):
    live = LiveCollection.open(tmp_path)
    for i in range(20):
        live.insert([i, i + 30, i + 60])
    live.snapshot()
    wal_path = tmp_path / WAL_FILENAME
    assert wal_path.read_text(encoding="utf-8") == ""  # fully covered
    for i in range(3):
        live.insert([100 + i, 200 + i, 300 + i])
    assert len(wal_path.read_text(encoding="utf-8").splitlines()) == 3  # tail only
    live.close()

    reopened = LiveCollection.open(tmp_path)
    assert reopened.stats().replayed == 3
    assert len(reopened) == 23
    reopened.close()


def test_snapshot_preserves_key_gaps_and_counter(tmp_path):
    live = LiveCollection.open(tmp_path)
    keys = [live.insert([i, i + 10, i + 20]) for i in range(5)]
    live.delete(keys[1])
    live.delete(keys[3])
    live.snapshot()
    live.close()

    reopened = LiveCollection.open(tmp_path)
    assert reopened.live_keys() == [0, 2, 4]
    assert reopened.insert([50, 60, 70]) == 5  # counter survives the round trip
    reopened.close()


def test_torn_wal_tail_is_ignored_on_restart(tmp_path):
    live = LiveCollection.open(tmp_path)
    live.insert([1, 2, 3])
    live.insert([4, 5, 6])
    live.close()
    with open(tmp_path / WAL_FILENAME, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 3, "op": "insert", "key": 2, "items": [7,')
    reopened = LiveCollection.open(tmp_path)
    assert reopened.live_keys() == [0, 1]
    # the next mutation reuses the uncommitted sequence number
    reopened.insert([7, 8, 9])
    assert reopened._seq == 3
    reopened.close()
    # and that mutation survives another restart: the torn line was repaired,
    # not glued onto (which would silently drop the acknowledged insert)
    final = LiveCollection.open(tmp_path)
    assert final.live_keys() == [0, 1, 2]
    assert final.get(2) == Ranking([7, 8, 9])
    final.close()


def test_open_on_empty_directory_starts_empty(tmp_path):
    live = LiveCollection.open(tmp_path / "fresh")
    assert len(live) == 0
    assert live.insert([1, 2, 3]) == 0
    live.close()


def test_in_memory_collection_rejects_snapshot():
    live = LiveCollection()
    live.insert([1, 2, 3])
    try:
        live.snapshot()
    except ValueError as error:
        assert "directory" in str(error)
    else:  # pragma: no cover - defensive
        raise AssertionError("snapshot without a directory should fail")


def test_snapshot_to_explicit_directory(tmp_path):
    live = LiveCollection()
    live.insert([1, 2, 3])
    path = live.snapshot(tmp_path / "backup")
    assert path.exists()
    restored = LiveCollection.open(tmp_path / "backup")
    assert logical_state(restored) == [(0, (1, 2, 3))]
    restored.close()
