"""Live-update store under churn: mutation throughput and query latency.

Streams a mixed mutation workload (inserts, deletes, upserts drawn from an
NYT-like generator) into a :class:`repro.live.LiveCollection` at several
memtable/segment thresholds, answering range and k-NN probes throughout.
Two figures per configuration land in ``extra_info``:

* ``updates_per_second`` — mutations applied per second, WAL included when
  the configuration is durable;
* ``query_mean_ms`` / ``query_max_ms`` — latency of the probes answered
  mid-churn, i.e. against a mix of base, segments, memtable, and tombstones.

Run under pytest-benchmark as part of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_live_updates.py
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.ranking import Ranking
from repro.live import LiveCollection

from _utils import run_once

#: (memtable threshold, max segments) configurations swept by the benchmark.
THRESHOLDS = ((32, 2), (128, 4), (512, 8))

#: Mutation mix: mostly inserts, a realistic sliver of deletes and upserts.
INSERT_WEIGHT, DELETE_WEIGHT = 0.8, 0.1

MUTATIONS = 1200
PROBE_EVERY = 100
K = 10
DOMAIN = 1000
THETA = 0.2
NEIGHBOURS = 10


def _mutation_stream(rng: random.Random, count: int):
    """Yield ``(op, key_index, items)`` triples; key_index picks a live key."""
    for _ in range(count):
        roll = rng.random()
        if roll < INSERT_WEIGHT:
            yield "insert", 0, rng.sample(range(DOMAIN), K)
        elif roll < INSERT_WEIGHT + DELETE_WEIGHT:
            yield "delete", rng.random(), None
        else:
            yield "upsert", rng.random(), rng.sample(range(DOMAIN), K)


def _churn(live: LiveCollection, seed: int, mutations: int) -> dict[str, float]:
    """Apply the workload with interleaved probes; return the derived figures."""
    rng = random.Random(seed)
    probe = Ranking(rng.sample(range(DOMAIN), K))
    applied = 0
    latencies: list[float] = []
    mutation_seconds = 0.0
    for op, pick, items in _mutation_stream(rng, mutations):
        keys = None
        if op != "insert":
            keys = live.live_keys()
            if not keys:
                op, items = "insert", rng.sample(range(DOMAIN), K)
        start = time.perf_counter()
        if op == "insert":
            live.insert(items)
        elif op == "delete":
            live.delete(keys[int(pick * len(keys))])
        else:
            live.upsert(keys[int(pick * len(keys))], items)
        mutation_seconds += time.perf_counter() - start
        applied += 1
        if applied % PROBE_EVERY == 0:
            start = time.perf_counter()
            live.range_query(probe, THETA)
            live.knn(probe, NEIGHBOURS)
            latencies.append(time.perf_counter() - start)
    return {
        "applied": applied,
        "mutation_seconds": mutation_seconds,
        "query_mean_ms": 1000.0 * sum(latencies) / len(latencies),
        "query_max_ms": 1000.0 * max(latencies),
    }


@pytest.mark.benchmark(group="live-updates")
@pytest.mark.parametrize("memtable_threshold,max_segments", THRESHOLDS)
def test_live_update_churn(benchmark, memtable_threshold, max_segments):
    """Throughput/latency of one (memtable threshold, segment bound) config."""
    with LiveCollection(
        memtable_threshold=memtable_threshold, max_segments=max_segments
    ) as live:
        figures = run_once(benchmark, _churn, live, seed=17, mutations=MUTATIONS)
        stats = live.stats()
        benchmark.extra_info["memtable_threshold"] = memtable_threshold
        benchmark.extra_info["max_segments"] = max_segments
        benchmark.extra_info["updates_per_second"] = round(
            figures["applied"] / figures["mutation_seconds"], 1
        )
        benchmark.extra_info["query_mean_ms"] = round(figures["query_mean_ms"], 2)
        benchmark.extra_info["query_max_ms"] = round(figures["query_max_ms"], 2)
        benchmark.extra_info["flushes"] = stats.flushes
        benchmark.extra_info["compactions"] = stats.compactions
        benchmark.extra_info["live_rankings"] = len(live)


def main() -> None:
    """Standalone report: churn figures per threshold, in-memory and durable."""
    import tempfile

    print(
        f"live-update churn: {MUTATIONS} mutations "
        f"({INSERT_WEIGHT:.0%} insert / {DELETE_WEIGHT:.0%} delete / "
        f"{1 - INSERT_WEIGHT - DELETE_WEIGHT:.0%} upsert), "
        f"probe every {PROBE_EVERY} (range theta={THETA} + {NEIGHBOURS}-NN)"
    )
    header = (
        f"{'memtable':>8s}  {'segments':>8s}  {'wal':>5s}  {'updates/s':>10s}  "
        f"{'query mean':>10s}  {'query max':>9s}  {'flushes':>7s}  {'compactions':>11s}"
    )
    print(header)
    for memtable_threshold, max_segments in THRESHOLDS:
        for durable in (False, True):
            if durable:
                directory = tempfile.mkdtemp(prefix="repro-live-bench-")
                live = LiveCollection.open(
                    directory,
                    memtable_threshold=memtable_threshold,
                    max_segments=max_segments,
                )
            else:
                live = LiveCollection(
                    memtable_threshold=memtable_threshold, max_segments=max_segments
                )
            with live:
                figures = _churn(live, seed=17, mutations=MUTATIONS)
                stats = live.stats()
                print(
                    f"{memtable_threshold:>8d}  {max_segments:>8d}  "
                    f"{'on' if durable else 'off':>5s}  "
                    f"{figures['applied'] / figures['mutation_seconds']:>10.0f}  "
                    f"{figures['query_mean_ms']:>8.2f}ms  {figures['query_max_ms']:>7.2f}ms  "
                    f"{stats.flushes:>7d}  {stats.compactions:>11d}"
                )


if __name__ == "__main__":
    main()
