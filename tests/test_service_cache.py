"""Behavioural tests of the LRU result cache.

Covers the satellite checklist explicitly: eviction order, the capacity
bound, invalidation on shard rebuild, and the hit/miss counters, plus the
fingerprint normalisation that makes near-identical thresholds share an
entry.
"""

from __future__ import annotations

import pytest

from repro.core.ranking import Ranking, RankingSet
from repro.service import QueryEngine
from repro.service.cache import LRUResultCache, knn_fingerprint, range_fingerprint


def test_capacity_bound_is_hard():
    cache = LRUResultCache(capacity=3)
    for index in range(10):
        cache.put(index, index * 10)
    assert len(cache) == 3
    assert cache.stats.evictions == 7


def test_eviction_order_is_least_recently_used():
    cache = LRUResultCache(capacity=3)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert cache.get("a") == 1  # refresh "a": now "b" is the oldest
    cache.put("d", 4)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.get("d") == 4


def test_put_refreshes_recency_and_overwrites():
    cache = LRUResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 100)  # overwrite refreshes recency; no eviction
    assert len(cache) == 2
    cache.put("c", 3)  # evicts "b", the least recently touched
    assert cache.get("b") is None
    assert cache.get("a") == 100
    assert cache.stats.evictions == 1


def test_hit_and_miss_counters():
    cache = LRUResultCache(capacity=2)
    assert cache.get("nope") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("a") == 1
    assert cache.get("gone") is None
    stats = cache.stats
    assert stats.hits == 2
    assert stats.misses == 2
    assert stats.lookups == 4
    assert stats.hit_rate == pytest.approx(0.5)


def test_hit_rate_is_zero_before_any_lookup():
    assert LRUResultCache(capacity=2).stats.hit_rate == 0.0


def test_invalidate_clears_everything_and_counts():
    cache = LRUResultCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.invalidate() == 2
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.stats.invalidations == 1


def test_capacity_zero_disables_the_cache():
    cache = LRUResultCache(capacity=0)
    assert not cache.enabled
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.stats.misses == 1


def test_negative_capacity_is_rejected():
    with pytest.raises(ValueError):
        LRUResultCache(capacity=-1)


def test_keys_are_ordered_least_recently_used_first():
    cache = LRUResultCache(capacity=3)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    assert cache.keys() == ["b", "a"]


def test_range_fingerprint_normalises_threshold_drift():
    query = Ranking([1, 2, 3])
    assert range_fingerprint(query, 0.2) == range_fingerprint(query, 0.2 + 1e-12)
    assert range_fingerprint(query, 0.2) != range_fingerprint(query, 0.21)
    assert range_fingerprint(query, 0.2) != range_fingerprint(Ranking([1, 3, 2]), 0.2)


def test_knn_fingerprint_distinguishes_neighbour_counts():
    query = Ranking([1, 2, 3])
    assert knn_fingerprint(query, 5) != knn_fingerprint(query, 6)
    assert knn_fingerprint(query, 5) != range_fingerprint(query, 5.0)


def test_engine_rebuild_invalidates_cached_results():
    """The satellite requirement: shard rebuild -> explicit cache invalidation."""
    rankings = RankingSet.from_lists(
        [[1, 2, 3], [1, 3, 2], [7, 8, 9], [2, 1, 3], [3, 2, 1], [8, 7, 9]]
    )
    query = Ranking([1, 2, 3])
    with QueryEngine(rankings, num_shards=2, algorithms=["F&V"]) as engine:
        first = engine.query(query, 0.4)
        assert not first.stats.cache_hit
        assert engine.query(query, 0.4).stats.cache_hit
        engine.rebuild(num_shards=3)
        assert len(engine.cache) == 0
        assert engine.cache.stats.invalidations == 1
        refreshed = engine.query(query, 0.4)
        assert not refreshed.stats.cache_hit
        assert refreshed.result.rids == first.result.rids
