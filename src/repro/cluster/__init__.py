"""repro.cluster — a self-assembling cluster over plain shard servers.

The subsystem in one breath: a :class:`~repro.cluster.coordinator.Coordinator`
provisions empty servers over the existing wire DDL, routes every mutation
to its owning shard by consistent key hash
(:mod:`~repro.cluster.routing`), replicates acknowledged writes to
followers as group-commit WAL batches, promotes a caught-up replica when a
primary dies, and moves hash slots between shards online — while queries
fan out and merge back byte-identical to a single-node answer
(:mod:`~repro.cluster.merge`).  :class:`~repro.cluster.client.ClusterClient`
is the routing-aware client; :class:`~repro.cluster.local.LocalCluster` is
the whole topology in one process for tests, demos, and smoke jobs.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import Coordinator
from repro.cluster.local import LocalCluster
from repro.cluster.merge import (
    merge_batch_responses,
    merge_knn_responses,
    merge_range_responses,
    merge_stats,
)
from repro.cluster.routing import (
    DEFAULT_NUM_SLOTS,
    RoutingTable,
    ShardSpec,
    key_slot,
    table_owner,
)

__all__ = [
    "ClusterClient",
    "Coordinator",
    "DEFAULT_NUM_SLOTS",
    "LocalCluster",
    "RoutingTable",
    "ShardSpec",
    "key_slot",
    "merge_batch_responses",
    "merge_knn_responses",
    "merge_range_responses",
    "merge_stats",
    "table_owner",
]
