"""Merging per-shard answers back into single-node-identical envelopes.

A clustered collection must be indistinguishable from one big
:class:`~repro.live.collection.LiveCollection`: same matches, same
``(distance, key)`` order, same pagination cursors —
:meth:`~repro.api.responses.Response.result_bytes` equal, byte for byte.
Live responses report logical *keys* as their ``rid``s and every shard
returns its matches already sorted by ``(distance, key)``, so the global
answer is a plain ordered merge of the shard answers; k-NN additionally
truncates the union to the ``k`` globally smallest pairs, which is exact
because each shard contributed its own ``k`` smallest.

Stats are volatile by contract (``result_bytes`` strips them), so merged
stats are additive-where-numeric rather than bit-faithful.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from repro.api.responses import MatchPayload, Response

__all__ = [
    "merge_batch_responses",
    "merge_knn_responses",
    "merge_range_responses",
    "merge_stats",
]


def _merge_matches(per_shard: Sequence[Sequence[MatchPayload]]) -> list[MatchPayload]:
    """Ordered merge of per-shard match lists, each sorted by (distance, rid).

    Routing partitions keys, so rids are globally unique — except while a
    reshard is backfilling, when a moving key briefly exists on both its
    old and new shard.  The merge keeps the first copy of a rid (the one
    with the smaller distance), which makes an in-flight migration
    invisible to readers; once the reshard completes the dedup is a no-op.
    """
    merged: list[MatchPayload] = []
    seen: set[int] = set()
    for match in heapq.merge(*per_shard, key=lambda match: (match.distance, match.rid)):
        if match.rid in seen:
            continue
        seen.add(match.rid)
        merged.append(match)
    return merged


def merge_stats(stats_list: Sequence[Optional[dict]]) -> dict:
    """Combine per-shard stats dicts: numerics sum, the rest is first-wins."""
    merged: dict = {}
    for stats in stats_list:
        for key, value in (stats or {}).items():
            if (
                key in merged
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
                and isinstance(merged[key], (int, float))
                and not isinstance(merged[key], bool)
            ):
                merged[key] += value
            elif key not in merged:
                merged[key] = value
    return merged


def merge_range_responses(
    responses: Sequence[Response],
    *,
    limit: Optional[int] = None,
    cursor: int = 0,
) -> Response:
    """One global range answer from per-shard *full* (unpaginated) answers.

    Pagination is applied after the merge with exactly the single-node
    window/cursor semantics, which is why the coordinator always fans out
    the unpaginated query: a per-shard window would cut the wrong rows.
    """
    raw = _merge_matches([response.matches or () for response in responses])
    next_cursor: Optional[int] = None
    if limit is not None or cursor:
        end = len(raw) if limit is None else cursor + limit
        window = raw[cursor:end]
        if end < len(raw):
            next_cursor = end
    else:
        window = raw
    return Response(
        ok=True,
        matches=tuple(window),
        stats=merge_stats([response.stats for response in responses]),
        cursor=next_cursor,
    )


def merge_knn_responses(responses: Sequence[Response], k: int) -> Response:
    """The ``k`` globally nearest from per-shard top-``k`` answers."""
    merged = _merge_matches([response.matches or () for response in responses])
    return Response(
        ok=True,
        matches=tuple(merged[:k]),
        stats=merge_stats([response.stats for response in responses]),
    )


def merge_batch_responses(responses: Sequence[Response]) -> Response:
    """Positionwise merge of per-shard batch answers (one entry per query)."""
    widths = {len(response.batch or ()) for response in responses}
    assert len(widths) == 1, f"shards answered different batch widths: {widths}"
    entries = []
    for position in range(widths.pop()):
        per_query = [(response.batch or ())[position] for response in responses]
        entries.append(
            Response(
                ok=True,
                matches=tuple(_merge_matches([entry.matches or () for entry in per_query])),
                stats=merge_stats([entry.stats for entry in per_query]),
            )
        )
    return Response(ok=True, batch=tuple(entries))
