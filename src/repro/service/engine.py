"""The request layer: cache -> planner -> sharded fan-out, with stats.

:class:`QueryEngine` is the one object a serving deployment holds onto.  It
owns a :class:`~repro.service.sharding.ShardedIndex`, an
:class:`~repro.service.planner.AdaptivePlanner`, and an
:class:`~repro.service.cache.LRUResultCache`, and exposes three request
entry points:

``query(query, theta)``
    One similarity range query.  Cache lookup first; on a miss the planner
    picks the algorithm, the shards answer concurrently, the observation
    feeds the planner, and the answer is cached.
``batch_query(queries, theta)``
    A batch of range queries, answered through the same path (duplicate
    queries inside a batch hit the cache naturally).
``knn(query, n_neighbours)``
    One exact k-nearest-neighbour query over the sharded collection.

Every response carries a :class:`QueryStats` describing what the engine did
for that request — cache hit or miss, the plan and where it came from,
shard count, latency, and the merged algorithm counters — and
:meth:`QueryEngine.stats` aggregates the running totals a dashboard would
scrape.

``rebuild(num_shards=...)`` repartitions the collection online and
invalidates the cache, the seam later PRs (persistence, replication,
async backends) build on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional, Union

from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.algorithms.knn import KnnResult
from repro.service.cache import CacheStats, LRUResultCache, knn_fingerprint, range_fingerprint
from repro.service.planner import AdaptivePlanner, PlanDecision
from repro.service.sharding import ShardedIndex

#: Nominal threshold used to bucket planner statistics for k-NN requests
#: (k-NN has no client-supplied theta; expansion starts near this radius).
_KNN_PLANNING_THETA = 0.1


@dataclass(frozen=True)
class QueryStats:
    """What the engine did for one request."""

    kind: str
    algorithm: str
    cache_hit: bool
    latency_seconds: float
    shard_count: int
    planner_source: str
    theta: float = 0.0
    n_neighbours: int = 0
    results: int = 0
    distance_calls: int = 0
    candidates: int = 0

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view for logs and reports."""
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "latency_seconds": self.latency_seconds,
            "shard_count": self.shard_count,
            "planner_source": self.planner_source,
            "theta": self.theta,
            "n_neighbours": self.n_neighbours,
            "results": self.results,
            "distance_calls": self.distance_calls,
            "candidates": self.candidates,
        }


@dataclass(frozen=True)
class EngineResponse:
    """One answered request: the result plus the per-request stats."""

    result: Union[SearchResult, KnnResult]
    stats: QueryStats


@dataclass
class EngineStats:
    """Running totals across the engine's lifetime."""

    queries: int = 0
    knn_queries: int = 0
    cache_hits: int = 0
    rebuilds: int = 0
    total_latency_seconds: float = 0.0
    algorithm_counts: dict[str, int] = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def requests(self) -> int:
        """All requests served (range + knn)."""
        return self.queries + self.knn_queries

    @property
    def mean_latency_seconds(self) -> float:
        """Average request latency (0.0 before any traffic)."""
        if self.requests == 0:
            return 0.0
        return self.total_latency_seconds / self.requests


class QueryEngine:
    """Sharded, planned, cached query service over a ranking collection.

    Parameters
    ----------
    rankings:
        The collection to serve.
    num_shards:
        Number of index shards (1 = single-index serving).
    algorithms:
        Candidate algorithm names the planner chooses from; defaults to the
        registry's service set.  A single-element list pins the algorithm.
    cache_capacity:
        LRU capacity; ``0`` disables result caching.
    planner / cache / sharded:
        Pre-built components, for tests and custom deployments.

    Examples
    --------
    >>> from repro.core.ranking import RankingSet
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9], [2, 1, 3]])
    >>> engine = QueryEngine(rankings, num_shards=2, algorithms=["F&V"])
    >>> response = engine.query(Ranking([1, 2, 3]), theta=0.3)
    >>> sorted(response.result.rids), response.stats.cache_hit
    ([0, 1, 3], False)
    >>> engine.query(Ranking([1, 2, 3]), theta=0.3).stats.cache_hit
    True
    """

    def __init__(
        self,
        rankings: RankingSet,
        num_shards: int = 1,
        algorithms: Optional[list[str]] = None,
        cache_capacity: int = 1024,
        planner: Optional[AdaptivePlanner] = None,
        cache: Optional[LRUResultCache] = None,
        sharded: Optional[ShardedIndex] = None,
    ) -> None:
        self._sharded = sharded if sharded is not None else ShardedIndex.build(rankings, num_shards)
        self._planner = (
            planner
            if planner is not None
            else AdaptivePlanner(self._sharded.rankings, candidates=algorithms)
        )
        self._cache = cache if cache is not None else LRUResultCache(cache_capacity)
        self._stats = EngineStats(cache=self._cache.stats)
        self._stats_lock = threading.Lock()

    # -- component access ---------------------------------------------------------

    @property
    def rankings(self) -> RankingSet:
        """The served collection."""
        return self._sharded.rankings

    @property
    def sharded_index(self) -> ShardedIndex:
        """The partitioned index behind the engine."""
        return self._sharded

    @property
    def planner(self) -> AdaptivePlanner:
        """The per-query planner."""
        return self._planner

    @property
    def cache(self) -> LRUResultCache:
        """The result cache."""
        return self._cache

    @property
    def num_shards(self) -> int:
        """Current shard count."""
        return self._sharded.num_shards

    def stats(self) -> EngineStats:
        """The engine's running totals (live object, do not mutate)."""
        return self._stats

    # -- lifecycle ----------------------------------------------------------------

    def rebuild(self, num_shards: Optional[int] = None) -> None:
        """Repartition the shards and invalidate every cached result."""
        self._sharded.rebuild(num_shards=num_shards)
        self._cache.invalidate()
        self._stats.rebuilds += 1

    def close(self) -> None:
        """Release the fan-out thread pool."""
        self._sharded.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request entry points ------------------------------------------------------

    def query(
        self, query: Ranking, theta: float, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one similarity range query (``algorithm`` pins the plan)."""
        start = time.perf_counter()
        fingerprint = range_fingerprint(query, theta)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return self._record(
                kind="range", result=cached, decision=None, cache_hit=True,
                latency=time.perf_counter() - start, theta=theta,
            )
        decision = self._plan(query, theta, kind="range", algorithm=algorithm)
        result = self._sharded.range_query(query, theta, decision.algorithm, **decision.params)
        latency = time.perf_counter() - start
        self._planner.observe(decision, latency, candidates=float(result.stats.candidates))
        self._cache.put(fingerprint, result)
        return self._record(
            kind="range", result=result, decision=decision, cache_hit=False,
            latency=latency, theta=theta,
        )

    def batch_query(
        self, queries: Sequence[Ranking], theta: float, algorithm: Optional[str] = None
    ) -> list[EngineResponse]:
        """Answer a batch of range queries through the full serving path."""
        return [self.query(query, theta, algorithm=algorithm) for query in queries]

    def knn(
        self, query: Ranking, n_neighbours: int, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one exact k-nearest-neighbour query."""
        start = time.perf_counter()
        fingerprint = knn_fingerprint(query, n_neighbours)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return self._record(
                kind="knn", result=cached, decision=None, cache_hit=True,
                latency=time.perf_counter() - start, n_neighbours=n_neighbours,
            )
        decision = self._plan(query, _KNN_PLANNING_THETA, kind="knn", algorithm=algorithm)
        result = self._sharded.knn(query, n_neighbours, decision.algorithm, **decision.params)
        latency = time.perf_counter() - start
        self._planner.observe(decision, latency, candidates=float(result.stats.candidates))
        self._cache.put(fingerprint, result)
        return self._record(
            kind="knn", result=result, decision=decision, cache_hit=False,
            latency=latency, n_neighbours=n_neighbours,
        )

    # -- internals ------------------------------------------------------------------

    def _plan(
        self, query: Ranking, theta: float, kind: str, algorithm: Optional[str]
    ) -> PlanDecision:
        if algorithm is None:
            return self._planner.plan(query, theta, kind=kind)
        return PlanDecision(
            algorithm=algorithm,
            params=self._planner.params_for(algorithm, theta),
            source="pinned",
            kind=kind,
            theta_bucket=self._planner.bucket(theta),
        )

    def _record(
        self,
        kind: str,
        result: Union[SearchResult, KnnResult],
        decision: Optional[PlanDecision],
        cache_hit: bool,
        latency: float,
        theta: float = 0.0,
        n_neighbours: int = 0,
    ) -> EngineResponse:
        result_count = len(result.neighbours) if kind == "knn" else len(result)  # type: ignore[union-attr]
        if cache_hit:
            algorithm = getattr(result, "algorithm", "") or "cached"
        else:
            assert decision is not None
            algorithm = decision.algorithm
        # counters are shared across concurrently served requests
        with self._stats_lock:
            if kind == "knn":
                self._stats.knn_queries += 1
            else:
                self._stats.queries += 1
            if cache_hit:
                self._stats.cache_hits += 1
            else:
                counts = self._stats.algorithm_counts
                counts[algorithm] = counts.get(algorithm, 0) + 1
            self._stats.total_latency_seconds += latency
        stats = QueryStats(
            kind=kind,
            algorithm=algorithm,
            cache_hit=cache_hit,
            latency_seconds=latency,
            shard_count=self._sharded.num_shards,
            planner_source=decision.source if decision is not None else "cache",
            theta=theta,
            n_neighbours=n_neighbours,
            results=result_count,
            distance_calls=result.stats.distance_calls,
            candidates=result.stats.candidates,
        )
        return EngineResponse(result=result, stats=stats)

    def __repr__(self) -> str:
        return (
            f"QueryEngine(n={len(self.rankings)}, shards={self.num_shards}, "
            f"requests={self._stats.requests})"
        )
