"""Tests of the adaptive planner: priors, exploration, EWMA convergence."""

from __future__ import annotations

import pytest

from repro.core.cost_model import CostModelInputs
from repro.datasets.synthetic import DatasetSpec, generate_clustered_rankings
from repro.service.planner import AdaptivePlanner, PlanDecision


@pytest.fixture(scope="module")
def rankings():
    return generate_clustered_rankings(
        DatasetSpec(n=100, k=8, domain_size=250, zipf_s=0.7, cluster_size=4, seed=13)
    )


@pytest.fixture()
def planner(rankings):
    return AdaptivePlanner(
        rankings, candidates=["F&V", "ListMerge", "Coarse+Drop"], sample_pairs=500
    )


def test_default_candidates_come_from_registry(rankings):
    from repro.algorithms.registry import SERVICE_ALGORITHMS

    assert AdaptivePlanner(rankings).candidates == list(SERVICE_ALGORITHMS)


def test_invalid_configuration_is_rejected(rankings):
    with pytest.raises(ValueError):
        AdaptivePlanner(rankings, candidates=[])
    with pytest.raises(ValueError):
        AdaptivePlanner(rankings, smoothing=0.0)
    with pytest.raises(ValueError):
        AdaptivePlanner(rankings, smoothing=1.5)


def test_cold_start_explores_every_candidate_in_prior_order(planner, rankings):
    query = rankings[0]
    prior_order = sorted(planner.candidates, key=lambda name: planner.prior_cost(name, 0.2))
    seen = []
    for _ in planner.candidates:
        decision = planner.plan(query, 0.2)
        assert decision.source == "model"
        seen.append(decision.algorithm)
        planner.observe(decision, latency_seconds=0.01, candidates=5.0)
    assert seen == prior_order
    assert len(set(seen)) == len(planner.candidates)


def test_switches_to_observed_latencies_once_bucket_is_covered(planner, rankings):
    query = rankings[0]
    latencies = {"F&V": 0.5, "ListMerge": 0.003, "Coarse+Drop": 0.2}
    for _ in planner.candidates:
        decision = planner.plan(query, 0.2)
        planner.observe(decision, latency_seconds=latencies[decision.algorithm])
    decision = planner.plan(query, 0.2)
    assert decision.source == "observed"
    assert decision.algorithm == "ListMerge"
    assert decision.predicted_cost == pytest.approx(0.003)


def test_buckets_keep_statistics_separate(planner, rankings):
    query = rankings[0]
    for _ in planner.candidates:
        decision = planner.plan(query, 0.2)
        planner.observe(decision, latency_seconds=0.01)
    # theta=0.4 lands in a fresh bucket: back to model-driven exploration
    assert planner.plan(query, 0.4).source == "model"
    assert planner.plan(query, 0.21).theta_bucket == planner.plan(query, 0.2).theta_bucket


def test_kind_separates_range_and_knn_statistics(planner, rankings):
    query = rankings[0]
    for _ in planner.candidates:
        decision = planner.plan(query, 0.1, kind="range")
        planner.observe(decision, latency_seconds=0.01)
    assert planner.plan(query, 0.1, kind="knn").source == "model"


def test_ewma_smoothing_converges_on_new_level(planner, rankings):
    query = rankings[0]
    decision = planner.plan(query, 0.3)
    planner.observe(decision, latency_seconds=1.0, candidates=10.0)
    for _ in range(30):
        planner.observe(decision, latency_seconds=0.1, candidates=2.0)
    key = (decision.kind, decision.algorithm, decision.theta_bucket)
    stats = planner.snapshot()[key]
    assert stats["count"] == 31.0
    assert stats["latency_seconds"] == pytest.approx(0.1, abs=0.01)
    assert stats["candidates"] == pytest.approx(2.0, abs=0.2)


def test_coarse_params_carry_recommended_theta_c(planner):
    params = planner.params_for("Coarse+Drop", 0.2)
    assert set(params) == {"theta_c"}
    assert 0.0 <= params["theta_c"] < 1.0
    assert planner.params_for("F&V", 0.2) == {}


def test_prior_cost_is_positive_for_all_registered_candidates(rankings):
    from repro.algorithms.registry import ALGORITHM_NAMES

    planner = AdaptivePlanner(rankings, sample_pairs=500)
    for name in ALGORITHM_NAMES:
        assert planner.prior_cost(name, 0.2) > 0.0


def test_validation_factors_reference_registered_algorithms():
    """Guard against registry-name drift in the prior table."""
    from repro.algorithms.registry import ALGORITHM_NAMES
    from repro.service.planner import _VALIDATION_FACTOR

    assert set(_VALIDATION_FACTOR) <= set(ALGORITHM_NAMES)


def test_explicit_model_inputs_skip_sampling(rankings):
    inputs = CostModelInputs(
        n=len(rankings), k=rankings.k, v=300, zipf_s=0.7, distance_cdf=lambda x: min(1.0, x)
    )
    planner = AdaptivePlanner(rankings, candidates=["F&V"], model_inputs=inputs)
    assert planner.model_inputs is inputs
    decision = planner.plan(rankings[0], 0.2)
    assert isinstance(decision, PlanDecision)
    assert decision.algorithm == "F&V"
