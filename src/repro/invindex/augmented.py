"""Rank-augmented inverted index: item -> list of (ranking id, rank) postings.

Keeping the rank next to each ranking id lets the query algorithms compute
Footrule contributions directly from the index lists without fetching the
full rankings (Section 6.2 of the paper), and it is the basis of both the
ListMerge baseline (id-sorted merge join) and the +Prune list-at-a-time
processing with partial-information bounds.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking, RankingSet
from repro.core.stats import SearchStats
from repro.invindex.postings import Posting, PostingList


class AugmentedInvertedIndex:
    """Item -> :class:`PostingList` of (ranking id, rank) pairs.

    Examples
    --------
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [3, 1, 2]])
    >>> index = AugmentedInvertedIndex.build(rankings)
    >>> [(p.rid, p.rank) for p in index.postings_for(1)]
    [(0, 0), (1, 1)]
    """

    def __init__(self, rankings: RankingSet) -> None:
        self._rankings = rankings
        self._lists: dict[int, PostingList] = {}
        self._built = False

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, rankings: RankingSet) -> "AugmentedInvertedIndex":
        """Build the index over all rankings in the collection."""
        if len(rankings) == 0:
            raise EmptyDatasetError("cannot build an inverted index over an empty ranking set")
        index = cls(rankings)
        for ranking in rankings:
            index._add(ranking)
        index._built = True
        return index

    def _add(self, ranking: Ranking) -> None:
        assert ranking.rid is not None
        for rank, item in enumerate(ranking.items):
            self._lists.setdefault(item, PostingList()).append(ranking.rid, rank)

    # -- accessors ------------------------------------------------------------

    @property
    def rankings(self) -> RankingSet:
        """The indexed ranking collection."""
        return self._rankings

    @property
    def k(self) -> int:
        """Ranking size of the indexed collection."""
        return self._rankings.k

    def items(self) -> Iterable[int]:
        """All indexed items."""
        return self._lists.keys()

    def postings_for(self, item: int) -> PostingList:
        """The posting list of ``item`` (empty list if unknown)."""
        return self._lists.get(item, PostingList())

    def list_length(self, item: int) -> int:
        """Length of the posting list of ``item`` (0 if unknown)."""
        return len(self._lists.get(item, ()))

    def num_postings(self) -> int:
        """Total number of postings stored."""
        return sum(len(postings) for postings in self._lists.values())

    def num_items(self) -> int:
        """Number of distinct indexed items."""
        return len(self._lists)

    def memory_estimate_bytes(self) -> int:
        """Rough footprint: 16 bytes per (rid, rank) posting plus the rankings.

        The augmented index is reported by the paper as the largest structure
        because it stores the rank next to every id *and* keeps the raw
        rankings for validation; the same accounting is applied here.
        """
        postings_bytes = 16 * self.num_postings()
        dictionary_bytes = 16 * self.num_items()
        ranking_bytes = 8 * sum(ranking.size for ranking in self._rankings)
        return postings_bytes + dictionary_bytes + ranking_bytes

    # -- query support -----------------------------------------------------------

    def candidate_ranks(
        self,
        query: Ranking,
        stats: Optional[SearchStats] = None,
        query_items: Optional[Iterable[int]] = None,
    ) -> dict[int, dict[int, int]]:
        """Collect, per candidate ranking, the ranks of the seen query items.

        Returns a mapping ``rid -> {item: rank_in_candidate}`` restricted to
        the processed ``query_items`` (all query items by default).
        """
        items = list(query_items) if query_items is not None else list(query.items)
        accumulator: dict[int, dict[int, int]] = {}
        for item in items:
            postings = self._lists.get(item)
            if stats is not None:
                stats.lists_accessed += 1
            if postings is None:
                continue
            if stats is not None:
                stats.postings_scanned += len(postings)
            for posting in postings:
                accumulator.setdefault(posting.rid, {})[item] = posting.rank
        if stats is not None:
            stats.candidates += len(accumulator)
        return accumulator

    def iter_lists_shortest_first(self, items: Iterable[int]) -> list[tuple[int, PostingList]]:
        """The posting lists of ``items`` ordered by increasing length.

        Accessing short lists first maximises the effect of early pruning in
        the list-at-a-time algorithms.
        """
        pairs = [(item, self.postings_for(item)) for item in items]
        pairs.sort(key=lambda pair: len(pair[1]))
        return pairs

    def __repr__(self) -> str:
        return (
            f"AugmentedInvertedIndex(items={self.num_items()}, postings={self.num_postings()}, "
            f"rankings={len(self._rankings)})"
        )


def _posting_repr(posting: Posting) -> str:
    return f"({posting.rid}:{posting.rank})"
