"""The wire layer: framing, the TCP server, and remote/in-process parity.

The headline guarantee under test: for range, k-NN, and batch queries over
both static and live collections, the envelope a remote client receives is
byte-identical (``result_bytes``) to the envelope an in-process session
produces on the same database — including under concurrent mixed
query + mutation load from multiple clients.
"""

from __future__ import annotations

import io
import socket
import struct
import threading

import pytest

from repro.core.ranking import RankingSet
from repro.api import Client, Database, DatabaseServer
from repro.api.protocol import (
    FrameError,
    FrameTooLargeError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cli import main as cli_main
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries

THETA = 0.25
K = 8


@pytest.fixture(scope="module")
def rankings() -> RankingSet:
    return nyt_like_dataset(n=150, k=K, seed=23)


@pytest.fixture()
def served(rankings):
    """A running server plus the database behind it."""
    database = Database()
    database.create_static("news", rankings, num_shards=2)
    live = database.create_live("updates")
    for ranking in list(rankings)[:60]:
        live.insert(ranking.items)
    with DatabaseServer(database, port=0) as server:
        yield server, database
    database.close()


class TestFraming:
    def test_frame_round_trip(self):
        stream = io.BytesIO()
        write_frame(stream, {"type": "admin", "action": "ping"})
        stream.seek(0)
        assert read_frame(stream) == {"type": "admin", "action": "ping"}
        assert read_frame(stream) is None  # clean EOF between frames

    def test_torn_frame_raises(self):
        stream = io.BytesIO(encode_frame({"ok": True})[:-2])
        with pytest.raises(FrameError, match="mid-frame"):
            read_frame(stream)

    def test_header_without_payload_raises(self):
        stream = io.BytesIO(struct.pack("!I", 12))
        with pytest.raises(FrameError):
            read_frame(stream)

    def test_not_json_raises(self):
        body = b"\xff\xfe not json"
        stream = io.BytesIO(struct.pack("!I", len(body)) + body)
        with pytest.raises(FrameError, match="JSON"):
            read_frame(stream)

    def test_non_object_payload_raises(self):
        body = b"[1,2,3]"
        stream = io.BytesIO(struct.pack("!I", len(body)) + body)
        with pytest.raises(FrameError, match="object"):
            read_frame(stream)

    def test_oversized_frames_rejected_both_ways(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 100}, max_frame_bytes=50)
        stream = io.BytesIO(struct.pack("!I", 10_000) + b"x" * 10_000)
        with pytest.raises(FrameTooLargeError):
            read_frame(stream, max_frame_bytes=100)


class TestServerRoundTrips:
    def test_remote_equals_in_process_for_every_query_kind(self, served, rankings):
        server, database = served
        session = database.session()
        host, port = server.address
        queries = sample_queries(rankings, 6, seed=5)
        with Client(host, port) as client:
            for collection in ("news", "updates"):
                for query in queries:
                    remote = client.range_query(query, THETA, collection=collection)
                    local = session.range_query(query, THETA, collection=collection)
                    assert remote.ok
                    assert remote.result_bytes() == local.result_bytes()

                    remote = client.knn(query, 5, collection=collection)
                    local = session.knn(query, 5, collection=collection)
                    assert remote.ok
                    assert remote.result_bytes() == local.result_bytes()

                remote = client.batch(queries[:3], THETA, collection=collection)
                local = session.batch(queries[:3], THETA, collection=collection)
                assert remote.ok
                assert remote.result_bytes() == local.result_bytes()

    def test_remote_typed_errors_keep_their_attributes(self, served):
        """A remote UnknownKeyError carries .key just like the local one."""
        from repro.core.errors import UnknownKeyError

        server, _ = served
        with Client(*server.address) as client:
            with pytest.raises(UnknownKeyError) as caught:
                client.delete(424_242, collection="updates")
            assert caught.value.key == 424_242

    def test_aborted_client_does_not_crash_the_handler(self, served, capsys):
        """A mid-frame disconnect is a clean close, not a stderr traceback."""
        server, _ = served
        host, port = server.address
        raw = socket.create_connection((host, port), timeout=5.0)
        raw.sendall(struct.pack("!I", 64) + b"partial")  # torn frame, then RST
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
        raw.close()
        # the server stays healthy for the next client
        with Client(host, port) as client:
            assert client.ping() is True
        assert "Traceback" not in capsys.readouterr().err

    def test_remote_mutations_are_visible_in_process(self, served):
        server, database = served
        with Client(*server.address) as client:
            key = client.insert(list(range(1, K + 1)), collection="updates")
            assert database.engine("updates").collection.get(key) is not None
            client.upsert(key, list(range(K, 0, -1)), collection="updates")
            assert database.engine("updates").collection.get(key).items[0] == K
            client.delete(key, collection="updates")
            assert key not in database.engine("updates").collection

    def test_error_envelopes_cross_the_wire(self, served):
        server, _ = served
        with Client(*server.address) as client:
            response = client.execute(
                {"type": "range", "collection": "nope", "items": [1, 2], "theta": 0.1}
            )
            assert not response.ok and response.error.code == "unknown_collection"
            response = client.execute({"type": "warp", "collection": "news"})
            assert not response.ok and response.error.code == "invalid_request"
            # the connection survives request-level errors
            assert client.ping() is True

    def test_admin_surface_over_the_wire(self, served):
        server, _ = served
        with Client(*server.address) as client:
            names = [info["name"] for info in client.collections()]
            assert names == ["news", "updates"]
            stats = client.stats("news")
            assert stats["kind"] == "static"
            assert client.flush("updates") is not None

    def test_ddl_round_trips_over_the_wire(self, served, rankings):
        """create -> query -> drop entirely from the client side."""
        server, database = served
        with Client(*server.address) as client:
            created = client.create_collection(
                "wire-born",
                "static",
                rankings=[ranking.items for ranking in list(rankings)[:25]],
                num_shards=2,
            )
            assert created == {"created": "wire-born", "engine": "static", "size": 25}
            assert "wire-born" in database.names()  # visible in-process too
            query = list(rankings)[0].items
            remote = client.range_query(query, THETA, collection="wire-born")
            local = database.session().range_query(query, THETA, collection="wire-born")
            assert remote.result_bytes() == local.result_bytes()
            assert client.drop_collection("wire-born") == {"dropped": "wire-born"}
            assert "wire-born" not in database.names()

    def test_malformed_frame_gets_protocol_envelope_then_close(self, served):
        server, _ = served
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as raw:
            stream = raw.makefile("rwb")
            body = b"this is not json"
            stream.write(struct.pack("!I", len(body)) + body)
            stream.flush()
            reply = read_frame(stream)
            assert reply is not None and reply["ok"] is False
            assert reply["error"]["code"] == "protocol"
            assert read_frame(stream) is None  # server closed the connection

    def test_oversized_frame_gets_protocol_envelope_then_close(self, rankings):
        database = Database()
        database.create_static("news", rankings)
        with DatabaseServer(database, port=0, max_frame_bytes=256) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5.0) as raw:
                stream = raw.makefile("rwb")
                huge = encode_frame({"type": "insert", "collection": "x",
                                     "items": list(range(1000))})
                stream.write(huge)
                stream.flush()
                reply = read_frame(stream)
                assert reply["ok"] is False and reply["error"]["code"] == "protocol"
                assert "maximum" in reply["error"]["message"]
                assert read_frame(stream) is None
        database.close()

    def test_client_refuses_oversized_request_locally(self, served):
        # protocol=1: a 64-byte cap is smaller than the v2 handshake reply
        server, _ = served
        with Client(*server.address, max_frame_bytes=64, protocol=1) as client:
            with pytest.raises(FrameTooLargeError):
                client.execute(
                    {"type": "range", "collection": "news",
                     "items": list(range(1, 200)), "theta": 0.1}
                )

    def test_oversized_response_gets_protocol_envelope(self, rankings):
        """A too-large *answer* is reported, not a silent connection drop."""
        database = Database()
        database.create_static("news", rankings)
        # requests fit comfortably; a broad range answer does not
        with DatabaseServer(database, port=0, max_frame_bytes=1024) as server:
            with Client(*server.address) as client:
                response = client.range_query(
                    list(rankings[0].items), 0.9, collection="news"
                )
                assert not response.ok
                assert response.error.code == "protocol"
                assert "frame limit" in response.error.message
                # a paginated retry fits
                with Client(*server.address) as retry:
                    page = retry.range_query(
                        list(rankings[0].items), 0.9, collection="news", limit=2
                    )
                    assert page.ok and len(page.matches) == 2
        database.close()

    def test_v1_client_poisons_connection_on_timeout(self):
        """Under v1 framing a round-trip timeout closes the client: without
        correlation ids the next request must not read the previous
        request's late response.  (Under v2 only the timed-out id fails —
        see tests/test_api_protocol_v2.py.)"""
        listener = socket.create_server(("127.0.0.1", 0))  # accepts, never replies
        try:
            host, port = listener.getsockname()
            client = Client(host, port, timeout=0.2, protocol=1)
            with pytest.raises(ConnectionError, match="connection failed"):
                client.ping()
            assert client.closed  # poisoned, not silently desynchronized
            with pytest.raises(ConnectionError, match="closed"):
                client.ping()
        finally:
            listener.close()

    def test_negotiating_client_fails_fast_on_unresponsive_server(self):
        """The handshake itself times out instead of hanging the constructor."""
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            host, port = listener.getsockname()
            with pytest.raises(ConnectionError, match="handshake failed"):
                Client(host, port, timeout=0.2)
        finally:
            listener.close()

    def test_close_without_serving_does_not_hang(self, rankings):
        """shutdown()/close() must return even if the loop never started."""
        database = Database()
        database.create_static("news", rankings)
        server = DatabaseServer(database, port=0)
        closer = threading.Thread(target=server.close)
        closer.start()
        closer.join(timeout=5.0)
        assert not closer.is_alive(), "close() deadlocked on a never-started server"
        database.close()

    def test_shutdown_request_stops_the_server(self, rankings):
        database = Database()
        database.create_static("news", rankings)
        server = DatabaseServer(database, port=0)
        host, port = server.start()
        with Client(host, port) as client:
            response = client.shutdown_server()
            assert response.ok and response.data == {"acknowledged": True}
        server.wait(timeout=5.0)  # the serve loop exits by itself
        server.close()
        with pytest.raises(OSError):
            Client(host, port, timeout=0.5)
        database.close()


class TestConcurrentClients:
    N_CLIENTS = 6
    REQUESTS_PER_CLIENT = 12

    def test_concurrent_mixed_load_stays_byte_identical(self, served, rankings):
        """>= 4 concurrent clients, mixed queries + mutations, no divergence."""
        server, database = served
        host, port = server.address
        queries = sample_queries(rankings, 8, seed=9)
        errors: list = []
        barrier = threading.Barrier(self.N_CLIENTS)

        def worker(worker_id: int) -> None:
            try:
                with Client(host, port) as client:
                    barrier.wait(timeout=10.0)
                    for round_number in range(self.REQUESTS_PER_CLIENT):
                        query = queries[(worker_id + round_number) % len(queries)]
                        response = client.range_query(query, THETA, collection="news")
                        assert response.ok
                        response = client.knn(query, 3, collection="updates")
                        assert response.ok
                        # mutate: insert then delete a private ranking
                        items = [10_000 + worker_id * 1000 + round_number * K + offset
                                 for offset in range(K)]
                        key = client.insert(items, collection="updates")
                        client.delete(key, collection="updates")
            except Exception as error:  # noqa: BLE001 - surfaced to the main thread
                errors.append((worker_id, error))

        threads = [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(self.N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors

        # all transient inserts were deleted: the logical collection is back
        # to its pre-test state, so remote answers equal in-process answers
        session = database.session()
        with Client(host, port) as client:
            for query in queries:
                for collection in ("news", "updates"):
                    remote = client.range_query(query, THETA, collection=collection)
                    local = session.range_query(query, THETA, collection=collection)
                    assert remote.result_bytes() == local.result_bytes()
                remote = client.knn(query, 5, collection="updates")
                local = session.knn(query, 5, collection="updates")
                assert remote.result_bytes() == local.result_bytes()

    def test_one_client_shared_by_threads_serialises(self, served, rankings):
        server, _ = served
        queries = sample_queries(rankings, 4, seed=2)
        errors: list = []
        with Client(*server.address) as client:

            def worker(worker_id: int) -> None:
                try:
                    for query in queries:
                        assert client.range_query(query, THETA, collection="news").ok
                except Exception as error:  # noqa: BLE001
                    errors.append((worker_id, error))

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not errors, errors


class TestCliServeAndClient:
    def test_emptied_durable_state_is_not_reseeded(self, tmp_path, capsys):
        """Restarting serve with the TSV must not resurrect deleted data."""
        from repro.live import LiveCollection

        dataset = tmp_path / "rankings.tsv"
        assert cli_main(["generate", str(dataset), "--n", "20", "--k", "5"]) == 0
        state_dir = tmp_path / "state"
        with LiveCollection.open(state_dir) as collection:
            key = collection.insert([1, 2, 3, 4, 5])
            collection.delete(key)  # operator emptied the collection
        capsys.readouterr()
        ready_file = tmp_path / "ready.txt"
        thread = threading.Thread(
            target=cli_main,
            args=(["serve", str(dataset), "--live", "--dir", str(state_dir),
                   "--port", "0", "--ready-file", str(ready_file)],),
        )
        thread.start()
        try:
            for _ in range(100):
                if ready_file.exists() and ready_file.read_text().strip():
                    break
                thread.join(timeout=0.05)
            host, port = ready_file.read_text().split()
            with Client(host, int(port)) as client:
                assert client.collections()[0]["size"] == 0  # still empty
                client.shutdown_server()
        finally:
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert "opened existing live state (0 rankings" in capsys.readouterr().out

    def test_cli_round_trip(self, tmp_path, capsys):
        dataset = tmp_path / "rankings.tsv"
        assert cli_main(["generate", str(dataset), "--n", "60", "--k", "6"]) == 0
        ready_file = tmp_path / "ready.txt"
        serve_result: dict = {}

        state_dir = tmp_path / "state"

        def run_server() -> None:
            serve_result["code"] = cli_main(
                ["serve", str(dataset), "--port", "0", "--live",
                 "--dir", str(state_dir), "--ready-file", str(ready_file)]
            )

        thread = threading.Thread(target=run_server)
        thread.start()
        try:
            for _ in range(100):
                if ready_file.exists() and ready_file.read_text().strip():
                    break
                thread.join(timeout=0.05)
            host, port = ready_file.read_text().split()
            with open(dataset, encoding="utf-8") as handle:
                first_items = ",".join(handle.readline().split())
            base = ["client", "--host", host, "--port", port]
            assert cli_main([*base, "--query", first_items, "--theta", "0.3"]) == 0
            assert "rid=" in capsys.readouterr().out
            assert cli_main([*base, "--query", first_items, "--knn", "2"]) == 0
            assert cli_main([*base, "--insert", "901,902,903,904,905,906"]) == 0
            assert "inserted key=" in capsys.readouterr().out
            assert cli_main([*base, "--admin", "collections"]) == 0
            assert cli_main([*base, "--delete", "99999"]) == 1  # unknown key
            # durable serving: snapshot works because --dir attached a WAL
            assert cli_main([*base, "--admin", "snapshot"]) == 0
            assert "manifest.json" in capsys.readouterr().out
            assert (state_dir / "manifest.json").exists()
            assert cli_main([*base, "--admin", "shutdown"]) == 0
        finally:
            thread.join(timeout=10.0)
        assert not thread.is_alive(), "serve command did not stop after shutdown"
        assert serve_result.get("code") == 0

        # restart from the durable state alone — no rankings file needed
        ready_file.unlink()
        restart_result: dict = {}

        def run_restart() -> None:
            restart_result["code"] = cli_main(
                ["serve", "--live", "--dir", str(state_dir), "--port", "0",
                 "--ready-file", str(ready_file)]
            )

        thread = threading.Thread(target=run_restart)
        thread.start()
        try:
            for _ in range(100):
                if ready_file.exists() and ready_file.read_text().strip():
                    break
                thread.join(timeout=0.05)
            host, port = ready_file.read_text().split()
            base = ["client", "--host", host, "--port", port]
            assert cli_main([*base, "--query", "901,902,903,904,905,906", "--theta", "0.01"]) == 0
            out = capsys.readouterr().out
            assert "opened existing live state" in out
            assert "1 match(es)" in out  # the pre-restart insert survived
            assert cli_main([*base, "--admin", "shutdown"]) == 0
        finally:
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert restart_result.get("code") == 0
