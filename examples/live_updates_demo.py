#!/usr/bin/env python3
"""Live-update store demo: mutate, query, crash, and recover.

Every other example serves a frozen collection; this one exercises the full
LSM-style write path of :mod:`repro.live` end to end:

1. rankings stream into a durable :class:`repro.live.LiveCollection` — WAL
   first, then the memtable, with automatic flushes into sealed segments and
   background-style compaction into a fresh sharded base;
2. deletes and upserts tombstone sealed versions without touching the
   immutable layers, while queries stay exact across all of them;
3. a live answer is compared against a from-scratch index over the logical
   collection — byte-identical, the subsystem's core guarantee;
4. a snapshot is taken, more mutations land, the process "restarts", and
   recovery replays only the WAL tail;
5. a :class:`repro.live.LiveQueryEngine` serves cached queries whose cache
   is invalidated once per mutation epoch.

Run with::

    PYTHONPATH=src python examples/live_updates_demo.py
"""

from __future__ import annotations

import random
import tempfile

from repro import LiveCollection, LiveQueryEngine, make_algorithm
from repro.datasets.nyt import nyt_like_dataset

K = 10
THETA = 0.2


def main() -> None:
    rng = random.Random(42)
    source = nyt_like_dataset(n=400, k=K)
    directory = tempfile.mkdtemp(prefix="repro-live-demo-")
    print(f"live collection in {directory} (WAL + snapshots)\n")

    # -- 1. stream the collection in, with churn -------------------------------
    live = LiveCollection.open(directory, memtable_threshold=64, max_segments=3)
    keys = [live.insert(ranking.items) for ranking in source]
    for _ in range(40):
        victim = keys.pop(rng.randrange(len(keys)))
        live.delete(victim)
    for _ in range(40):
        live.upsert(rng.choice(keys), rng.sample(sorted(source.item_domain()), K))
    stats = live.stats()
    print(
        f"after churn: {len(live)} live rankings | memtable={live.memtable_size} "
        f"segments={live.segment_count} base={live.base_size} "
        f"tombstones={live.tombstone_count}"
    )
    print(
        f"maintenance: {stats.flushes} flushes, {stats.compactions} compactions, "
        f"{stats.mutations} mutations logged\n"
    )

    # -- 2. exact queries over base + segments + memtable - tombstones ---------
    query = live.get(rng.choice(keys))
    result = live.range_query(query, THETA, algorithm="Coarse+Drop")
    nearest = live.knn(query, 5)
    print(f"range query (theta={THETA}): {len(result)} matches, "
          f"{result.stats.distance_calls} distance calls")
    print(f"5-NN keys: {nearest.rids}")

    # -- 3. the guarantee: identical to a from-scratch index -------------------
    baseline = make_algorithm("F&V", live.to_ranking_set())
    expected = baseline.search(query, THETA)
    live_keys = live.live_keys()
    identical = [
        (match.distance, live_keys[match.rid], match.ranking.items)
        for match in expected.matches
    ] == [(match.distance, match.rid, match.ranking.items) for match in result.matches]
    print(f"live answer == from-scratch rebuild answer: {identical}\n")
    assert identical

    # -- 4. snapshot, keep writing, "crash", recover from snapshot + WAL tail --
    live.snapshot()
    tail_keys = [live.insert(rng.sample(sorted(source.item_domain()), K)) for _ in range(25)]
    expected_live = len(live)
    live.close()  # the "crash": nothing flushed explicitly, WAL has it all

    recovered = LiveCollection.open(directory, memtable_threshold=64, max_segments=3)
    print(f"restart: snapshot restored, {recovered.stats().replayed} WAL tail "
          f"record(s) replayed, {len(recovered)} live rankings "
          f"(expected {expected_live})")
    assert len(recovered) == expected_live
    assert recovered.get(tail_keys[-1]) is not None

    # -- 5. cached serving over the mutable collection -------------------------
    with LiveQueryEngine(recovered, algorithm="F&V") as engine:
        first = engine.query(query, THETA)
        second = engine.query(query, THETA)
        engine.insert(rng.sample(sorted(source.item_domain()), K))
        third = engine.query(query, THETA)
        print(
            "\nengine: cold query "
            f"{first.stats.latency_seconds * 1000.0:.2f}ms, cached "
            f"{second.stats.latency_seconds * 1000.0:.2f}ms "
            f"(hit={second.stats.cache_hit}), after insert hit={third.stats.cache_hit}"
        )
        print(f"cache invalidations: {engine.cache.stats.invalidations}")


if __name__ == "__main__":
    main()
