"""Tests for the Ranking and RankingSet value types."""

import pytest

from repro.core.errors import (
    DuplicateItemError,
    InvalidRankingError,
    RankingSizeMismatchError,
)
from repro.core.ranking import Ranking, RankingSet


class TestRanking:
    def test_items_preserved_in_order(self):
        ranking = Ranking([2, 5, 4, 3])
        assert ranking.items == (2, 5, 4, 3)

    def test_size(self):
        assert Ranking([1, 2, 3]).size == 3

    def test_rank_of_contained_item(self):
        ranking = Ranking([2, 5, 4, 3])
        assert ranking.rank_of(2) == 0
        assert ranking.rank_of(3) == 3

    def test_rank_of_missing_item_raises_without_default(self):
        with pytest.raises(KeyError):
            Ranking([1, 2, 3]).rank_of(99)

    def test_rank_of_missing_item_with_default(self):
        ranking = Ranking([1, 2, 3])
        assert ranking.rank_of(99, default=ranking.size) == 3

    def test_contains(self):
        ranking = Ranking([1, 2, 3])
        assert 2 in ranking
        assert 9 not in ranking

    def test_domain(self):
        assert Ranking([3, 1, 2]).domain == frozenset({1, 2, 3})

    def test_iteration_and_len(self):
        ranking = Ranking([4, 5, 6])
        assert list(ranking) == [4, 5, 6]
        assert len(ranking) == 3

    def test_getitem(self):
        assert Ranking([4, 5, 6])[1] == 5

    def test_duplicate_items_rejected(self):
        with pytest.raises(DuplicateItemError):
            Ranking([1, 2, 1])

    def test_empty_ranking_rejected(self):
        with pytest.raises(InvalidRankingError):
            Ranking([])

    def test_equality_ignores_rid(self):
        assert Ranking([1, 2, 3], rid=4) == Ranking([1, 2, 3], rid=9)

    def test_equality_respects_order(self):
        assert Ranking([1, 2, 3]) != Ranking([3, 2, 1])

    def test_hashable(self):
        assert len({Ranking([1, 2]), Ranking([1, 2]), Ranking([2, 1])}) == 2

    def test_overlap_symmetric(self):
        left = Ranking([1, 2, 3, 4])
        right = Ranking([3, 4, 5, 6])
        assert left.overlap(right) == right.overlap(left) == 2

    def test_overlap_disjoint(self):
        assert Ranking([1, 2]).overlap(Ranking([3, 4])) == 0

    def test_with_rid_copies(self):
        original = Ranking([1, 2, 3])
        copy = original.with_rid(7)
        assert copy.rid == 7
        assert original.rid is None
        assert copy == original

    def test_rank_map_is_copy(self):
        ranking = Ranking([1, 2, 3])
        mapping = ranking.rank_map()
        mapping[1] = 99
        assert ranking.rank_of(1) == 0

    def test_repr_contains_items(self):
        assert "[1, 2, 3]" in repr(Ranking([1, 2, 3]))


class TestRankingSet:
    def test_from_lists_assigns_dense_ids(self):
        rankings = RankingSet.from_lists([[1, 2], [3, 4], [5, 6]])
        assert [ranking.rid for ranking in rankings] == [0, 1, 2]

    def test_k_inferred_from_first_ranking(self):
        rankings = RankingSet.from_lists([[1, 2, 3]])
        assert rankings.k == 3

    def test_k_mismatch_rejected(self):
        rankings = RankingSet.from_lists([[1, 2, 3]])
        with pytest.raises(RankingSizeMismatchError):
            rankings.add([1, 2])

    def test_empty_set_has_no_k(self):
        with pytest.raises(InvalidRankingError):
            RankingSet().k

    def test_explicit_k_enforced(self):
        rankings = RankingSet(k=3)
        with pytest.raises(RankingSizeMismatchError):
            rankings.add([1, 2])

    def test_getitem_by_rid(self):
        rankings = RankingSet.from_lists([[1, 2], [3, 4]])
        assert rankings[1].items == (3, 4)

    def test_len_and_iter(self):
        rankings = RankingSet.from_lists([[1, 2], [3, 4]])
        assert len(rankings) == 2
        assert [ranking.items for ranking in rankings] == [(1, 2), (3, 4)]

    def test_item_domain(self):
        rankings = RankingSet.from_lists([[1, 2], [2, 3]])
        assert rankings.item_domain() == {1, 2, 3}

    def test_item_frequencies(self):
        rankings = RankingSet.from_lists([[1, 2], [2, 3], [2, 4]])
        frequencies = rankings.item_frequencies()
        assert frequencies[2] == 3
        assert frequencies[1] == 1

    def test_contains_ranking(self):
        rankings = RankingSet.from_lists([[1, 2], [3, 4]])
        assert Ranking([3, 4]) in rankings
        assert Ranking([4, 3]) not in rankings
        assert "not a ranking" not in rankings

    def test_from_rankings(self):
        source = [Ranking([1, 2]), Ranking([3, 4])]
        rankings = RankingSet.from_rankings(source)
        assert len(rankings) == 2
        assert rankings[0].rid == 0

    def test_add_returns_stored_copy_with_rid(self):
        rankings = RankingSet()
        stored = rankings.add([5, 6])
        assert stored.rid == 0
        assert stored.items == (5, 6)

    def test_repr_mentions_size(self):
        rankings = RankingSet.from_lists([[1, 2]])
        assert "n=1" in repr(rankings)
