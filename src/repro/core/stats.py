"""Machine-independent instrumentation shared by every query algorithm.

The paper reports two performance measures: wall-clock time and the number of
distance-function calls (DFC).  Timing in a pure-Python reproduction is noisy
and not comparable to the original Java/Trove implementation, so every
algorithm in this library additionally records counters that are independent
of the machine: distance-function calls, postings scanned, candidates
produced, index lists accessed and dropped, and partitions visited.  Figure
10 of the paper is regenerated purely from these counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters and per-phase timings collected while answering one query.

    Counters
    --------
    distance_calls:
        Full Footrule (or other metric) evaluations — the paper's DFC metric.
    postings_scanned:
        Number of inverted-index postings (ranking id entries) read.
    candidates:
        Number of distinct candidate rankings produced by the filtering phase.
    results:
        Number of rankings in the final answer.
    lists_accessed / lists_dropped:
        Query index lists processed vs skipped by the +Drop optimisation.
    blocks_accessed / blocks_skipped:
        Blocks processed vs skipped by the blocked-access optimisation.
    partitions_visited:
        Coarse index only: number of medoid partitions validated.
    bound_prunes / bound_accepts:
        Candidates discarded early (lower bound above theta) and accepted
        early (upper bound at or below theta) by the +Prune optimisation.
    nodes_visited:
        Metric-tree algorithms: number of tree nodes touched.
    """

    distance_calls: int = 0
    postings_scanned: int = 0
    candidates: int = 0
    results: int = 0
    lists_accessed: int = 0
    lists_dropped: int = 0
    blocks_accessed: int = 0
    blocks_skipped: int = 0
    partitions_visited: int = 0
    bound_prunes: int = 0
    bound_accepts: int = 0
    nodes_visited: int = 0
    filter_seconds: float = 0.0
    validate_seconds: float = 0.0
    total_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats object into this one (for workload totals)."""
        self.distance_calls += other.distance_calls
        self.postings_scanned += other.postings_scanned
        self.candidates += other.candidates
        self.results += other.results
        self.lists_accessed += other.lists_accessed
        self.lists_dropped += other.lists_dropped
        self.blocks_accessed += other.blocks_accessed
        self.blocks_skipped += other.blocks_skipped
        self.partitions_visited += other.partitions_visited
        self.bound_prunes += other.bound_prunes
        self.bound_accepts += other.bound_accepts
        self.nodes_visited += other.nodes_visited
        self.filter_seconds += other.filter_seconds
        self.validate_seconds += other.validate_seconds
        self.total_seconds += other.total_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view used by the experiment harness and reports."""
        payload: dict[str, float] = {
            "distance_calls": self.distance_calls,
            "postings_scanned": self.postings_scanned,
            "candidates": self.candidates,
            "results": self.results,
            "lists_accessed": self.lists_accessed,
            "lists_dropped": self.lists_dropped,
            "blocks_accessed": self.blocks_accessed,
            "blocks_skipped": self.blocks_skipped,
            "partitions_visited": self.partitions_visited,
            "bound_prunes": self.bound_prunes,
            "bound_accepts": self.bound_accepts,
            "nodes_visited": self.nodes_visited,
            "filter_seconds": self.filter_seconds,
            "validate_seconds": self.validate_seconds,
            "total_seconds": self.total_seconds,
        }
        payload.update(self.extra)
        return payload


class PhaseTimer:
    """Context manager adding elapsed wall-clock time to a stats attribute.

    Examples
    --------
    >>> stats = SearchStats()
    >>> with PhaseTimer(stats, "filter_seconds"):
    ...     _ = sum(range(10))
    >>> stats.filter_seconds >= 0.0
    True
    """

    def __init__(self, stats: SearchStats, attribute: str) -> None:
        if not hasattr(stats, attribute):
            raise AttributeError(f"SearchStats has no attribute {attribute!r}")
        self._stats = stats
        self._attribute = attribute
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(self._stats, self._attribute, getattr(self._stats, self._attribute) + elapsed)


class CountingDistance:
    """Wrap a distance function so every invocation is counted in a stats object.

    The wrapper is how all algorithms in the library report the paper's
    "distance function calls" measure without littering counting code around
    every distance evaluation.
    """

    def __init__(self, distance_function, stats: SearchStats) -> None:
        self._distance_function = distance_function
        self._stats = stats

    def __call__(self, left, right) -> float:
        self._stats.distance_calls += 1
        return self._distance_function(left, right)
