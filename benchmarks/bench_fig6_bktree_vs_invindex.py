"""Figure 6 — BK-tree versus the plain inverted index (F&V), NYT-like dataset.

Expected shape: F&V outperforms the BK-tree across all k and theta values,
which is the paper's motivation for building on inverted indices rather than
metric trees alone.
"""

from __future__ import annotations

import pytest

from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.metric_search import BKTreeSearch
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries
from repro.experiments.harness import run_workload

from _utils import attach_counters, run_once
from conftest import BENCH_METRIC_N

KS = (5, 10, 20)
THETAS = (0.1, 0.2, 0.3)
ALGORITHMS = {"BK-tree": BKTreeSearch, "F&V": FilterValidate}

_datasets = {}
_algorithms = {}


def _setup(k: int):
    if k not in _datasets:
        rankings = nyt_like_dataset(n=BENCH_METRIC_N, k=k)
        queries = sample_queries(rankings, 5, seed=3)
        _datasets[k] = (rankings, queries)
    return _datasets[k]


def _algorithm(name: str, k: int):
    key = (name, k)
    if key not in _algorithms:
        rankings, _queries = _setup(k)
        _algorithms[key] = ALGORITHMS[name].build(rankings)
    return _algorithms[key]


@pytest.mark.benchmark(group="figure6-vary-k")
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_figure6_vary_k(benchmark, name, k):
    """Left panel: query time for theta = 0.1 as k grows."""
    _rankings, queries = _setup(k)
    algorithm = _algorithm(name, k)
    measurement = run_once(benchmark, run_workload, algorithm, queries, 0.1)
    benchmark.extra_info["k"] = k
    attach_counters(benchmark, measurement)


@pytest.mark.benchmark(group="figure6-vary-theta")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_figure6_vary_theta(benchmark, name, theta):
    """Right panel: query time at k = 10 as theta grows."""
    _rankings, queries = _setup(10)
    algorithm = _algorithm(name, 10)
    measurement = run_once(benchmark, run_workload, algorithm, queries, theta)
    benchmark.extra_info["theta"] = theta
    attach_counters(benchmark, measurement)
