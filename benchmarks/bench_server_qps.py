"""Served QPS over the wire: concurrent clients vs the in-process baseline.

Boots a :class:`repro.api.DatabaseServer` over the shared NYT-like
collection and measures queries-per-second for client counts {1, 2, 4, 8},
each client issuing the same range-query workload over its own connection.
The in-process :class:`~repro.api.database.Session` serving the identical
workload is the baseline — the gap is pure transport (framing + JSON +
loopback TCP), since the dispatch behind both paths is the same code.

Run under pytest-benchmark as part of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_server_qps.py
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Client, Database, DatabaseServer

from _utils import run_once

#: Concurrent client connections the sweep exercises.
CLIENT_COUNTS = (1, 2, 4, 8)

#: Passes each client makes over the query workload.
PASSES = 2

THETA = 0.2


def _serve_clients(address, queries, n_clients: int) -> int:
    """Run the workload from ``n_clients`` concurrent connections."""
    host, port = address
    served = [0] * n_clients
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        try:
            with Client(host, port) as client:
                for _ in range(PASSES):
                    for query in queries:
                        response = client.range_query(query, THETA, collection="news")
                        assert response.ok, response.error
                        served[worker_id] += 1
        except Exception as error:  # noqa: BLE001 - reported by the caller
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return sum(served)


def _serve_in_process(session, queries) -> int:
    served = 0
    for _ in range(PASSES):
        for query in queries:
            response = session.range_query(query, THETA, collection="news")
            assert response.ok
            served += 1
    return served


@pytest.fixture(scope="module")
def served_database(nyt_setup):
    database = Database()
    database.create_static("news", nyt_setup.rankings, num_shards=2)
    with DatabaseServer(database, port=0) as server:
        # warm-up: planner exploration + cache fill happen untimed
        session = database.session()
        _serve_in_process(session, nyt_setup.queries)
        yield server, database
    database.close()


@pytest.mark.benchmark(group="server-qps")
def test_in_process_baseline(benchmark, served_database, nyt_setup):
    """The same dispatch without the wire: the transport-free ceiling."""
    _, database = served_database
    session = database.session()
    start = time.perf_counter()
    served = run_once(benchmark, _serve_in_process, session, nyt_setup.queries)
    elapsed = time.perf_counter() - start
    benchmark.extra_info["clients"] = 0
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


@pytest.mark.benchmark(group="server-qps")
@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_server_qps(benchmark, served_database, nyt_setup, n_clients):
    """Wire-served QPS for one concurrent-client count."""
    server, _ = served_database
    start = time.perf_counter()
    served = run_once(benchmark, _serve_clients, server.address, nyt_setup.queries, n_clients)
    elapsed = time.perf_counter() - start
    benchmark.extra_info["clients"] = n_clients
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["qps"] = round(served / elapsed, 1) if elapsed > 0 else 0.0


def main() -> None:
    """Standalone report: QPS per client count vs the in-process baseline."""
    from repro.datasets.nyt import nyt_like_dataset
    from repro.datasets.queries import sample_queries

    rankings = nyt_like_dataset(n=800, k=10)
    queries = sample_queries(rankings, 30, seed=3)
    database = Database()
    database.create_static("news", rankings, num_shards=2)
    session = database.session()
    _serve_in_process(session, queries)  # warm-up
    print(f"server QPS on NYT-like n={len(rankings)}, k={rankings.k}, "
          f"{len(queries)} queries x {PASSES} passes, theta={THETA}")
    print(f"{'clients':>8s}  {'QPS':>9s}  note")
    start = time.perf_counter()
    served = _serve_in_process(session, queries)
    elapsed = time.perf_counter() - start
    baseline = served / elapsed if elapsed > 0 else float("inf")
    print(f"{'-':>8s}  {baseline:>9.1f}  in-process session (no wire)")
    with DatabaseServer(database, port=0) as server:
        for n_clients in CLIENT_COUNTS:
            start = time.perf_counter()
            served = _serve_clients(server.address, queries, n_clients)
            elapsed = time.perf_counter() - start
            qps = served / elapsed if elapsed > 0 else float("inf")
            print(f"{n_clients:>8d}  {qps:>9.1f}  {qps / baseline:.0%} of baseline")
    database.close()


if __name__ == "__main__":
    main()
