"""Tests for the SearchStats / SearchResult containers and timers."""

import pytest

from repro.core.ranking import Ranking
from repro.core.result import SearchMatch, SearchResult
from repro.core.stats import CountingDistance, PhaseTimer, SearchStats


class TestSearchStats:
    def test_defaults_are_zero(self):
        stats = SearchStats()
        assert stats.distance_calls == 0
        assert stats.postings_scanned == 0
        assert stats.total_seconds == 0.0

    def test_merge_accumulates_counters(self):
        first = SearchStats(distance_calls=2, candidates=5, filter_seconds=0.5)
        second = SearchStats(distance_calls=3, candidates=1, filter_seconds=0.25)
        first.merge(second)
        assert first.distance_calls == 5
        assert first.candidates == 6
        assert first.filter_seconds == pytest.approx(0.75)

    def test_merge_accumulates_extra(self):
        first = SearchStats(extra={"prefix_length": 2.0})
        second = SearchStats(extra={"prefix_length": 3.0, "other": 1.0})
        first.merge(second)
        assert first.extra == {"prefix_length": 5.0, "other": 1.0}

    def test_as_dict_contains_all_counters(self):
        stats = SearchStats(distance_calls=7, blocks_skipped=2, extra={"x": 1.0})
        payload = stats.as_dict()
        assert payload["distance_calls"] == 7
        assert payload["blocks_skipped"] == 2
        assert payload["x"] == 1.0

    def test_phase_timer_accumulates(self):
        stats = SearchStats()
        with PhaseTimer(stats, "filter_seconds"):
            pass
        first = stats.filter_seconds
        with PhaseTimer(stats, "filter_seconds"):
            pass
        assert stats.filter_seconds >= first >= 0.0

    def test_phase_timer_rejects_unknown_attribute(self):
        with pytest.raises(AttributeError):
            PhaseTimer(SearchStats(), "nonexistent_seconds")

    def test_counting_distance_wrapper(self):
        stats = SearchStats()
        counted = CountingDistance(lambda a, b: 42, stats)
        assert counted(None, None) == 42
        assert counted(None, None) == 42
        assert stats.distance_calls == 2


class TestSearchResult:
    def test_add_and_len(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.1)
        result.add(0, Ranking([1, 2]), 0.0)
        assert len(result) == 1

    def test_finalize_sorts_by_distance(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5)
        result.add(3, Ranking([5, 6]), 0.4)
        result.add(1, Ranking([1, 2]), 0.0)
        result.finalize()
        assert [match.rid for match in result] == [1, 3]

    def test_finalize_deduplicates_keeping_smallest_distance(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5)
        result.add(1, Ranking([1, 2]), 0.3)
        result.add(1, Ranking([1, 2]), 0.1)
        result.finalize()
        assert len(result) == 1
        assert result.matches[0].distance == pytest.approx(0.1)

    def test_finalize_updates_result_counter(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5)
        result.add(1, Ranking([1, 2]), 0.1)
        result.finalize()
        assert result.stats.results == 1

    def test_rids_and_distances(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5)
        result.add(4, Ranking([3, 4]), 0.2)
        result.finalize()
        assert result.rids == {4}
        assert result.distances() == {4: 0.2}

    def test_contains(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5)
        result.add(4, Ranking([3, 4]), 0.2)
        assert 4 in result
        assert 5 not in result

    def test_match_ordering(self):
        near = SearchMatch(distance=0.1, rid=7, ranking=Ranking([1, 2]))
        far = SearchMatch(distance=0.9, rid=2, ranking=Ranking([3, 4]))
        assert near < far

    def test_repr_mentions_algorithm(self):
        result = SearchResult(query=Ranking([1, 2]), theta=0.5, algorithm="F&V")
        assert "F&V" in repr(result)
