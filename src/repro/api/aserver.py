"""The asyncio wire transport: many connections, no thread per connection.

:class:`AsyncDatabaseServer` serves the same :class:`~repro.api.database.Database`
dispatch as the threaded :class:`~repro.api.server.DatabaseServer`, over the
same frames and both protocol versions — answers stay byte-identical to
in-process calls because the per-frame handling is shared
(:func:`~repro.api.protocol.classify_frame` plus the reply builders in
:mod:`repro.api.server`).  What changes is the concurrency model:

* **I/O** for every connection is multiplexed on one event loop — ten
  thousand idle connections cost ten thousand coroutines, not ten thousand
  threads;
* **dispatch** (``session.execute``, which is CPU-bound Python) runs on a
  small bounded worker pool via ``run_in_executor``, so one slow query
  never stalls the other connections' reads and writes.

Requests on one connection are processed in arrival order — pipelining
removes round-trip waits while keeping mutation streams deterministic (a
pipelined insert→delete pair lands in the order it was sent, which is what
makes pipelined execution byte-identical to sequential execution).  Many
*connections* make progress concurrently, bounded by the worker pool.

The server is async-native (``await server.start_async()`` inside a running
loop) and also embeds in synchronous programs: :meth:`start` boots a
daemon thread running a private event loop, mirroring the threaded
server's ``start``/``close``/context-manager surface so benchmarks, tests,
and the CLI can swap transports with one flag.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.api.database import Database, Session
from repro.api.protocol import (
    BINARY_FRAME_FLAG,
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_LENGTH_MASK,
    HEADER,
    FrameError,
    FrameTooLargeError,
    InboundFrame,
    classify_frame,
    decode_frame_body,
    encode_binary_frame,
    encode_frame,
    push_envelope,
)
from repro.api.requests import SubscribeRequest, UnsubscribeRequest, parse_request
from repro.api.responses import Response, ResponseError, canonical_json, error_response
from repro.api.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    SUBSCRIPTION_KINDS,
    ServerMetrics,
    envelope_error_payload,
    execute_frame,
    hello_reply_payload,
    is_shutdown_payload,
    oversized_reply_response,
    pre_hello_subscribe_response,
    response_envelope,
    subscription_target_error,
    unsubscribe_session,
)
from repro.codec import CodecError
from repro.codec.wire import decode_request as decode_binary_request
from repro.codec.wire import encode_push as encode_binary_push
from repro.codec.wire import encode_response as encode_binary_response
from repro.core.errors import InvalidRequestError

#: How long a push write may sit in the event loop before the sender gives
#: up and drops the subscription (the connection is considered gone).
PUSH_WRITE_TIMEOUT_SECONDS = 30.0

#: Default size of the dispatch worker pool (CPU-bound Python holds the GIL,
#: so a handful of workers saturates; more just buys queueing fairness).
DEFAULT_DISPATCH_WORKERS = 8


async def read_frame_any_async(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    byte_counter=None,
) -> Optional[tuple[str, object]]:
    """Async twin of :func:`repro.api.protocol.read_frame_any` (same contract).

    ``byte_counter`` (a metrics counter) receives the exact wire size of
    each complete frame read, header included.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise FrameError(
            f"connection closed mid-frame ({len(error.partial)} of {HEADER.size} bytes read)"
        ) from None
    (announced,) = HEADER.unpack(header)
    binary = bool(announced & BINARY_FRAME_FLAG)
    length = announced & FRAME_LENGTH_MASK
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"connection closed mid-frame ({len(error.partial)} of {length} bytes read)"
        ) from None
    if byte_counter is not None:
        byte_counter.inc(HEADER.size + length)
    if binary:
        return "binary", body
    return "json", decode_frame_body(body)


async def read_frame_async(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    byte_counter=None,
) -> Optional[dict]:
    """Async twin of :func:`repro.api.protocol.read_frame` (JSON frames only)."""
    result = await read_frame_any_async(reader, max_frame_bytes, byte_counter)
    if result is None:
        return None
    shape, payload = result
    if shape != "json":
        raise FrameError("unexpected binary frame on a JSON-only connection")
    return payload


class AsyncDatabaseServer:
    """Serve one :class:`Database` on an asyncio event loop.

    Parameters
    ----------
    database:
        The database shared by every connection (caller owns its lifecycle).
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port.
    max_frame_bytes:
        Upper bound on one request/response payload.
    dispatch_workers:
        Size of the worker pool ``session.execute`` runs on.

    Examples
    --------
    Synchronous embedding (mirrors :class:`DatabaseServer`)::

        with AsyncDatabaseServer(database, port=0) as server:
            host, port = server.address
            ...  # clients connect here

    Async-native::

        server = AsyncDatabaseServer(database, port=0)
        await server.start_async()
        await server.wait_stopped()
    """

    def __init__(
        self,
        database: Database,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        if dispatch_workers <= 0:
            raise ValueError(f"dispatch_workers must be positive, got {dispatch_workers}")
        self._database = database
        self._host = host
        self._port = port
        self.max_frame_bytes = max_frame_bytes
        self._pool = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="repro-aserver"
        )
        self._metrics = ServerMetrics("asyncio")
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._address: Optional[tuple[str, int]] = None
        # sync-bridge state
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._boot_error: Optional[BaseException] = None

    @property
    def database(self) -> Database:
        """The served database."""
        return self._database

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once the server is listening."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    # -- async-native lifecycle ----------------------------------------------------

    async def start_async(self) -> tuple[str, int]:
        """Start listening inside the running event loop; returns the address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` (or an admin/shutdown request)."""
        assert self._stop_event is not None, "server is not started"
        await self._stop_event.wait()

    def stop(self) -> None:
        """Signal the serve loop to stop (thread-safe, idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # the loop already exited (e.g. an admin/shutdown stopped it)

    async def aclose(self) -> None:
        """Stop listening and release the socket (connections finish closing)."""
        self.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    # -- one connection ------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self._database.session()
        limit = self.max_frame_bytes
        metrics = self._metrics
        metrics.connections.inc()
        loop = asyncio.get_running_loop()
        greeted = False
        try:
            while self._stop_event is not None and not self._stop_event.is_set():
                try:
                    framed = await read_frame_any_async(reader, limit, metrics.bytes_in)
                except FrameError as error:
                    if isinstance(error, FrameTooLargeError):
                        metrics.oversized.inc()
                    response = Response(
                        ok=False, error=ResponseError(code="protocol", message=str(error))
                    )
                    await self._write(writer, response.to_dict(), limit)
                    return
                if framed is None:
                    return
                metrics.frames_in.inc()
                shape, payload = framed
                if shape == "binary":
                    if not await self._serve_binary(session, payload, writer, loop):
                        return
                    continue
                frame = classify_frame(payload)
                if frame.version == 2 and frame.error is not None:
                    await self._write(writer, envelope_error_payload(frame), limit)
                    continue
                if frame.is_hello:
                    await self._write(writer, hello_reply_payload(frame, limit), limit)
                    greeted = True
                    continue
                if frame.version == 2 and frame.kind in SUBSCRIPTION_KINDS:
                    await self._serve_subscription(session, frame, writer, loop, greeted)
                    continue
                assert frame.payload is not None
                # CPU-bound dispatch happens off-loop so other connections'
                # I/O keeps flowing; per-connection order is preserved by
                # awaiting before reading the next frame.  execute_frame
                # installs the request's trace inside the worker thread, so
                # tracing needs no contextvar propagation across the hop.
                response = await loop.run_in_executor(
                    self._pool, execute_frame, session, frame
                )
                reply = response.to_dict()
                if frame.version == 2:
                    reply = response_envelope(frame.request_id, reply)
                try:
                    encoded = encode_frame(reply, limit)
                except FrameError as error:
                    metrics.oversized.inc()
                    oversized = oversized_reply_response(error).to_dict()
                    if frame.version == 2:
                        await self._write(
                            writer, response_envelope(frame.request_id, oversized), limit
                        )
                        continue
                    await self._write(writer, oversized, limit)
                    return
                writer.write(encoded)
                await writer.drain()
                metrics.frames_out.inc()
                metrics.bytes_out.inc(len(encoded))
                if is_shutdown_payload(frame.payload) and response.ok:
                    self.stop()
                    return
        except (ConnectionError, OSError):
            pass  # client went away; nothing to clean beyond the finally
        finally:
            session.cancel_subscriptions()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_binary(self, session, body: bytes, writer, loop) -> bool:
        """Serve one RBF binary request frame (async twin of the threaded path).

        Replies binary when the response is representable and fits, falls
        back to a JSON v2 envelope otherwise, and closes the connection on
        an undecodable body after one final ``protocol`` envelope.
        """
        limit = self.max_frame_bytes
        metrics = self._metrics
        try:
            request_id, request_payload = decode_binary_request(body)
        except CodecError as error:
            response = Response(
                ok=False, error=ResponseError(code="protocol", message=str(error))
            )
            await self._write(writer, response.to_dict(), limit)
            return False
        frame = InboundFrame(
            version=2,
            request_id=request_id,
            kind=request_payload.get("type"),
            payload=request_payload,
        )
        response = await loop.run_in_executor(self._pool, execute_frame, session, frame)
        reply = response.to_dict()
        encoded = encode_binary_response(request_id, reply)
        if encoded is not None and len(encoded) <= limit:
            framed = encode_binary_frame(encoded, limit)
            writer.write(framed)
            await writer.drain()
            metrics.frames_out.inc()
            metrics.bytes_out.inc(len(framed))
            return True
        try:
            encoded_json = encode_frame(response_envelope(request_id, reply), limit)
        except FrameError as error:
            metrics.oversized.inc()
            oversized = oversized_reply_response(error).to_dict()
            await self._write(writer, response_envelope(request_id, oversized), limit)
            return True
        writer.write(encoded_json)
        await writer.drain()
        metrics.frames_out.inc()
        metrics.bytes_out.inc(len(encoded_json))
        return True

    # -- standing queries ----------------------------------------------------------

    async def _serve_subscription(
        self,
        session: Session,
        frame: InboundFrame,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
        greeted: bool,
    ) -> None:
        """Serve one ``subscribe``/``unsubscribe`` envelope.

        Registration blocks until the dispatcher primes the snapshot, so it
        runs on the worker pool like any dispatch; the reply (and every
        later push) is written back on the loop.
        """
        limit = self.max_frame_bytes
        if not greeted:
            reply = pre_hello_subscribe_response().to_dict()
            await self._write(writer, response_envelope(frame.request_id, reply), limit)
            return
        response = await loop.run_in_executor(
            self._pool, self._register_or_cancel, session, frame, writer, loop
        )
        await self._write(writer, response_envelope(frame.request_id, response.to_dict()), limit)

    def _register_or_cancel(
        self,
        session: Session,
        frame: InboundFrame,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
    ) -> Response:
        """Worker-pool half of :meth:`_serve_subscription` (sync, may block)."""
        assert frame.payload is not None
        try:
            request = parse_request(frame.payload)
            if isinstance(request, UnsubscribeRequest):
                return unsubscribe_session(session, request)
            assert isinstance(request, SubscribeRequest)
            return self._register_subscription(session, request, frame.request_id, writer, loop)
        except Exception as error:
            return error_response(error)

    def _register_subscription(
        self,
        session: Session,
        request: SubscribeRequest,
        subscription_id,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
    ) -> Response:
        if subscription_id in session.subscriptions:
            raise InvalidRequestError(
                f"subscription id {subscription_id!r} is already registered"
                " on this connection"
            )
        entry = self._database._lookup(request.collection)
        if entry.kind != "live":
            raise subscription_target_error(entry.kind, request.collection)
        binary = request.format == "binary"

        def deliver(sub_id, body: dict) -> None:
            # runs on the subscription's sender thread: hop onto the loop,
            # where writer.write() enqueues each frame's bytes atomically
            future = asyncio.run_coroutine_threadsafe(
                self._write_push(writer, sub_id, body, binary), loop
            )
            future.result(timeout=PUSH_WRITE_TIMEOUT_SECONDS)

        response, sub = self._database.subscriptions.subscribe(
            entry.engine, request, subscription_id, deliver, "asyncio"
        )
        session.subscriptions[sub.id] = sub
        return response

    async def _write_push(
        self, writer: asyncio.StreamWriter, sub_id, body: dict, binary: bool
    ) -> None:
        limit = self.max_frame_bytes
        data = None
        if binary:
            encoded = encode_binary_push(sub_id, body)
            if encoded is not None and len(encoded) <= limit:
                data = encode_binary_frame(encoded, limit)
        if data is None:
            data = encode_frame(push_envelope(sub_id, body), limit)
        writer.write(data)
        await writer.drain()
        self._metrics.frames_out.inc()
        self._metrics.bytes_out.inc(len(data))

    async def _write(self, writer: asyncio.StreamWriter, payload: dict, limit: int) -> None:
        body = canonical_json(payload)
        if len(body) > limit:
            return  # nothing sensible to send; the caller closes
        writer.write(HEADER.pack(len(body)) + body)
        await writer.drain()
        self._metrics.frames_out.inc()
        self._metrics.bytes_out.inc(HEADER.size + len(body))

    # -- sync bridge (runs a private event loop on a daemon thread) -----------------

    def start(self) -> tuple[str, int]:
        """Serve on a background thread with its own loop; returns the address."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_bridge, name="repro-aserver", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._boot_error is not None:
            error, self._boot_error = self._boot_error, None
            self._thread = None  # the bridge thread is already dead
            if isinstance(error, OSError):
                raise error  # e.g. address in use — callers handle OSError
            raise RuntimeError("async server failed to start") from error
        return self.address

    def _run_bridge(self) -> None:
        try:
            asyncio.run(self._bridge_main())
        except BaseException as error:  # repro: noqa[no-bare-except] start() re-raises _boot_error
            self._boot_error = error
            self._started.set()

    async def _bridge_main(self) -> None:
        await self.start_async()
        self._started.set()
        try:
            await self.wait_stopped()
        finally:
            await self.aclose()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the background thread exits (e.g. after admin/shutdown)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def close(self) -> None:
        """Stop the loop, join the background thread, release everything."""
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "AsyncDatabaseServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        where = f"{self._address[0]}:{self._address[1]}" if self._address else "unbound"
        return f"AsyncDatabaseServer({where}, collections={self._database.names()})"
