"""Adaptive per-query planner: cost-model priors + runtime EWMAs.

Choosing the right algorithm per query is the paper's Section-5 theme — its
cost model picks the coarse index's partitioning threshold offline.  The
service layer generalises that decision to *which algorithm at all*, per
query, using two signal sources:

1. **Model priors** (cold start).  Before any traffic is seen, candidates
   are ranked by analytical estimates in the cost model's abstract units:
   the coarse variants are priced by :class:`repro.core.cost_model.CostModel`
   (which also recommends their ``theta_C``), and the inverted-index and
   metric-tree families by the same building blocks the model is made of —
   expected postings under the fitted Zipf law and expected result counts
   under the empirical distance CDF.

2. **Runtime statistics** (steady state).  Every executed plan reports its
   observed latency and candidate count back via :meth:`observe`; the
   planner keeps an exponentially weighted moving average per
   ``(kind, algorithm, theta bucket)``.  Once every candidate has been tried
   in a bucket, planning switches from the prior to the measured EWMAs, so
   the planner converges on whatever is actually fastest on this machine and
   this workload — the priors only order the initial exploration.

Thresholds are bucketed to one decimal (the paper sweeps 0.1/0.2/0.3), so
statistics pool across queries with nearby radii.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cost_model import CostModel, CostModelInputs, generalized_harmonic, zipf_frequency
from repro.core.ranking import Ranking, RankingSet
from repro.analysis.stats import cost_model_inputs_for
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry

#: Algorithms priced by the paper's coarse-index cost model.
_COARSE_ALGORITHMS = frozenset({"Coarse", "Coarse+Drop"})

#: Metric-tree algorithms (no inverted-index filtering phase).
_METRIC_ALGORITHMS = frozenset({"BK-tree", "M-tree", "VP-tree"})

#: Per-family discount on the validation work relative to plain F&V, a
#: coarse stand-in for each optimisation's pruning power.  Only the relative
#: order matters: the priors merely sequence the cold-start exploration.
_VALIDATION_FACTOR = {
    "F&V": 1.0,
    "F&V+Drop": 0.75,
    "AdaptSearch": 0.6,
    "Blocked+Prune": 0.6,
    "Blocked+Prune+Drop": 0.45,
    "ListMerge": 0.0,
    "MinimalF&V": 0.05,
}


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict for one query.

    Attributes
    ----------
    algorithm:
        Registry name of the chosen algorithm.
    params:
        Extra build keyword arguments (``theta_c`` for the coarse variants).
    predicted_cost:
        The score the decision was based on — model units when
        ``source == "model"``, seconds when ``source == "observed"``.
    source:
        ``"model"`` while the bucket is still being explored, ``"observed"``
        once every candidate has latency statistics there.
    kind:
        Query kind the plan is for (``"range"`` or ``"knn"``).
    theta_bucket:
        The bucket whose statistics backed the decision.
    """

    algorithm: str
    params: dict = field(default_factory=dict)
    predicted_cost: float = 0.0
    source: str = "model"
    kind: str = "range"
    theta_bucket: float = 0.0


@dataclass
class _Ewma:
    """Latency/candidate moving averages for one (kind, algorithm, bucket)."""

    count: int = 0
    latency_seconds: float = 0.0
    candidates: float = 0.0

    def update(self, latency_seconds: float, candidates: float, alpha: float) -> None:
        if self.count == 0:
            self.latency_seconds = latency_seconds
            self.candidates = candidates
        else:
            self.latency_seconds += alpha * (latency_seconds - self.latency_seconds)
            self.candidates += alpha * (candidates - self.candidates)
        self.count += 1


class AdaptivePlanner:
    """Pick the algorithm (and parameters) for each query.

    Parameters
    ----------
    rankings:
        The served collection; its size, Zipf skew, and empirical distance
        distribution feed the model priors.
    candidates:
        Algorithm names the planner may choose from (defaults to the
        registry's :data:`~repro.algorithms.registry.SERVICE_ALGORITHMS`).
    smoothing:
        EWMA weight ``alpha`` of the newest observation, in ``(0, 1]``.
    sample_pairs:
        Pairwise distance samples drawn when fitting the empirical CDF
        (kept small: the planner needs the CDF's shape, not its tails).
    model_inputs:
        Pre-assembled :class:`CostModelInputs`, to skip the sampling pass
        (tests, or an engine that already calibrated a model).
    """

    def __init__(
        self,
        rankings: RankingSet,
        candidates: Optional[list[str]] = None,
        smoothing: float = 0.3,
        sample_pairs: int = 2000,
        model_inputs: Optional[CostModelInputs] = None,
    ) -> None:
        from repro.algorithms.registry import SERVICE_ALGORITHMS

        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        self._rankings = rankings
        self._candidates = list(candidates) if candidates is not None else list(SERVICE_ALGORITHMS)
        if not self._candidates:
            raise ValueError("planner needs at least one candidate algorithm")
        self._smoothing = smoothing
        self._sample_pairs = sample_pairs
        self._inputs = model_inputs
        self._model: Optional[CostModel] = None
        self._zipf_hit_mass: Optional[float] = None
        self._theta_c_cache: dict[float, float] = {}
        self._ewmas: dict[tuple[str, str, float], _Ewma] = {}
        self._lock = threading.Lock()
        self._registry = get_registry()
        self._m_decisions: dict[tuple[str, str], object] = {}

    @property
    def candidates(self) -> list[str]:
        """The algorithm names the planner chooses between."""
        return list(self._candidates)

    # -- model priors ----------------------------------------------------------------

    @property
    def model_inputs(self) -> CostModelInputs:
        """Dataset statistics backing the priors (assembled on first use)."""
        if self._inputs is None:
            self._inputs = cost_model_inputs_for(self._rankings, sample_pairs=self._sample_pairs)
        return self._inputs

    def _cost_model(self) -> CostModel:
        if self._model is None:
            self._model = CostModel(self.model_inputs)
        return self._model

    def _hit_mass(self) -> float:
        """``sum_i f(i)^2``: probability a random query item hits a random posting."""
        if self._zipf_hit_mass is None:
            inputs = self.model_inputs
            harmonic = generalized_harmonic(inputs.v, inputs.zipf_s)
            self._zipf_hit_mass = sum(
                zipf_frequency(i, inputs.zipf_s, inputs.v, harmonic) ** 2
                for i in range(1, inputs.v + 1)
            )
        return self._zipf_hit_mass

    def recommended_theta_c(self, theta: float) -> float:
        """The cost model's sweet-spot ``theta_C`` for this threshold bucket."""
        bucket = self.bucket(theta)
        cached = self._theta_c_cache.get(bucket)
        if cached is None:
            cached = self._cost_model().recommend_theta_c(min(bucket, 0.9)).theta_c
            self._theta_c_cache[bucket] = cached
        return cached

    def prior_cost(self, algorithm: str, theta: float) -> float:
        """Analytical cost estimate (model units) for one candidate.

        Coarse variants use the paper's cost model verbatim.  Inverted-index
        variants are priced as merge(postings) + validation, with the
        expected postings derived from the fitted Zipf law (the same
        Equation-5 idiom the cost model uses for medoid lists).  Metric
        trees pay one distance call per visited node, estimated as the
        expected result count plus a traversal overhead.
        """
        inputs = self.model_inputs
        if algorithm in _COARSE_ALGORITHMS:
            model = self._cost_model()
            theta_c = self.recommended_theta_c(theta)
            return model.estimate(min(theta, 0.9), theta_c).total
        expected_results = inputs.distance_cdf(theta) * inputs.n
        if algorithm in _METRIC_ALGORITHMS:
            # visited nodes shrink with theta but never below a root-to-leaf core
            traversal = inputs.n * max(inputs.distance_cdf(theta + 0.2), 0.05)
            return (expected_results + traversal) * inputs.cost_footrule
        postings = inputs.k * (inputs.n * inputs.k) * self._hit_mass()
        factor = _VALIDATION_FACTOR.get(algorithm, 1.0)
        return inputs.cost_merge(inputs.k, postings) + factor * postings * inputs.cost_footrule

    def params_for(self, algorithm: str, theta: float) -> dict:
        """Build parameters the plan should carry (``theta_c`` for coarse)."""
        if algorithm in _COARSE_ALGORITHMS:
            return {"theta_c": self.recommended_theta_c(theta)}
        return {}

    # -- runtime statistics -------------------------------------------------------------

    @staticmethod
    def bucket(theta: float) -> float:
        """Statistics bucket of a threshold (one decimal)."""
        return round(theta, 1)

    def observe(
        self,
        decision: PlanDecision,
        latency_seconds: float,
        candidates: float = 0.0,
    ) -> None:
        """Feed one executed plan's measurements back into the EWMAs."""
        key = (decision.kind, decision.algorithm, decision.theta_bucket)
        with self._lock:
            ewma = self._ewmas.get(key)
            if ewma is None:
                ewma = self._ewmas[key] = _Ewma()
            ewma.update(latency_seconds, candidates, self._smoothing)

    def snapshot(self) -> dict[tuple[str, str, float], dict[str, float]]:
        """Copy of the per-(kind, algorithm, bucket) statistics, for reports."""
        with self._lock:
            return {
                key: {
                    "count": float(ewma.count),
                    "latency_seconds": ewma.latency_seconds,
                    "candidates": ewma.candidates,
                }
                for key, ewma in self._ewmas.items()
            }

    # -- planning ------------------------------------------------------------------------

    def plan(self, query: Ranking, theta: float, kind: str = "range") -> PlanDecision:
        """Choose the algorithm for one query.

        While any candidate lacks observations in this bucket, the cheapest
        *unobserved* candidate (by model prior) runs next, so all candidates
        get measured in prior order; afterwards the lowest latency EWMA wins.
        """
        bucket = self.bucket(theta)
        with self._lock:
            unobserved = [
                name
                for name in self._candidates
                if (kind, name, bucket) not in self._ewmas
            ]
            if not unobserved:
                best_name = min(
                    self._candidates,
                    key=lambda name: self._ewmas[(kind, name, bucket)].latency_seconds,
                )
                predicted = self._ewmas[(kind, best_name, bucket)].latency_seconds
                source = "observed"
        if unobserved:
            best_name = min(unobserved, key=lambda name: self.prior_cost(name, theta))
            predicted = self.prior_cost(best_name, theta)
            source = "model"
        self._count_decision(source, best_name)
        return PlanDecision(
            algorithm=best_name,
            params=self.params_for(best_name, theta),
            predicted_cost=predicted,
            source=source,
            kind=kind,
            theta_bucket=bucket,
        )

    def _count_decision(self, source: str, algorithm: str) -> None:
        key = (source, algorithm)
        counter = self._m_decisions.get(key)
        if counter is None:
            counter = self._m_decisions[key] = self._registry.counter(
                metric_names.PLANNER_DECISIONS_TOTAL,
                "Computed plans by signal source (model prior vs observed EWMA).",
                source=source,
                algorithm=algorithm,
            )
        counter.inc()

    def __repr__(self) -> str:
        return (
            f"AdaptivePlanner(candidates={self._candidates!r}, "
            f"observed_buckets={len(self._ewmas)})"
        )
