"""Posting and posting-list primitives shared by the inverted-index flavours."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Posting:
    """One entry of an augmented index list: a ranking id and the item's rank.

    Ordering is by ranking id first so posting lists are naturally usable by
    id-sorted merge algorithms; rank-sorted orderings are produced explicitly
    where needed (blocked index).
    """

    rid: int
    rank: int


class PostingList:
    """A sequence of postings for one item, kept sorted by ranking id.

    The list supports the two access patterns needed by the paper's
    algorithms: sequential scans (filter phase, merge join) and binary
    estimation of its length for list-dropping decisions.
    """

    __slots__ = ("_postings", "_sorted_by_rid")

    def __init__(self, postings: Iterable[Posting] | None = None) -> None:
        self._postings: list[Posting] = list(postings) if postings is not None else []
        self._sorted_by_rid = False
        if self._postings:
            self._ensure_sorted()

    def _ensure_sorted(self) -> None:
        if not self._sorted_by_rid:
            self._postings.sort(key=lambda posting: posting.rid)
            self._sorted_by_rid = True

    def append(self, rid: int, rank: int) -> None:
        """Add one posting.  Postings are re-sorted lazily on first read."""
        self._postings.append(Posting(rid=rid, rank=rank))
        self._sorted_by_rid = False

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        self._ensure_sorted()
        return iter(self._postings)

    def __getitem__(self, index: int) -> Posting:
        self._ensure_sorted()
        return self._postings[index]

    def rids(self) -> list[int]:
        """All ranking ids in the list, in increasing order."""
        self._ensure_sorted()
        return [posting.rid for posting in self._postings]

    def sorted_by_rank(self) -> list[Posting]:
        """The postings ordered by rank (stable on ranking id)."""
        self._ensure_sorted()
        return sorted(self._postings, key=lambda posting: (posting.rank, posting.rid))

    def __repr__(self) -> str:
        return f"PostingList(len={len(self._postings)})"
