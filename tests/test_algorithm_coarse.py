"""Behavioural tests for the Coarse and Coarse+Drop query algorithms."""

import pytest

from repro.core.coarse_index import CoarseIndex
from repro.algorithms.coarse import CoarseDropSearch, CoarseSearch
from repro.algorithms.filter_validate import FilterValidate


class TestCoarseSearch:
    def test_partitions_visited_recorded(self, nyt_small, nyt_queries):
        algorithm = CoarseSearch.build(nyt_small, theta_c=0.3)
        result = algorithm.search(nyt_queries[0], 0.2)
        assert result.stats.partitions_visited >= 0
        assert result.stats.partitions_visited <= algorithm.coarse_index.num_partitions()

    def test_medoid_index_smaller_than_full_index(self, nyt_small):
        algorithm = CoarseSearch.build(nyt_small, theta_c=0.3)
        full = FilterValidate.build(nyt_small)
        assert algorithm.medoid_index.num_postings() <= full.index.num_postings()

    def test_same_results_as_fv(self, nyt_small, nyt_queries):
        coarse = CoarseSearch.build(nyt_small, theta_c=0.3)
        fv = FilterValidate.build(nyt_small)
        for theta in (0.05, 0.2):
            for query in nyt_queries[:5]:
                assert coarse.search(query, theta).rids == fv.search(query, theta).rids

    def test_shared_prebuilt_coarse_index(self, nyt_small, nyt_queries):
        index = CoarseIndex.build(nyt_small, theta_c=0.3)
        first = CoarseSearch(nyt_small, coarse_index=index)
        second = CoarseSearch(nyt_small, coarse_index=index)
        assert first.coarse_index is second.coarse_index
        assert first.search(nyt_queries[0], 0.2).rids == second.search(nyt_queries[0], 0.2).rids

    def test_exhaustive_validation_ablation_matches(self, nyt_small, nyt_queries):
        index = CoarseIndex.build(nyt_small, theta_c=0.3)
        tree_based = CoarseSearch(nyt_small, coarse_index=index)
        exhaustive = CoarseSearch(nyt_small, coarse_index=index, exhaustive_validation=True)
        for query in nyt_queries[:5]:
            assert tree_based.search(query, 0.2).rids == exhaustive.search(query, 0.2).rids

    def test_fallback_when_relaxed_threshold_reaches_one(self, nyt_small, nyt_queries):
        """theta + theta_C >= 1 forces the exhaustive-partition fallback, still correct."""
        coarse = CoarseSearch.build(nyt_small, theta_c=0.8)
        fv = FilterValidate.build(nyt_small)
        query = nyt_queries[0]
        result = coarse.search(query, 0.3)
        assert result.rids == fv.search(query, 0.3).rids
        assert result.stats.extra.get("relaxed_threshold_fallback", 0.0) >= 1.0

    def test_duplicate_rankings_share_distance_computations(self, small_rankings, query_k4):
        """Exact duplicates live in one partition, so fewer distance calls than F&V."""
        coarse = CoarseSearch.build(small_rankings, theta_c=0.2)
        fv = FilterValidate.build(small_rankings)
        coarse_calls = coarse.search(query_k4, 0.2).stats.distance_calls
        fv_calls = fv.search(query_k4, 0.2).stats.distance_calls
        assert coarse_calls <= fv_calls + coarse.coarse_index.num_partitions()

    def test_theta_c_property(self, nyt_small):
        algorithm = CoarseSearch.build(nyt_small, theta_c=0.25)
        assert algorithm.theta_c == pytest.approx(0.25)


class TestCoarseDropSearch:
    def test_drops_medoid_lists(self, nyt_small, nyt_queries):
        algorithm = CoarseDropSearch.build(nyt_small, theta_c=0.06)
        result = algorithm.search(nyt_queries[0], 0.1)
        assert result.stats.lists_dropped > 0

    def test_same_results_as_fv(self, nyt_small, nyt_queries):
        coarse = CoarseDropSearch.build(nyt_small, theta_c=0.06)
        fv = FilterValidate.build(nyt_small)
        for theta in (0.05, 0.2, 0.3):
            for query in nyt_queries[:5]:
                assert coarse.search(query, theta).rids == fv.search(query, theta).rids

    def test_default_theta_c_is_small(self, nyt_small):
        algorithm = CoarseDropSearch.build(nyt_small)
        assert algorithm.theta_c == pytest.approx(0.06)

    def test_fewer_distance_calls_than_plain_fv_on_clustered_data(self, nyt_small, nyt_queries):
        """The headline DFC reduction of Figure 10 at small thresholds."""
        coarse = CoarseDropSearch.build(nyt_small, theta_c=0.06)
        fv = FilterValidate.build(nyt_small)
        theta = 0.1
        coarse_calls = sum(coarse.search(q, theta).stats.distance_calls for q in nyt_queries[:8])
        fv_calls = sum(fv.search(q, theta).stats.distance_calls for q in nyt_queries[:8])
        assert coarse_calls < fv_calls
