"""Live-update store under churn: throughput, durability cost, restart cost.

Three benchmark groups:

* ``live-updates`` — mutation throughput and mid-churn query latency per
  (memtable threshold, segment bound) configuration, in memory;
* ``live-durability`` — sustained update throughput per WAL durability mode
  (no-sync / per-record fsync / group-commit), the figure that motivates
  group-commit: one ``fsync`` per batch instead of per record;
* ``live-restart`` — ``LiveCollection.open()`` cost after heavy churn with
  the automatic snapshot policy on vs off, plus the number of WAL records
  the restart actually replayed;
* ``live-codec`` — the same restart-replay and checkpoint-size figures per
  storage format (``json`` vs ``binary``): the RBF WAL replays without a
  per-line JSON parse and the zlib-compressed binary runs shrink the
  checkpoint, the two storage-side wins ``BENCH_codec.json`` records.

Run under pytest-benchmark as part of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_live_updates.py
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time

import pytest

from repro.core.ranking import Ranking
from repro.live import LiveCollection

from _utils import run_once

#: (memtable threshold, max segments) configurations swept by the benchmark.
THRESHOLDS = ((32, 2), (128, 4), (512, 8))

#: WAL durability modes compared by the group-commit benchmark.
DURABILITY_MODES = (
    ("no-sync", {}),
    ("fsync", {"sync": True}),
    ("group-commit", {"commit_batch": 64}),
)

#: Mutation mix: mostly inserts, a realistic sliver of deletes and upserts.
INSERT_WEIGHT, DELETE_WEIGHT = 0.8, 0.1

MUTATIONS = 1200
DURABILITY_MUTATIONS = 400
RESTART_MUTATIONS = 1200
SNAPSHOT_BOUND = 256
PROBE_EVERY = 100
K = 10
DOMAIN = 1000
THETA = 0.2
NEIGHBOURS = 10


def _mutation_stream(rng: random.Random, count: int):
    """Yield ``(op, key_index, items)`` triples; key_index picks a live key."""
    for _ in range(count):
        roll = rng.random()
        if roll < INSERT_WEIGHT:
            yield "insert", 0, rng.sample(range(DOMAIN), K)
        elif roll < INSERT_WEIGHT + DELETE_WEIGHT:
            yield "delete", rng.random(), None
        else:
            yield "upsert", rng.random(), rng.sample(range(DOMAIN), K)


def _churn(
    live: LiveCollection, seed: int, mutations: int, probe: bool = True
) -> dict[str, float]:
    """Apply the workload with interleaved probes; return the derived figures."""
    rng = random.Random(seed)
    probe_query = Ranking(rng.sample(range(DOMAIN), K))
    applied = 0
    latencies: list[float] = []
    mutation_seconds = 0.0
    for op, pick, items in _mutation_stream(rng, mutations):
        keys = None
        if op != "insert":
            keys = live.live_keys()
            if not keys:
                op, items = "insert", rng.sample(range(DOMAIN), K)
        start = time.perf_counter()
        if op == "insert":
            live.insert(items)
        elif op == "delete":
            live.delete(keys[int(pick * len(keys))])
        else:
            live.upsert(keys[int(pick * len(keys))], items)
        mutation_seconds += time.perf_counter() - start
        applied += 1
        if probe and applied % PROBE_EVERY == 0:
            start = time.perf_counter()
            live.range_query(probe_query, THETA)
            live.knn(probe_query, NEIGHBOURS)
            latencies.append(time.perf_counter() - start)
    figures = {
        "applied": applied,
        "mutation_seconds": mutation_seconds,
        "updates_per_second": applied / mutation_seconds if mutation_seconds else float("inf"),
    }
    if latencies:
        figures["query_mean_ms"] = 1000.0 * sum(latencies) / len(latencies)
        figures["query_max_ms"] = 1000.0 * max(latencies)
    return figures


@pytest.mark.benchmark(group="live-updates")
@pytest.mark.parametrize("memtable_threshold,max_segments", THRESHOLDS)
def test_live_update_churn(benchmark, memtable_threshold, max_segments):
    """Throughput/latency of one (memtable threshold, segment bound) config."""
    with LiveCollection(
        memtable_threshold=memtable_threshold, max_segments=max_segments
    ) as live:
        figures = run_once(benchmark, _churn, live, seed=17, mutations=MUTATIONS)
        stats = live.stats()
        benchmark.extra_info["memtable_threshold"] = memtable_threshold
        benchmark.extra_info["max_segments"] = max_segments
        benchmark.extra_info["updates_per_second"] = round(figures["updates_per_second"], 1)
        benchmark.extra_info["query_mean_ms"] = round(figures["query_mean_ms"], 2)
        benchmark.extra_info["query_max_ms"] = round(figures["query_max_ms"], 2)
        benchmark.extra_info["flushes"] = stats.flushes
        benchmark.extra_info["compactions"] = stats.compactions
        benchmark.extra_info["live_rankings"] = len(live)


@pytest.mark.benchmark(group="live-durability")
@pytest.mark.parametrize("mode,wal_kwargs", DURABILITY_MODES, ids=[m for m, _ in DURABILITY_MODES])
def test_live_durability_modes(benchmark, tmp_path, mode, wal_kwargs):
    """Sustained update throughput per WAL durability guarantee."""
    with LiveCollection.open(
        tmp_path, memtable_threshold=128, max_segments=4, **wal_kwargs
    ) as live:
        figures = run_once(
            benchmark, _churn, live, seed=23, mutations=DURABILITY_MUTATIONS, probe=False
        )
        benchmark.extra_info["durability"] = live.durability
        benchmark.extra_info["updates_per_second"] = round(figures["updates_per_second"], 1)
        benchmark.extra_info["wal_commits"] = live._wal.commits


@pytest.mark.benchmark(group="live-restart")
@pytest.mark.parametrize("snapshot_every", (None, SNAPSHOT_BOUND), ids=("policy-off", "policy-on"))
def test_live_restart_cost(benchmark, tmp_path, snapshot_every):
    """Cost of ``open()`` after churn, with and without the snapshot policy."""
    with LiveCollection.open(
        tmp_path, memtable_threshold=128, max_segments=4, snapshot_every=snapshot_every
    ) as live:
        _churn(live, seed=29, mutations=RESTART_MUTATIONS, probe=False)
        expected = len(live)
        snapshots = live.stats().snapshots

    def reopen():
        reopened = LiveCollection.open(
            tmp_path, memtable_threshold=128, max_segments=4, snapshot_every=snapshot_every
        )
        reopened.close()
        return reopened

    reopened = run_once(benchmark, reopen)
    assert len(reopened) == expected
    benchmark.extra_info["snapshot_every"] = snapshot_every or 0
    benchmark.extra_info["snapshots_taken"] = snapshots
    benchmark.extra_info["replayed_records"] = reopened.stats().replayed


def checkpoint_bytes(directory) -> int:
    """Total bytes of every persisted artifact under a collection directory."""
    return sum(path.stat().st_size for path in directory.rglob("*") if path.is_file())


def codec_restart_figures(directory, storage_format: str, mutations: int) -> dict:
    """Churn one collection in ``storage_format``; time its restart replay.

    The memtable threshold exceeds the mutation count and the snapshot
    policy is off, so every record stays in the WAL — the reopen time is
    dominated by record decode + replay, which is exactly the
    json-vs-binary axis under measurement.
    """
    live = LiveCollection.open(
        directory,
        format=storage_format,
        memtable_threshold=mutations * 2,
        snapshot_every=None,
    )
    _churn(live, seed=31, mutations=mutations, probe=False)
    expected = len(live)
    live.close()
    wal_bytes = checkpoint_bytes(directory)
    start = time.perf_counter()
    reopened = LiveCollection.open(
        directory, memtable_threshold=mutations * 2, snapshot_every=None
    )
    replay_seconds = time.perf_counter() - start
    assert len(reopened) == expected
    replayed = reopened.stats().replayed
    reopened.close()
    return {
        "format": storage_format,
        "replay_seconds": replay_seconds,
        "replayed_records": replayed,
        "wal_bytes": wal_bytes,
    }


def codec_checkpoint_figures(directory, storage_format: str, mutations: int) -> dict:
    """Churn with frequent flushes; report the persisted checkpoint size."""
    with LiveCollection.open(
        directory, format=storage_format, memtable_threshold=64, max_segments=4
    ) as live:
        _churn(live, seed=37, mutations=mutations, probe=False)
        live.snapshot()
    return {
        "format": storage_format,
        "checkpoint_bytes": checkpoint_bytes(directory),
    }


@pytest.mark.benchmark(group="live-codec")
@pytest.mark.parametrize("storage_format", ("json", "binary"))
def test_live_codec_restart(benchmark, tmp_path, storage_format):
    """Restart replay cost per storage format, everything left in the WAL."""
    live = LiveCollection.open(
        tmp_path,
        format=storage_format,
        memtable_threshold=RESTART_MUTATIONS * 2,
        snapshot_every=None,
    )
    _churn(live, seed=31, mutations=RESTART_MUTATIONS, probe=False)
    expected = len(live)
    live.close()

    def reopen():
        reopened = LiveCollection.open(
            tmp_path, memtable_threshold=RESTART_MUTATIONS * 2, snapshot_every=None
        )
        reopened.close()
        return reopened

    reopened = run_once(benchmark, reopen)
    assert len(reopened) == expected
    benchmark.extra_info["storage_format"] = storage_format
    benchmark.extra_info["replayed_records"] = reopened.stats().replayed
    benchmark.extra_info["wal_bytes"] = checkpoint_bytes(tmp_path)


@pytest.mark.benchmark(group="live-codec")
@pytest.mark.parametrize("storage_format", ("json", "binary"))
def test_live_codec_checkpoint_size(benchmark, tmp_path, storage_format):
    """Persisted checkpoint footprint per storage format."""
    figures = run_once(
        benchmark, codec_checkpoint_figures, tmp_path, storage_format, MUTATIONS
    )
    benchmark.extra_info["storage_format"] = storage_format
    benchmark.extra_info["checkpoint_bytes"] = figures["checkpoint_bytes"]


def main() -> None:
    """Standalone report: churn, durability-mode, and restart figures."""
    print(
        f"live-update churn: {MUTATIONS} mutations "
        f"({INSERT_WEIGHT:.0%} insert / {DELETE_WEIGHT:.0%} delete / "
        f"{1 - INSERT_WEIGHT - DELETE_WEIGHT:.0%} upsert), "
        f"probe every {PROBE_EVERY} (range theta={THETA} + {NEIGHBOURS}-NN)"
    )
    print(
        f"{'memtable':>8s}  {'segments':>8s}  {'wal':>5s}  {'updates/s':>10s}  "
        f"{'query mean':>10s}  {'query max':>9s}  {'flushes':>7s}  {'compactions':>11s}"
    )
    for memtable_threshold, max_segments in THRESHOLDS:
        for durable in (False, True):
            if durable:
                directory = tempfile.mkdtemp(prefix="repro-live-bench-")
                live = LiveCollection.open(
                    directory,
                    memtable_threshold=memtable_threshold,
                    max_segments=max_segments,
                )
            else:
                directory = None
                live = LiveCollection(
                    memtable_threshold=memtable_threshold, max_segments=max_segments
                )
            with live:
                figures = _churn(live, seed=17, mutations=MUTATIONS)
                stats = live.stats()
                print(
                    f"{memtable_threshold:>8d}  {max_segments:>8d}  "
                    f"{'on' if durable else 'off':>5s}  "
                    f"{figures['updates_per_second']:>10.0f}  "
                    f"{figures['query_mean_ms']:>8.2f}ms  {figures['query_max_ms']:>7.2f}ms  "
                    f"{stats.flushes:>7d}  {stats.compactions:>11d}"
                )
            if directory is not None:
                shutil.rmtree(directory, ignore_errors=True)

    print(
        f"\ndurability modes: {DURABILITY_MUTATIONS} mutations, "
        f"memtable 128, group-commit batch 64"
    )
    print(f"{'mode':>14s}  {'updates/s':>10s}  {'fsyncs':>7s}")
    for mode, wal_kwargs in DURABILITY_MODES:
        directory = tempfile.mkdtemp(prefix="repro-live-bench-")
        with LiveCollection.open(
            directory, memtable_threshold=128, max_segments=4, **wal_kwargs
        ) as live:
            figures = _churn(live, seed=23, mutations=DURABILITY_MUTATIONS, probe=False)
            commits = live._wal.commits
            print(f"{mode:>14s}  {figures['updates_per_second']:>10.0f}  {commits:>7d}")
        shutil.rmtree(directory, ignore_errors=True)

    print(
        f"\nrestart cost after {RESTART_MUTATIONS} mutations "
        f"(snapshot policy: every {SNAPSHOT_BOUND} WAL records)"
    )
    print(f"{'policy':>10s}  {'open time':>9s}  {'replayed':>8s}  {'snapshots':>9s}")
    for label, snapshot_every in (("off", None), ("on", SNAPSHOT_BOUND)):
        directory = tempfile.mkdtemp(prefix="repro-live-bench-")
        with LiveCollection.open(
            directory, memtable_threshold=128, max_segments=4, snapshot_every=snapshot_every
        ) as live:
            _churn(live, seed=29, mutations=RESTART_MUTATIONS, probe=False)
            snapshots = live.stats().snapshots
        start = time.perf_counter()
        reopened = LiveCollection.open(
            directory, memtable_threshold=128, max_segments=4, snapshot_every=snapshot_every
        )
        elapsed = time.perf_counter() - start
        replayed = reopened.stats().replayed
        reopened.close()
        print(f"{label:>10s}  {elapsed * 1000.0:>7.1f}ms  {replayed:>8d}  {snapshots:>9d}")
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
