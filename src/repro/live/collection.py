"""The live-update store: an LSM-style mutable ranking collection.

Every algorithm in the library serves a frozen :class:`RankingSet`; the only
way to change the collection used to be a full rebuild.  ``LiveCollection``
opens the write path with the classic log-structured design:

* every accepted mutation is first made durable in the
  :class:`~repro.live.wal.WriteAheadLog` (when one is attached),
* recent inserts and upserts live in a :class:`~repro.live.memtable.MemTable`
  answered by exact brute-force scan,
* a full memtable is sealed into an immutable
  :class:`~repro.live.segment.Segment` indexed by any registry algorithm,
* deletes and upserts of sealed rankings tombstone the superseded *location*
  (:class:`~repro.live.tombstones.TombstoneSet`) instead of touching the
  immutable layers, and
* the :class:`~repro.live.compactor.Compactor` merges base + segments minus
  tombstones into a fresh :class:`~repro.service.sharding.ShardedIndex`
  epoch, optionally on a background thread.

**Exactness invariant.**  Rankings are addressed by a stable integer *key*
(assigned at insert, preserved by upsert).  For any interleaving of
mutations, flushes, and compactions, ``range_query`` and ``knn`` return
exactly the answer a from-scratch index over the logical collection (the
live rankings in ascending key order) would return: same rankings, same
distances, and ``(distance, key)`` tie order — keys ascend with insertion
order, so the tie order matches a fresh ``RankingSet``'s ``(distance, id)``
order.  The property tests in ``tests/test_live_equivalence.py`` assert this
across algorithms and churn patterns.

**Persistence.**  A durable collection (one opened with :meth:`open`) keeps
a :class:`~repro.live.manifest.Manifest` next to the WAL.  Every checkpoint
— a memtable flush, a compaction swap, or an explicit :meth:`snapshot` —
spills the affected immutable run to disk and rewrites the manifest, so a
restart loads the sealed layers directly and replays only the WAL records
*after* the manifest's ``covered_seq``: the tail since the last seal, not
the collection's lifetime.  An automatic snapshot policy
(``snapshot_every``) additionally truncates the covered WAL prefix once the
log grows past a bound, keeping both log size and restart cost bounded
without user intervention.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.errors import (
    InvalidRequestError,
    InvalidThresholdError,
    RankingSizeMismatchError,
    UnknownKeyError,
)
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import SearchStats
from repro.algorithms.knn import KnnResult, Neighbour
from repro.live.compactor import Compactor
from repro.live.manifest import (
    MANIFEST_BINARY_FILENAME,
    MANIFEST_FILENAME,
    SEGMENTS_DIRNAME,
    Manifest,
    ManifestLog,
    base_filename,
    read_run,
    segment_filename,
    write_run,
)
from repro.live.memtable import MemTable, scan_entries, top_entries
from repro.live.segment import Segment
from repro.live.tombstones import TombstoneSet
from repro.live.wal import WalRecord, WriteAheadLog
from repro.devtools.locktrace import make_lock
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace_span
from repro.service.sharding import ShardedIndex

#: File names used inside a persistence directory.
WAL_FILENAME = "wal.jsonl"
#: Binary-format (RBF) write-ahead log filename.
WAL_BINARY_FILENAME = "wal.rbf"
#: Legacy (pre-manifest) whole-state snapshot file, still readable.
SNAPSHOT_FILENAME = "snapshot.json"

#: The storage formats a durable collection can run under.
STORAGE_FORMATS = ("json", "binary")

#: Default algorithm used when a query does not name one.
DEFAULT_LIVE_ALGORITHM = "F&V"

#: Default WAL length (in records) that triggers an automatic snapshot.
DEFAULT_SNAPSHOT_EVERY = 1024

#: A storage location: ("mem", 0, key), ("seg", id, local rid), ("base", epoch, rid).
Location = tuple[str, int, int]


@dataclass
class LiveStats:
    """Mutation and maintenance counters over the collection's lifetime.

    ``durability`` names the write-path guarantee the collection runs
    under: ``in-memory`` (no WAL), ``no-sync`` (WAL without fsync),
    ``fsync`` (per-record barrier), or ``group-commit`` (batched barrier).
    """

    inserts: int = 0
    deletes: int = 0
    upserts: int = 0
    flushes: int = 0
    compactions: int = 0
    replayed: int = 0
    snapshots: int = 0
    durability: str = "in-memory"
    storage_format: str = "json"

    @property
    def mutations(self) -> int:
        """All accepted mutations (inserts + deletes + upserts)."""
        return self.inserts + self.deletes + self.upserts

    def as_dict(self) -> dict:
        """Normalised dictionary view for logs and admin requests.

        Mirrors :meth:`repro.service.recording.EngineStats.as_dict` —
        snake_case keys grouped one level deep by category, integer
        counters — so a metrics exporter maps static and live stats with
        the same code.  The pre-normalisation flat shape survives as
        :meth:`as_flat_dict`.
        """
        return {
            "mutations": {
                "total": self.mutations,
                "inserts": self.inserts,
                "deletes": self.deletes,
                "upserts": self.upserts,
            },
            "maintenance": {
                "flushes": self.flushes,
                "compactions": self.compactions,
                "snapshots": self.snapshots,
                "replayed": self.replayed,
            },
            "durability": {"mode": self.durability, "format": self.storage_format},
        }

    def as_flat_dict(self) -> dict:
        """Compatibility shim: the flat pre-PR-6 key layout."""
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "upserts": self.upserts,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "replayed": self.replayed,
            "snapshots": self.snapshots,
            "durability": self.durability,
        }


class LiveCollection:
    """Mutable ranking collection with exact merged queries and durability.

    Parameters
    ----------
    initial:
        Optional pre-existing collection; it becomes the base index directly
        (keys ``0..n-1``) and is treated as already durable — the WAL only
        records subsequent mutations.
    memtable_threshold:
        Memtable size at which it is sealed into a segment.
    max_segments:
        Sealed-segment count above which a compaction is triggered.
    num_shards:
        Shard count of the compacted base index.
    wal:
        Optional write-ahead log; without one the collection is in-memory
        only (still fully queryable, just not durable).
    background_compaction:
        Run triggered compactions on a daemon thread instead of inline.
    directory:
        Persistence directory.  When set, sealed segments and compacted
        bases are spilled to immutable run files and a manifest tracks
        them, so restarts replay only the WAL tail.
    snapshot_every:
        Automatic snapshot policy: once this many WAL records accumulate
        since the last truncation, a snapshot is taken and the covered
        prefix dropped.  ``None`` disables the policy (snapshots stay
        manual).  Only meaningful with both a WAL and a directory.

    Examples
    --------
    >>> live = LiveCollection()
    >>> key = live.insert([1, 2, 3])
    >>> live.insert([7, 8, 9])
    1
    >>> result = live.range_query(Ranking([1, 2, 3]), theta=0.1)
    >>> [match.rid for match in result.matches]
    [0]
    >>> live.delete(key)
    >>> len(live)
    1
    """

    def __init__(
        self,
        initial: Optional[RankingSet] = None,
        *,
        memtable_threshold: int = 256,
        max_segments: int = 4,
        num_shards: int = 1,
        wal: Optional[WriteAheadLog] = None,
        background_compaction: bool = False,
        directory: Optional[Union[str, Path]] = None,
        snapshot_every: Optional[int] = DEFAULT_SNAPSHOT_EVERY,
        format: str = "json",
    ) -> None:
        if memtable_threshold <= 0:
            raise ValueError(f"memtable_threshold must be positive, got {memtable_threshold}")
        if max_segments <= 0:
            raise ValueError(f"max_segments must be positive, got {max_segments}")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError(f"snapshot_every must be positive or None, got {snapshot_every}")
        if format not in STORAGE_FORMATS:
            raise ValueError(f"format must be one of {STORAGE_FORMATS}, got {format!r}")
        self._memtable_threshold = memtable_threshold
        self._max_segments = max_segments
        self._num_shards = num_shards
        self._wal = wal
        self._directory = Path(directory) if directory is not None else None
        self._snapshot_every = snapshot_every
        self._format = format
        self._manifest_log: Optional[ManifestLog] = None
        if self._directory is not None and format == "binary":
            self._manifest_log = ManifestLog(self._directory / MANIFEST_BINARY_FILENAME)

        # Reentrant because flush/checkpoint helpers re-enter while held;
        # REPRO_LOCKTRACE=1 swaps in a TracedLock (see repro.devtools).
        self._lock = make_lock("LiveCollection._lock", reentrant=True)
        self._k: Optional[int] = None  # guarded-by: _lock
        self._next_key = 0  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._version = 0  # guarded-by: _lock
        self._memtable = MemTable()  # guarded-by: _lock
        self._segments: dict[int, Segment] = {}  # guarded-by: _lock
        self._segment_files: dict[int, str] = {}  # guarded-by: _lock
        self._next_segment_id = 0  # guarded-by: _lock
        self._base: Optional[ShardedIndex] = None  # guarded-by: _lock
        self._base_keys: tuple[int, ...] = ()  # guarded-by: _lock
        self._base_epoch = 0  # guarded-by: _lock
        self._base_file: Optional[str] = None  # guarded-by: _lock
        self._current: dict[int, Location] = {}  # guarded-by: _lock
        self._tombstones = TombstoneSet()  # guarded-by: _lock
        self._covered_seq = 0  # guarded-by: _lock
        self._wal_records = 0  # guarded-by: _lock
        self._replaying = False  # set only on the single-threaded open() path
        #: Cluster seam: when set, called (under the collection lock) with
        #: every accepted :class:`WalRecord` — local mutations and replicated
        #: applies alike.  The coordinator in :mod:`repro.cluster` hangs WAL
        #: shipping off this hook; it must not raise or block.
        self.wal_hook: Optional[Callable[[WalRecord], None]] = None
        self._stats = LiveStats(  # guarded-by: _lock
            durability=wal.durability if wal is not None else "in-memory",
            storage_format=format,
        )
        registry = get_registry()
        self._m_mutations = {
            op: registry.counter(
                metric_names.LIVE_MUTATIONS_TOTAL, "Accepted live-store mutations.", op=op
            )
            for op in ("insert", "delete", "upsert")
        }
        self._m_flushes = registry.counter(
            metric_names.LIVE_FLUSHES_TOTAL, "Memtable seals into immutable segments."
        )
        self._m_snapshots = registry.counter(
            metric_names.LIVE_SNAPSHOTS_TOTAL, "Checkpoints (manual or policy-triggered)."
        )
        self._compactor = Compactor(self, background=background_compaction)

        if initial is not None and len(initial) > 0:
            self._k = initial.k
            self._base = ShardedIndex.build(initial, num_shards=num_shards)
            self._base_keys = tuple(range(len(initial)))
            self._next_key = len(initial)
            for rid in self._base_keys:
                self._current[rid] = ("base", 0, rid)

    # -- persistence lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        memtable_threshold: int = 256,
        max_segments: int = 4,
        num_shards: int = 1,
        background_compaction: bool = False,
        sync: bool = False,
        commit_batch: Optional[int] = None,
        commit_interval: Optional[float] = None,
        snapshot_every: Optional[int] = DEFAULT_SNAPSHOT_EVERY,
        format: Optional[str] = None,
    ) -> "LiveCollection":
        """Open (or create) a durable collection in ``directory``.

        Loads the manifest's sealed layers (base + segments + tombstones)
        if one exists — falling back to a legacy whole-state snapshot —
        then replays only the WAL records after the covered sequence
        number: the tail.  ``sync`` / ``commit_batch`` / ``commit_interval``
        pick the WAL durability mode (see
        :class:`~repro.live.wal.WriteAheadLog`).

        ``format`` selects the storage format (one of
        :data:`STORAGE_FORMATS`).  ``None`` autodetects: a directory with
        binary artifacts opens binary, anything else opens JSON.  Opening
        a directory written in the *other* format migrates it in place —
        the old WAL tail is replayed, a checkpoint is written in the new
        format, and the superseded WAL/manifest removed.  Existing run
        files are untouched (each is read by its own suffix), so the
        migration costs one checkpoint, not a data rewrite.
        """
        directory = Path(directory)
        resolved = format
        if resolved is None:
            binary_artifacts = (
                (directory / MANIFEST_BINARY_FILENAME).exists()
                or (directory / WAL_BINARY_FILENAME).exists()
            )
            resolved = "binary" if binary_artifacts else "json"
        if resolved not in STORAGE_FORMATS:
            raise ValueError(f"format must be one of {STORAGE_FORMATS}, got {resolved!r}")
        binary = resolved == "binary"
        wal = WriteAheadLog(
            directory / (WAL_BINARY_FILENAME if binary else WAL_FILENAME),
            sync=sync,
            commit_batch=commit_batch,
            commit_interval=commit_interval,
        )
        collection = cls(
            memtable_threshold=memtable_threshold,
            max_segments=max_segments,
            num_shards=num_shards,
            wal=wal,
            background_compaction=background_compaction,
            directory=directory,
            snapshot_every=snapshot_every,
            format=resolved,
        )
        own_manifest = directory / (MANIFEST_BINARY_FILENAME if binary else MANIFEST_FILENAME)
        other_manifest = directory / (MANIFEST_FILENAME if binary else MANIFEST_BINARY_FILENAME)
        other_wal_path = directory / (WAL_FILENAME if binary else WAL_BINARY_FILENAME)
        snapshot_path = directory / SNAPSHOT_FILENAME
        referenced: frozenset[str] = frozenset()
        if own_manifest.exists():
            manifest = collection._load_manifest_file(own_manifest)
            collection._load_manifest(manifest)
            referenced = manifest.referenced_files()
        elif other_manifest.exists():
            manifest = collection._load_manifest_file(other_manifest)
            collection._load_manifest(manifest)
            referenced = manifest.referenced_files()
        elif snapshot_path.exists():
            collection._load_legacy_snapshot(snapshot_path)
        collection._collect_garbage(referenced)
        migrating = other_wal_path.exists() or other_manifest.exists()
        collection._replaying = True
        try:
            if other_wal_path.exists():
                # the other format's WAL tail: mutations accepted after the
                # checkpoint the old-format directory last wrote
                for record in WriteAheadLog(other_wal_path).replay(after_seq=collection._seq):
                    collection._apply_record(record, tolerant=True)
                    collection._maintain()
            for record in wal.replay(after_seq=collection._seq):
                collection._apply_record(record, tolerant=True)
                collection._maintain()
        finally:
            collection._replaying = False
        if migrating:
            # complete the in-place migration: checkpoint in the new format,
            # then drop the superseded artifacts.  Idempotent — a crash in
            # between re-runs this block with an empty old tail.
            collection._checkpoint()
            other_wal_path.unlink(missing_ok=True)
            other_manifest.unlink(missing_ok=True)
        if wal.exists:
            # the file may still hold an untruncated covered prefix, so the
            # policy counter tracks actual log length, not just the tail
            collection._wal_records = wal.record_count()
        collection._maybe_auto_snapshot()
        return collection

    def _load_manifest_file(self, path: Path) -> Manifest:
        """Decode one manifest file by its suffix (JSON or binary edit log)."""
        if path.name == MANIFEST_BINARY_FILENAME:
            log = self._manifest_log
            if log is None or log.path != path:
                log = ManifestLog(path)
            manifest = log.load()
            assert manifest is not None  # caller checked path.exists()
            return manifest
        return Manifest.load(path)

    # holds: _lock — open() path, before the collection is shared
    def _load_manifest(self, manifest: Manifest) -> None:
        assert self._directory is not None
        self._k = manifest.k
        self._next_key = manifest.next_key
        self._seq = manifest.covered_seq
        self._covered_seq = manifest.covered_seq
        # resume the epoch counter: compactions after this restart must not
        # reuse the surviving base run's numbered filename
        self._base_epoch = manifest.base_epoch
        if manifest.base is not None:
            keys, rankings = read_run(self._directory / manifest.base)
            if keys:
                self._base = ShardedIndex.build(rankings, num_shards=self._num_shards)
                self._base_keys = keys
                self._base_file = manifest.base
        for rid in manifest.base_tombstones:
            self._tombstones.add(("base", self._base_epoch, rid))
        for segment_id, filename in manifest.segments:
            segment = Segment.load(self._directory / filename)
            self._segments[segment_id] = segment
            self._segment_files[segment_id] = filename
            for local_rid in manifest.segment_tombstones.get(segment_id, ()):
                self._tombstones.add(("seg", segment_id, local_rid))
            self._next_segment_id = max(self._next_segment_id, segment_id + 1)
        # every key has exactly one non-tombstoned location across the
        # sealed layers (superseded locations are always tombstoned)
        for rid, key in enumerate(self._base_keys):
            if ("base", self._base_epoch, rid) not in self._tombstones:
                self._current[key] = ("base", self._base_epoch, rid)
        for segment_id, _ in manifest.segments:
            segment = self._segments[segment_id]
            for local_rid, key in enumerate(segment.keys):
                if ("seg", segment_id, local_rid) not in self._tombstones:
                    self._current[key] = ("seg", segment_id, local_rid)

    # holds: _lock — open() path, before the collection is shared
    def _load_legacy_snapshot(self, path: Path) -> None:
        """Restore a pre-manifest whole-state snapshot (read-only support)."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload["entries"]
        self._k = payload["k"]
        self._next_key = int(payload["next_key"])
        self._seq = int(payload["last_seq"])
        self._covered_seq = self._seq
        if entries:
            keys = tuple(int(key) for key, _ in entries)
            rankings = RankingSet.from_lists([items for _, items in entries])
            self._base = ShardedIndex.build(rankings, num_shards=self._num_shards)
            self._base_keys = keys
            for rid, key in enumerate(keys):
                self._current[key] = ("base", self._base_epoch, rid)

    def _collect_garbage(self, referenced: frozenset[str]) -> None:
        """Drop run files the surviving manifest does not name.

        A crash between spilling a run and rewriting the manifest — or
        between a manifest rewrite and deleting the files it superseded —
        leaves orphans; they are harmless but would accumulate.
        """
        if self._directory is None or not self._directory.exists():
            return
        candidates = list(self._directory.glob("base-*.json"))
        candidates += list(self._directory.glob("base-*.rbf"))
        candidates += list((self._directory / SEGMENTS_DIRNAME).glob("segment-*.json"))
        candidates += list((self._directory / SEGMENTS_DIRNAME).glob("segment-*.rbf"))
        candidates += list(self._directory.glob("*.tmp"))
        candidates += list((self._directory / SEGMENTS_DIRNAME).glob("*.tmp"))
        for path in candidates:
            if path.relative_to(self._directory).as_posix() not in referenced:
                path.unlink(missing_ok=True)

    def snapshot(self, directory: Optional[Union[str, Path]] = None) -> Path:
        """Checkpoint the collection; restarts then replay only the WAL tail.

        In the collection's own directory this seals the memtable, spills
        it, rewrites the manifest with ``covered_seq`` equal to the last
        accepted mutation, and truncates the WAL records the manifest
        covers — every step ``fsync``\\ ed (run file, manifest, WAL rewrite,
        and the directory entries), so a crash at any point leaves a
        recoverable state with no acknowledged-and-committed write lost.
        The whole operation runs under the collection lock: concurrent
        snapshots serialize and mutations cannot interleave between the
        state capture and the truncation.

        With an explicit *other* ``directory`` the live state is exported
        there as a standalone base run + manifest (the collection's own
        WAL is left untouched).  Returns the manifest path.
        """
        target_dir = Path(directory) if directory is not None else self._directory
        if target_dir is None:
            raise ValueError("no directory: pass one or open the collection with .open()")
        if (
            self._directory is not None
            and target_dir.resolve() == self._directory.resolve()
        ):
            return self._checkpoint()
        return self._export_snapshot(target_dir)

    def _checkpoint(self) -> Path:
        assert self._directory is not None
        with self._lock:
            self._flush_locked(write_manifest=False)
            self._write_manifest_locked(covered_seq=self._seq)
            if self._wal is not None:
                self._wal_records = self._wal.truncate_through(self._covered_seq)
            self._stats.snapshots += 1
            self._m_snapshots.inc()
        return self._directory / (
            MANIFEST_BINARY_FILENAME if self._format == "binary" else MANIFEST_FILENAME
        )

    def _export_snapshot(self, target_dir: Path) -> Path:
        with self._lock:
            entries = [
                (key, self._ranking_at(location))
                for key, location in sorted(self._current.items())
            ]
            manifest = Manifest(
                k=self._k,
                next_key=self._next_key,
                covered_seq=self._seq,
                base=base_filename(0) if entries else None,
            )
            self._stats.snapshots += 1
            self._m_snapshots.inc()
        target_dir.mkdir(parents=True, exist_ok=True)
        if entries:
            keys = tuple(key for key, _ in entries)
            rankings = RankingSet.from_rankings(ranking for _, ranking in entries)
            write_run(target_dir / base_filename(0), keys, rankings)
        return manifest.save(target_dir / MANIFEST_FILENAME)

    def _write_manifest_locked(self, covered_seq: int) -> None:
        """Rewrite the manifest to describe the current sealed layers.

        Caller holds the collection lock and guarantees that every WAL
        record with ``seq <= covered_seq`` is reflected in those layers.
        """
        assert self._directory is not None
        if self._base is not None and self._base_file is None:
            # base built in memory (initial= or a legacy snapshot): spill it
            self._base_file = base_filename(self._base_epoch, self._format)
            write_run(self._directory / self._base_file, self._base_keys, self._base.rankings)
        tombstones = self._tombstones.snapshot()
        base_tombstones = tuple(
            sorted(rid for layer, epoch, rid in tombstones
                   if layer == "base" and epoch == self._base_epoch)
        )
        segment_tombstones = {
            segment_id: tuple(sorted(
                rid for layer, container, rid in tombstones
                if layer == "seg" and container == segment_id
            ))
            for segment_id in self._segment_files
        }
        manifest = Manifest(
            k=self._k,
            next_key=self._next_key,
            covered_seq=covered_seq,
            base=self._base_file if self._base is not None else None,
            base_epoch=self._base_epoch,
            segments=sorted(self._segment_files.items()),
            base_tombstones=base_tombstones,
            segment_tombstones=segment_tombstones,
        )
        if self._manifest_log is not None:
            self._manifest_log.commit(manifest)
        else:
            manifest.save(self._directory / MANIFEST_FILENAME)
        # the manifest supersedes any legacy whole-state snapshot
        (self._directory / SNAPSHOT_FILENAME).unlink(missing_ok=True)
        self._covered_seq = covered_seq

    def close(self) -> None:
        """Finish background compaction and release files and thread pools."""
        self._compactor.join()
        if self._wal is not None:
            self._wal.close()
        with self._lock:
            base = self._base
        if base is not None:
            base.close()

    def __enter__(self) -> "LiveCollection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- accessors ------------------------------------------------------------------

    @property
    def k(self) -> Optional[int]:
        """Uniform ranking size (``None`` until the first insert)."""
        with self._lock:
            return self._k

    @property
    def version(self) -> int:
        """Bumped by every mutation, flush, and compaction (cache epoch)."""
        with self._lock:
            return self._version

    @property
    def num_shards(self) -> int:
        """Shard count used for compacted base epochs."""
        return self._num_shards

    @property
    def durability(self) -> str:
        """The write-path guarantee: in-memory / no-sync / fsync / group-commit."""
        return self._wal.durability if self._wal is not None else "in-memory"

    @property
    def storage_format(self) -> str:
        """The persistence format (one of :data:`STORAGE_FORMATS`)."""
        return self._format

    @property
    def memtable_size(self) -> int:
        """Number of rankings buffered in the memtable."""
        with self._lock:
            return len(self._memtable)

    @property
    def segment_count(self) -> int:
        """Number of sealed, not-yet-compacted segments."""
        with self._lock:
            return len(self._segments)

    @property
    def tombstone_count(self) -> int:
        """Number of superseded versions awaiting compaction."""
        with self._lock:
            return len(self._tombstones)

    @property
    def base_size(self) -> int:
        """Number of rankings in the compacted base (live or tombstoned)."""
        with self._lock:
            return len(self._base_keys)

    def stats(self) -> LiveStats:
        """Lifetime mutation/maintenance counters (live object)."""
        return self._stats  # repro: noqa[guarded-by] documented live handle; reads are racy by contract

    @property
    def last_seq(self) -> int:
        """Sequence number of the last accepted mutation (0 when pristine)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._current)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._current

    def live_keys(self) -> list[int]:
        """The live logical keys in ascending order."""
        with self._lock:
            return sorted(self._current)

    def get(self, key: int) -> Optional[Ranking]:
        """The current ranking stored under ``key``, or ``None``."""
        with self._lock:
            location = self._current.get(key)
            if location is None:
                return None
            return self._ranking_at(location)

    def to_ranking_set(self) -> RankingSet:
        """The logical collection: live rankings in ascending key order.

        This is the from-scratch baseline the live answers are equivalent
        to — dense id ``i`` corresponds to the i-th smallest live key.
        """
        with self._lock:
            return RankingSet.from_rankings(
                self._ranking_at(location) for _, location in sorted(self._current.items())
            )

    def export_state(self) -> dict:
        """One consistent dump of the logical collection, for cluster backfill.

        Returns ``{"entries": [[key, [items...]], ...], "next_key", "last_seq"}``
        with entries in ascending key order — everything a fresh replica (or a
        reshard target) needs to catch up to this collection's state before
        tailing its WAL.
        """
        with self._lock:
            entries = [
                [key, list(self._ranking_at(location).items)]
                for key, location in sorted(self._current.items())
            ]
            return {"entries": entries, "next_key": self._next_key, "last_seq": self._seq}

    def _ranking_at(self, location: Location) -> Ranking:  # holds: _lock
        layer, container, position = location
        if layer == "mem":
            ranking = self._memtable.get(position)
            assert ranking is not None
            return ranking
        if layer == "seg":
            return self._segments[container].rankings[position]
        assert self._base is not None
        return self._base.rankings[position]

    # -- mutations ------------------------------------------------------------------

    def insert(self, items: Union[Ranking, list[int], tuple[int, ...]]) -> int:
        """Add one ranking; returns its (stable) logical key."""
        ranking = self._coerce(items)
        with self._lock:
            self._check_size(ranking)
            key = self._next_key
            self._write_record("insert", key, ranking)
            self._do_insert(key, ranking)
        self._maintain()
        return key

    def delete(self, key: int) -> None:
        """Remove the ranking stored under ``key`` (:class:`UnknownKeyError` if absent)."""
        with self._lock:
            if key not in self._current:
                raise UnknownKeyError(key)
            self._write_record("delete", key, None)
            self._do_delete(key)
        self._maintain()

    def upsert(self, key: int, items: Union[Ranking, list[int], tuple[int, ...]]) -> None:
        """Replace the ranking under ``key`` (or insert it there if absent)."""
        ranking = self._coerce(items)
        with self._lock:
            self._check_size(ranking)
            self._write_record("upsert", key, ranking)
            self._do_upsert(key, ranking)
        self._maintain()

    def sync(self) -> None:
        """Force a WAL barrier: everything accepted so far becomes durable.

        Useful under group-commit (commits a partial batch) and no-sync
        (the only fsync those modes ever issue).  A no-op in-memory.
        """
        if self._wal is not None:
            with self._lock:
                self._wal.sync()

    @staticmethod
    def _coerce(items: Union[Ranking, list[int], tuple[int, ...]]) -> Ranking:
        return items if isinstance(items, Ranking) else Ranking(items)

    def _check_size(self, ranking: Ranking) -> None:  # holds: _lock
        if self._k is not None and ranking.size != self._k:
            raise RankingSizeMismatchError(self._k, ranking.size)

    def _write_record(self, op: str, key: int, ranking: Optional[Ranking]) -> None:  # holds: _lock
        self._seq += 1
        record: Optional[WalRecord] = None
        if self._wal is not None or self.wal_hook is not None:
            items = None if ranking is None else ranking.items
            record = WalRecord(seq=self._seq, op=op, key=key, items=items)
        if self._wal is not None:
            self._wal.append(record)
            self._wal_records += 1
        if self.wal_hook is not None:
            self.wal_hook(record)

    def _do_insert(self, key: int, ranking: Ranking) -> None:  # holds: _lock
        if self._k is None:
            self._k = ranking.size
        self._memtable.put(key, ranking)
        self._current[key] = ("mem", 0, key)
        self._next_key = max(self._next_key, key + 1)
        self._version += 1
        self._stats.inserts += 1
        self._m_mutations["insert"].inc()

    def _do_delete(self, key: int) -> None:  # holds: _lock
        location = self._current.pop(key)
        if location[0] == "mem":
            self._memtable.remove(key)
        else:
            self._tombstones.add(location)
        self._version += 1
        self._stats.deletes += 1
        self._m_mutations["delete"].inc()

    def _do_upsert(self, key: int, ranking: Ranking) -> None:  # holds: _lock
        if self._k is None:
            self._k = ranking.size
        old = self._current.get(key)
        if old is not None and old[0] != "mem":
            self._tombstones.add(old)
        self._memtable.put(key, ranking)
        self._current[key] = ("mem", 0, key)
        self._next_key = max(self._next_key, key + 1)
        self._version += 1
        self._stats.upserts += 1
        self._m_mutations["upsert"].inc()

    def _apply_record(self, record: WalRecord, tolerant: bool = False) -> None:
        """Re-apply one durable mutation during replay (no re-logging).

        ``tolerant`` is set during recovery: a checkpoint written at a
        compaction swap may already reflect tail mutations whose tombstones
        the compaction consumed, so a replayed delete of an already-absent
        key is a completed no-op, not an error.
        """
        with self._lock:
            if record.op == "insert":
                self._do_insert(record.key, Ranking(record.items))
            elif record.op == "delete":
                if not tolerant or record.key in self._current:
                    self._do_delete(record.key)
            else:
                self._do_upsert(record.key, Ranking(record.items))
            self._seq = record.seq
            self._stats.replayed += 1

    def apply_replicated(self, record: WalRecord) -> bool:
        """Apply one mutation shipped from a primary, preserving its ``seq``.

        The replica apply path of :mod:`repro.cluster`: the record is logged
        to this collection's own WAL (when one is attached) *with the
        primary's sequence number*, so primary and replica WALs describe the
        same history and a promoted replica carries on from the same ``seq``.

        Idempotent under redelivery — a record at or below the current
        sequence returns ``False`` untouched (the coordinator resends from
        its last acknowledged offset after failures).  A gap (``seq``
        beyond ``last_seq + 1``) raises :class:`InvalidRequestError` so the
        shipper knows to back up; deletes of absent keys are tolerated the
        same way recovery replay tolerates them.
        """
        with self._lock:
            if record.seq <= self._seq:
                return False
            if record.seq != self._seq + 1:
                raise InvalidRequestError(
                    f"replication gap: next expected seq {self._seq + 1}, got {record.seq}"
                )
            ranking = None if record.items is None else Ranking(record.items)
            if ranking is not None:
                self._check_size(ranking)
            self._seq = record.seq
            if self._wal is not None:
                self._wal.append(record)
                self._wal_records += 1
            if record.op == "insert":
                self._do_insert(record.key, ranking)
            elif record.op == "delete":
                if record.key in self._current:
                    self._do_delete(record.key)
            else:
                self._do_upsert(record.key, ranking)
            if self.wal_hook is not None:
                self.wal_hook(record)
        self._maintain()
        return True

    # -- maintenance ----------------------------------------------------------------

    def _maintain(self) -> None:
        with self._lock:
            needs_flush = len(self._memtable) >= self._memtable_threshold
        if needs_flush:
            self.flush()
        self._compactor.maybe_trigger()
        self._maybe_auto_snapshot()

    def _maybe_auto_snapshot(self) -> None:
        """Snapshot + truncate once the WAL grows past the policy bound.

        Suppressed during recovery replay: the replay iterator streams the
        very file a snapshot would rewrite, and the post-replay check in
        :meth:`open` applies the policy once the file is quiescent.
        """
        if (
            self._snapshot_every is None
            or self._wal is None
            or self._directory is None
            or self._replaying
        ):
            return
        # check-and-checkpoint under one lock hold: a concurrent writer that
        # also saw the log past the bound must observe the reset counter, not
        # run a second back-to-back checkpoint
        with self._lock:
            if self._wal_records >= self._snapshot_every:
                self._checkpoint()

    def flush(self) -> Optional[int]:
        """Seal the memtable into a segment; returns the segment id (or None).

        With a persistence directory attached the sealed run is spilled to
        disk and the manifest rewritten, so the flushed records leave the
        WAL replay path immediately.
        """
        with self._lock:
            return self._flush_locked(write_manifest=True)

    def _flush_locked(self, write_manifest: bool) -> Optional[int]:
        if len(self._memtable) == 0:
            return None
        entries = self._memtable.drain()
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        segment = Segment.seal(entries)
        self._segments[segment_id] = segment
        # every drained entry was the live version of its key
        for local_rid, key in enumerate(segment.keys):
            self._current[key] = ("seg", segment_id, local_rid)
        self._version += 1
        self._stats.flushes += 1
        self._m_flushes.inc()
        if self._directory is not None:
            filename = segment_filename(segment_id, self._format)
            segment.save(self._directory / filename)
            self._segment_files[segment_id] = filename
            if write_manifest:
                # the memtable is empty right now, so the sealed layers are
                # complete through every record accepted so far
                self._write_manifest_locked(covered_seq=self._seq)
        return segment_id

    def compact(self, wait: bool = True) -> bool:
        """Merge base + segments minus tombstones into a fresh base epoch.

        Runs inline (or waits for the background run when
        ``background_compaction`` is on and ``wait`` is true); returns
        whether a compaction actually ran.
        """
        return self._compactor.run(wait=wait)

    # -- queries --------------------------------------------------------------------

    def _check_query(self, query: Ranking) -> None:
        with self._lock:
            if self._k is not None and query.size != self._k:
                raise RankingSizeMismatchError(self._k, query.size)

    def _query_snapshot(self):
        """One atomic view of every layer, taken under the lock."""
        with self._lock:
            base = self._base
            base_keys = self._base_keys
            base_epoch = self._base_epoch
            base_dead = self._tombstones.count_for(("base", base_epoch))
            segments = [
                (segment_id, segment, self._tombstones.count_for(("seg", segment_id)))
                for segment_id, segment in self._segments.items()
            ]
            memtable_entries = self._memtable.items()
            tombstones = self._tombstones.snapshot()
        return base, base_keys, base_epoch, base_dead, segments, memtable_entries, tombstones

    def range_query(
        self,
        query: Ranking,
        theta: float,
        algorithm: str = DEFAULT_LIVE_ALGORITHM,
        **kwargs,
    ) -> SearchResult:
        """Answer one range query over the logical collection (rids are keys).

        The base, every segment, and the memtable are queried independently
        and their answers merged, dropping tombstoned versions; the result is
        exactly a from-scratch index's answer, ordered by ``(distance, key)``.
        """
        if not 0.0 <= theta < 1.0:
            raise InvalidThresholdError(theta, "theta must lie in [0, 1)")
        self._check_query(query)
        base, base_keys, base_epoch, _, segments, memtable_entries, tombstones = (
            self._query_snapshot()
        )
        stats = SearchStats()
        result = SearchResult(query=query, theta=theta, algorithm=f"live:{algorithm}")
        if base is not None:
            with trace_span("live:base", size=len(base_keys)):
                base_answer = base.range_query(query, theta, algorithm, **kwargs)
            stats.merge(base_answer.stats)
            for match in base_answer.matches:
                if ("base", base_epoch, match.rid) not in tombstones:
                    result.add(base_keys[match.rid], match.ranking, match.distance)
        with trace_span("live:segments", count=len(segments)):
            for segment_id, segment, _ in segments:
                segment_answer = segment.search(query, theta, algorithm, **kwargs)
                stats.merge(segment_answer.stats)
                for match in segment_answer.matches:
                    if ("seg", segment_id, match.rid) not in tombstones:
                        result.add(
                            segment.keys[match.rid], segment.rankings[match.rid], match.distance
                        )
        if memtable_entries:
            stats.distance_calls += len(memtable_entries)
            with trace_span("live:memtable", scanned=len(memtable_entries)):
                for distance, key, ranking in scan_entries(memtable_entries, query, theta):
                    result.add(key, ranking, distance)
        stats.extra["segments_queried"] = float(len(segments))
        stats.extra["memtable_scanned"] = float(len(memtable_entries))
        result.stats = stats
        return result.finalize()

    def knn(
        self,
        query: Ranking,
        n_neighbours: int,
        algorithm: str = DEFAULT_LIVE_ALGORITHM,
        initial_theta: float = 0.05,
        growth: float = 2.0,
        **kwargs,
    ) -> KnnResult:
        """Exact k-nearest neighbours over the logical collection (rids are keys).

        Each layer contributes its exact local top candidates — over-fetched
        by the layer's tombstone count, so filtering cannot cost an answer —
        and a bounded merge keeps the ``n_neighbours`` globally smallest
        ``(distance, key)`` pairs.
        """
        if n_neighbours <= 0:
            raise InvalidRequestError(f"n_neighbours must be positive, got {n_neighbours}")
        self._check_query(query)
        base, base_keys, base_epoch, base_dead, segments, memtable_entries, tombstones = (
            self._query_snapshot()
        )
        stats = SearchStats()
        candidates: list[tuple[float, int, Ranking]] = []
        if base is not None:
            target = min(n_neighbours + base_dead, len(base_keys))
            with trace_span("live:base", size=len(base_keys)):
                base_answer = base.knn(
                    query, target, algorithm, initial_theta=initial_theta, growth=growth, **kwargs
                )
            stats.merge(base_answer.stats)
            live = [
                (neighbour.distance, base_keys[neighbour.rid], neighbour.ranking)
                for neighbour in base_answer.neighbours
                if ("base", base_epoch, neighbour.rid) not in tombstones
            ]
            candidates.extend(live[:n_neighbours])
        with trace_span("live:segments", count=len(segments)):
            for segment_id, segment, segment_dead in segments:
                target = min(n_neighbours + segment_dead, len(segment))
                top, segment_stats = segment.top(
                    query, target, algorithm, initial_theta=initial_theta, growth=growth, **kwargs
                )
                stats.merge(segment_stats)
                live = [
                    (distance, segment.keys[local_rid], segment.rankings[local_rid])
                    for distance, local_rid in top
                    if ("seg", segment_id, local_rid) not in tombstones
                ]
                candidates.extend(live[:n_neighbours])
        if memtable_entries:
            stats.distance_calls += len(memtable_entries)
            with trace_span("live:memtable", scanned=len(memtable_entries)):
                candidates.extend(top_entries(memtable_entries, query, n_neighbours))
        best = heapq.nsmallest(n_neighbours, candidates, key=lambda entry: entry[:2])
        neighbours = [
            Neighbour(distance=distance, rid=key, ranking=ranking)
            for distance, key, ranking in best
        ]
        stats.results = len(neighbours)
        return KnnResult(query=query, neighbours=neighbours, stats=stats)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LiveCollection(live={len(self._current)}, memtable={len(self._memtable)}, "
                f"segments={len(self._segments)}, base={len(self._base_keys)}, "
                f"tombstones={len(self._tombstones)}, version={self._version})"
            )
