#!/usr/bin/env python3
"""Cluster demo: hash-routed writes, WAL-shipped replicas, a killed primary.

The remote-shards demo scales *reads* over static shards.  This demo runs
the full mutable cluster from ``repro.cluster``:

1. a :class:`LocalCluster` boots 2 shards x 2 replicas as real TCP servers
   (plus a served coordinator) and provisions them over wire DDL;
2. a mixed insert/upsert/delete stream is routed by key hash through the
   coordinator, while an identical stream feeds a single-node shadow
   session — the equivalence oracle;
3. mid-stream, shard 0's primary is killed without warning; the next write
   forces a failover (log-tail replay + promote) and the routing version
   bumps so stale clients self-correct;
4. half the slots are then moved to the other shard online (backfill,
   buffered drain, atomic flip, tombstone forwarding);
5. every query shape is asserted byte-identical to the shadow at the end —
   the kill and the reshard must be invisible in the answers.

Run with::

    PYTHONPATH=src python examples/cluster_demo.py
"""

from __future__ import annotations

import random

from repro.api.database import Database
from repro.api.requests import (
    AdminRequest,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    RangeQueryRequest,
    UpsertRequest,
)
from repro.cluster import ClusterClient, LocalCluster

DOMAIN = 40
K = 8
ROUNDS = 90


def mutate_both(coordinator, shadow, rng, rounds, keys):
    """Feed one identical mutation stream to the cluster and the shadow."""
    for _ in range(rounds):
        roll = rng.random()
        if roll < 0.6 or not keys:
            items = tuple(rng.sample(range(DOMAIN), K))
            a = coordinator.execute(InsertRequest(collection="default", items=items))
            b = shadow.execute(InsertRequest(collection="default", items=items))
            assert a.ok and a.key == b.key
            keys.append(a.key)
        elif roll < 0.85:
            key = rng.choice(keys)
            items = tuple(rng.sample(range(DOMAIN), K))
            a = coordinator.execute(
                UpsertRequest(collection="default", key=key, items=items)
            )
            b = shadow.execute(UpsertRequest(collection="default", key=key, items=items))
        else:
            key = rng.choice(keys)
            a = coordinator.execute(DeleteRequest(collection="default", key=key))
            b = shadow.execute(DeleteRequest(collection="default", key=key))
        assert a.result_bytes() == b.result_bytes()


def assert_equivalent(coordinator, shadow, rng, label):
    for _ in range(8):
        query = tuple(rng.sample(range(DOMAIN), K))
        for request in (
            RangeQueryRequest(collection="default", items=query, theta=0.5),
            KnnRequest(collection="default", items=query, k=10),
        ):
            a = coordinator.execute(request)
            b = shadow.execute(request)
            assert a.result_bytes() == b.result_bytes(), request
    print(f"  {label}: cluster answers byte-identical to single node")


def main() -> None:
    rng = random.Random(42)
    keys: list[int] = []

    shadow_db = Database()
    shadow = shadow_db.session()
    shadow.execute(
        AdminRequest(collection="default", action="create", engine="live")
    ).raise_for_error()

    with LocalCluster(
        shards=2, replicas=2, num_slots=16, serve_coordinator=True
    ) as cluster:
        coordinator = cluster.coordinator
        status = coordinator.status()
        print(
            f"cluster up: {len(status['shards'])} shards x "
            f"{1 + len(status['shards'][0]['replicas'])} nodes each, "
            f"routing v{status['version']} ({status['num_slots']} slots)"
        )

        # -- 2. mixed load, mirrored into the shadow ------------------------
        mutate_both(coordinator, shadow, rng, ROUNDS, keys)
        assert_equivalent(coordinator, shadow, rng, "steady state")

        # a wire client with its own cached routing table, to show the
        # stale-table self-correction after the failover below
        host, port = cluster.coordinator_address.rsplit(":", 1)
        client = ClusterClient(host, int(port))
        probe = tuple(rng.sample(range(DOMAIN), K))
        client.knn(probe, 5)
        stale_version = client.routing_version

        # -- 3. kill shard 0's primary mid-stream ---------------------------
        dead = cluster.kill_primary(0)
        print(f"killed shard 0 primary at {dead} — continuing the stream")
        mutate_both(coordinator, shadow, rng, 30, keys)
        status = coordinator.status()
        shard0 = status["shards"][0]
        assert shard0["primary"] != dead and shard0["primary_alive"]
        print(
            f"  failover: {shard0['primary']} promoted, "
            f"routing v{stale_version} -> v{status['version']}"
        )
        client.knn(probe, 5)  # stale table -> error envelope -> retry
        assert client.routing_version == status["version"]
        print(f"  stale client self-corrected to v{client.routing_version}")
        assert_equivalent(coordinator, shadow, rng, "after failover")

        # -- 4. online reshard: move even slots to the other shard ----------
        table = coordinator.routing_table
        moves = {
            slot: 1 - owner
            for slot, owner in enumerate(table.slots)
            if slot % 2 == 0
        }
        summary = coordinator.reshard(moves)
        print(
            f"resharded: moved {summary['moved_keys']} keys in "
            f"{summary['moved_slots']} slots, forwarded "
            f"{summary['forwarded_tombstones']} tombstones, "
            f"routing now v{summary['version']}"
        )
        mutate_both(coordinator, shadow, rng, 30, keys)
        assert_equivalent(coordinator, shadow, rng, "after reshard")

        client.close()

    shadow_db.close()
    print("cluster demo OK")


if __name__ == "__main__":
    main()
