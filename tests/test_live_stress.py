"""Stress tests: concurrent churn/compact/query, and crash recovery.

Two families:

* **Concurrency** — writer threads mutate while a background compaction
  runs and readers query continuously; at barrier checkpoints the logical
  state is frozen (writers paused, compaction possibly still in flight) and
  every answer must equal a brute-force scan of the logical collection.
* **Crash recovery** — a "crash" is simulated by rewriting the WAL to what
  the disk would hold at an fsync boundary (acknowledged-and-committed
  records survive, the un-fsynced suffix vanishes, the last line may be
  torn) and reopening; no committed write may be lost, and recovery must
  land exactly on a prefix of the accepted history.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.devtools.locktrace import (
    get_lock_registry,
    locktrace_enabled,
    reset_lock_registry,
)
from repro.core.distances import (
    footrule_topk_raw,
    max_footrule_distance,
    unnormalize_distance,
)
from repro.core.ranking import Ranking
from repro.live import LiveCollection

@pytest.fixture(autouse=True)
def _no_lock_inversions():
    """Under ``REPRO_LOCKTRACE=1`` every test here doubles as a lockdep run:
    the traced-lock order graph must stay acyclic."""
    if locktrace_enabled():
        reset_lock_registry()
    yield
    if locktrace_enabled():
        inversions = get_lock_registry().inversions()
        assert inversions == [], "\n".join(entry.describe() for entry in inversions)


K = 5
DOMAIN = 40
THETA = 0.35
NEIGHBOURS = 5


def mutate_once(live: LiveCollection, rng: random.Random) -> None:
    """One random mutation; key races with other writers are tolerated."""
    keys = live.live_keys()
    roll = rng.random()
    try:
        if roll < 0.6 or not keys:
            live.insert(rng.sample(range(DOMAIN), K))
        elif roll < 0.8:
            live.delete(rng.choice(keys))
        else:
            live.upsert(rng.choice(keys), rng.sample(range(DOMAIN), K))
    except KeyError:
        pass  # another writer deleted the key between live_keys() and here


def logical_state(live: LiveCollection) -> dict[int, tuple[int, ...]]:
    return {key: live.get(key).items for key in live.live_keys()}


def brute_force_range(state: dict[int, tuple[int, ...]], query: Ranking, theta: float):
    theta_raw = unnormalize_distance(theta, query.size)
    maximum = max_footrule_distance(query.size)
    matches = []
    for key, items in state.items():
        raw = footrule_topk_raw(query, Ranking(list(items)))
        if raw <= theta_raw:
            matches.append((raw / maximum, key))
    return sorted(matches)


def brute_force_knn(state: dict[int, tuple[int, ...]], query: Ranking, n: int):
    maximum = max_footrule_distance(query.size)
    scored = sorted(
        (footrule_topk_raw(query, Ranking(list(items))) / maximum, key)
        for key, items in state.items()
    )
    return scored[:n]


def assert_answers_match_state(live: LiveCollection, rng: random.Random) -> None:
    state = logical_state(live)
    for _ in range(2):
        query = Ranking(rng.sample(range(DOMAIN), K))
        expected = brute_force_range(state, query, THETA)
        answer = live.range_query(query, THETA)
        assert [(m.distance, m.rid) for m in answer.matches] == expected
        expected_knn = brute_force_knn(state, query, NEIGHBOURS)
        answer_knn = live.knn(query, NEIGHBOURS)
        assert [(n.distance, n.rid) for n in answer_knn.neighbours] == expected_knn


# -- concurrency --------------------------------------------------------------------


def run_concurrent_churn(live: LiveCollection, writers: int, rounds: int, ops: int) -> None:
    """Writers churn in rounds; between rounds the main thread verifies.

    The pause barrier freezes the *logical* state only — a background
    compaction may still be swapping layers mid-verification, which is
    exactly the race the exactness invariant must survive.
    """
    checkpoint = threading.Barrier(writers + 1)
    resume = threading.Barrier(writers + 1)
    failures: list[BaseException] = []
    stop_readers = threading.Event()

    def writer(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(rounds):
                for _ in range(ops):
                    mutate_once(live, rng)
                checkpoint.wait(timeout=60)
                resume.wait(timeout=60)
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)
            checkpoint.abort()
            resume.abort()

    def reader() -> None:
        rng = random.Random(1234)
        try:
            while not stop_readers.is_set():
                query = Ranking(rng.sample(range(DOMAIN), K))
                answer = live.range_query(query, THETA)
                distances = [m.distance for m in answer.matches]
                assert distances == sorted(distances)
                rids = [n.rid for n in live.knn(query, NEIGHBOURS).neighbours]
                assert len(rids) == len(set(rids))
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [
        threading.Thread(target=writer, args=(31 + i,), daemon=True) for i in range(writers)
    ]
    reader_thread = threading.Thread(target=reader, daemon=True)
    for thread in threads:
        thread.start()
    reader_thread.start()
    verify_rng = random.Random(7)
    try:
        for _ in range(rounds):
            checkpoint.wait(timeout=60)
            assert_answers_match_state(live, verify_rng)
            resume.wait(timeout=60)
    finally:
        stop_readers.set()
        reader_thread.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
    assert not failures, failures[0]


def test_concurrent_churn_compact_query_in_memory():
    live = LiveCollection(memtable_threshold=8, max_segments=2, background_compaction=True)
    with live:
        run_concurrent_churn(live, writers=2, rounds=4, ops=30)
        assert live.stats().compactions >= 1
        assert_answers_match_state(live, random.Random(2))


def test_concurrent_churn_on_durable_collection_survives_restart(tmp_path):
    live = LiveCollection.open(
        tmp_path,
        memtable_threshold=8,
        max_segments=2,
        background_compaction=True,
        commit_batch=8,
        snapshot_every=48,
    )
    with live:
        run_concurrent_churn(live, writers=2, rounds=3, ops=30)
        expected = logical_state(live)
        assert live.stats().snapshots >= 1  # the policy fired under churn
    reopened = LiveCollection.open(tmp_path, memtable_threshold=8, max_segments=2)
    with reopened:
        assert logical_state(reopened) == expected
        assert reopened.stats().replayed <= 48 + 8  # policy bound + memtable tail
        assert_answers_match_state(reopened, random.Random(3))


# -- crash recovery -----------------------------------------------------------------


def apply_tracked(live: LiveCollection, rng: random.Random, count: int):
    """Churn while recording the logical state after every accepted record."""
    shadows: dict[int, dict[int, tuple[int, ...]]] = {0: {}}
    state: dict[int, tuple[int, ...]] = {}
    for _ in range(count):
        keys = sorted(state)
        roll = rng.random()
        if roll < 0.6 or not keys:
            items = tuple(rng.sample(range(DOMAIN), K))
            key = live.insert(list(items))
            state[key] = items
        elif roll < 0.8:
            key = rng.choice(keys)
            live.delete(key)
            del state[key]
        else:
            key = rng.choice(keys)
            items = tuple(rng.sample(range(DOMAIN), K))
            live.upsert(key, list(items))
            state[key] = items
        shadows[live._seq] = dict(state)
    return shadows


def simulate_fsync_boundary_crash(wal_path, durable_seq: int, torn: bool) -> None:
    """Rewrite the WAL to what disk holds after losing the un-fsynced suffix."""
    lines = wal_path.read_text(encoding="utf-8").splitlines()
    survivors = [
        line for line in lines if json.loads(line)["seq"] <= durable_seq
    ]
    content = "".join(line + "\n" for line in survivors)
    if torn:
        content += '{"seq": 99999, "op": "insert", "key": 9'  # mid-append tear
    wal_path.write_text(content, encoding="utf-8")


def recover_and_check(tmp_path, shadows, durable_seq: int, covered_seq: int) -> None:
    recovered = LiveCollection.open(tmp_path, memtable_threshold=6, max_segments=2)
    with recovered:
        # nothing committed may be lost...
        assert recovered._seq >= max(durable_seq, covered_seq)
        # ...and the result must be an exact prefix of the accepted history
        assert logical_state(recovered) == shadows[recovered._seq]


def test_group_commit_crash_preserves_every_committed_write(tmp_path):
    rng = random.Random(71)
    live = LiveCollection.open(
        tmp_path, memtable_threshold=6, max_segments=2, commit_batch=5, snapshot_every=None
    )
    shadows = apply_tracked(live, rng, 43)
    durable_seq = live._wal.durable_seq
    covered_seq = live._covered_seq
    assert durable_seq < live._seq  # a partial batch is genuinely pending
    live.close()  # the close barrier is irrelevant: the crash rewrite decides
    simulate_fsync_boundary_crash(tmp_path / "wal.jsonl", durable_seq, torn=True)
    recover_and_check(tmp_path, shadows, durable_seq, covered_seq)


def test_per_record_fsync_crash_loses_at_most_the_torn_append(tmp_path):
    rng = random.Random(72)
    live = LiveCollection.open(
        tmp_path, memtable_threshold=6, max_segments=2, sync=True, snapshot_every=None
    )
    shadows = apply_tracked(live, rng, 25)
    durable_seq = live._wal.durable_seq
    assert durable_seq == live._seq  # every acknowledged record hit the platter
    covered_seq = live._covered_seq
    live.close()
    simulate_fsync_boundary_crash(tmp_path / "wal.jsonl", durable_seq, torn=True)
    recover_and_check(tmp_path, shadows, durable_seq, covered_seq)


def test_no_sync_crash_still_recovers_a_consistent_prefix(tmp_path):
    """no-sync may lose acknowledged records, but never consistency."""
    rng = random.Random(73)
    live = LiveCollection.open(
        tmp_path, memtable_threshold=6, max_segments=2, snapshot_every=None
    )
    shadows = apply_tracked(live, rng, 30)
    covered_seq = live._covered_seq
    live.close()
    # disk kept an arbitrary flush-boundary prefix of the un-fsynced log
    simulate_fsync_boundary_crash(tmp_path / "wal.jsonl", durable_seq=17, torn=True)
    recover_and_check(tmp_path, shadows, durable_seq=min(17, covered_seq), covered_seq=0)


def test_replay_tolerates_tombstones_consumed_by_compaction(tmp_path):
    """A checkpoint written mid-tail may already reflect a tail delete."""
    live = LiveCollection.open(
        tmp_path, memtable_threshold=100, max_segments=100, snapshot_every=None
    )
    keys = [live.insert([i, i + 10, i + 20, i + 30, i + 40]) for i in range(4)]
    live.flush()                      # covered_seq = 4
    live.delete(keys[0])              # seq 5: tombstone on the sealed segment
    live.insert([9, 19, 29, 39, 49])  # seq 6: memtable only
    assert live.compact() is True     # consumes the segment AND the tombstone
    assert live._covered_seq == 4     # memtable non-empty: boundary stays put
    expected = logical_state(live)
    live.close()

    reopened = LiveCollection.open(tmp_path, memtable_threshold=100, max_segments=100)
    with reopened:
        # seq 5 replays as a delete of an already-absent key: a no-op
        assert reopened.stats().replayed == 2
        assert logical_state(reopened) == expected


def test_crash_between_manifest_and_truncation_is_harmless(tmp_path):
    """Replay must skip the covered prefix a crashed snapshot left behind."""
    live = LiveCollection.open(tmp_path, memtable_threshold=4, snapshot_every=None)
    for i in range(10):
        live.insert([i, i + 10, i + 20, i + 30, i + 40])
    expected = logical_state(live)
    covered = live._covered_seq
    assert covered == 8  # two flush checkpoints, memtable holds 2
    live.close()
    # the WAL was never truncated: it still holds all ten records

    reopened = LiveCollection.open(tmp_path, memtable_threshold=4)
    with reopened:
        assert reopened.stats().replayed == 2  # covered prefix skipped, not re-applied
        assert logical_state(reopened) == expected
