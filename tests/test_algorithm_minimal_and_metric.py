"""Behavioural tests for Minimal F&V and the metric-tree search wrappers."""

import pytest

from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.metric_search import BKTreeSearch, MTreeSearch, VPTreeSearch
from repro.algorithms.minimal_fv import MinimalFilterValidate, QueryNotPreparedError


class TestMinimalFilterValidate:
    def test_unprepared_query_raises(self, nyt_small, nyt_queries):
        algorithm = MinimalFilterValidate.build(nyt_small)
        with pytest.raises(QueryNotPreparedError):
            algorithm.search(nyt_queries[0], 0.2)

    def test_prepare_returns_result_count(self, nyt_small, nyt_queries):
        algorithm = MinimalFilterValidate.build(nyt_small)
        fv = FilterValidate.build(nyt_small)
        count = algorithm.prepare(nyt_queries[0], 0.2)
        assert count == len(fv.search(nyt_queries[0], 0.2))

    def test_is_prepared(self, nyt_small, nyt_queries):
        algorithm = MinimalFilterValidate.build(nyt_small)
        assert not algorithm.is_prepared(nyt_queries[0], 0.2)
        algorithm.prepare(nyt_queries[0], 0.2)
        assert algorithm.is_prepared(nyt_queries[0], 0.2)
        assert not algorithm.is_prepared(nyt_queries[0], 0.3)

    def test_prepare_workload(self, nyt_small, nyt_queries):
        algorithm = MinimalFilterValidate.build(nyt_small)
        algorithm.prepare_workload(nyt_queries, 0.1)
        assert all(algorithm.is_prepared(query, 0.1) for query in nyt_queries)

    def test_distance_calls_equal_result_size(self, nyt_small, nyt_queries):
        """The oracle touches exactly the true results — the lower bound of Figure 10."""
        algorithm = MinimalFilterValidate.build(nyt_small)
        for query in nyt_queries[:5]:
            algorithm.prepare(query, 0.2)
            result = algorithm.search(query, 0.2)
            assert result.stats.distance_calls == len(result)
            assert result.stats.candidates == len(result)
            assert result.stats.lists_accessed == 1

    def test_dfc_lower_bound_versus_fv(self, nyt_small, nyt_queries):
        minimal = MinimalFilterValidate.build(nyt_small)
        fv = FilterValidate.build(nyt_small)
        for query in nyt_queries[:5]:
            minimal.prepare(query, 0.2)
            assert (
                minimal.search(query, 0.2).stats.distance_calls
                <= fv.search(query, 0.2).stats.distance_calls
            )


@pytest.mark.parametrize("algorithm_class", [BKTreeSearch, MTreeSearch, VPTreeSearch])
class TestMetricSearchWrappers:
    def test_results_match_fv(self, algorithm_class, yago_small, yago_queries):
        metric = algorithm_class.build(yago_small)
        fv = FilterValidate.build(yago_small)
        for query in yago_queries[:5]:
            assert metric.search(query, 0.2).rids == fv.search(query, 0.2).rids

    def test_nodes_visited_recorded(self, algorithm_class, nyt_small, nyt_queries):
        metric = algorithm_class.build(nyt_small)
        result = metric.search(nyt_queries[0], 0.1)
        assert result.stats.nodes_visited > 0

    def test_tree_exposed(self, algorithm_class, nyt_small):
        metric = algorithm_class.build(nyt_small)
        assert len(metric.tree) == len(nyt_small)

    def test_distance_calls_bracketed_by_results_and_collection(
        self, algorithm_class, nyt_small, nyt_queries
    ):
        """Metric trees pay at least one distance evaluation per reported result
        and never more than one per indexed ranking per query."""
        metric = algorithm_class.build(nyt_small)
        theta = 0.1
        for query in nyt_queries[:5]:
            result = metric.search(query, theta)
            assert result.stats.distance_calls >= len(result)
            assert result.stats.distance_calls <= len(nyt_small)
