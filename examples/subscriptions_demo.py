#!/usr/bin/env python3
"""Standing-query demo: subscribe, mutate, watch exact deltas arrive.

The server demo answers queries one at a time; this demo registers them
as **standing queries** and lets the server push the changes:

1. a live collection is served over TCP (threaded transport, protocol v2);
2. a client subscribes to a range query — snapshot first, then
   server-initiated ``push`` frames carrying ``entered`` / ``moved`` /
   ``left`` deltas as commits land, multiplexed with the same
   connection's ordinary request/reply traffic;
3. a mixed insert/upsert/delete stream churns the collection; after every
   commit settles, the replayed snapshot+deltas result is asserted
   **byte-identical** to re-running the query from scratch — the same
   equivalence oracle the test suite uses;
4. an unpaced burst of commits shows coalescing: the dispatcher folds the
   backlog into fewer recomputes, so the subscriber sees fewer (exact)
   deltas than there were commits;
5. the ``repro_sub_*`` metrics and a clean unsubscribe wrap up.

Run with::

    PYTHONPATH=src python examples/subscriptions_demo.py
"""

from __future__ import annotations

import random
import time

from repro.api import Client, Database, DatabaseServer, Response
from repro.api.requests import AdminRequest
from repro.datasets.nyt import nyt_like_dataset

THETA = 0.3
K = 8


def result_bytes(matches) -> bytes:
    return Response(ok=True, matches=tuple(matches)).result_bytes()


def wait_until_equivalent(subscription, session, query, deadline_seconds=15.0):
    """Consume deltas until snapshot+deltas equals a fresh query; count them."""
    expected = result_bytes(
        session.range_query(query, THETA, collection="news").matches
    )
    deadline = time.monotonic() + deadline_seconds
    consumed = 0
    while subscription.result_bytes() != expected:
        if time.monotonic() > deadline:
            raise AssertionError("deltas never converged to the fresh answer")
        try:
            delta = subscription.get(timeout=0.5)
        except TimeoutError:
            continue
        if delta is not None:
            consumed += 1
    return consumed


def main() -> None:
    rankings = nyt_like_dataset(n=200, k=K, seed=11)
    rows = [list(ranking.items) for ranking in rankings]
    database = Database()
    live = database.create_live("news")
    for row in rows[:100]:
        live.insert(row)

    rng = random.Random(5)
    query = rows[3]

    with DatabaseServer(database, port=0) as server:
        with Client(*server.address) as client:
            session = database.session()
            subscription = client.subscribe(query, collection="news", theta=THETA)
            print(
                f"subscribed: {len(subscription.matches)} match(es) in the snapshot "
                f"(version {subscription.info['version']})"
            )

            # -- paced churn: equivalence after every single commit -------------
            deltas = 0
            keys = []
            for step in range(30):
                roll = rng.random()
                if roll < 0.6 or not keys:
                    keys.append(client.insert(rows[100 + step], collection="news"))
                elif roll < 0.8:
                    client.upsert(rng.choice(keys), rng.choice(rows), collection="news")
                else:
                    keys.remove(key := rng.choice(keys))
                    client.delete(key, collection="news")
                deltas += wait_until_equivalent(subscription, session, query)
            print(
                f"paced churn: 30 commits, {deltas} delta(s) consumed — replayed "
                f"result byte-identical to a fresh query after every one"
            )

            # -- unpaced burst: coalescing folds the backlog ---------------------
            # near-query variants, so every commit visibly moves the result set
            burst = 40
            for _ in range(burst):
                variant = list(query)
                i, j = rng.randrange(K), rng.randrange(K)
                variant[i], variant[j] = variant[j], variant[i]
                client.insert(variant, collection="news")
            burst_deltas = wait_until_equivalent(subscription, session, query)
            print(
                f"burst: {burst} unpaced commits arrived as {burst_deltas} exact "
                f"delta(s) — the dispatcher coalesced the backlog"
            )

            # -- the metrics the server kept while we watched --------------------
            response = client.execute(AdminRequest(collection="news", action="metrics"))
            for family in sorted(
                (f for f in (response.data or {}).get("metrics", [])
                 if f["name"].startswith("repro_sub_")),
                key=lambda f: f["name"],
            ):
                samples = ", ".join(
                    f"{sample['labels'] or ''}{sample['value']:g}"
                    for sample in family["samples"]
                ) or "0"
                print(f"  {family['name']} ({family['type']}): {samples}")

            subscription.unsubscribe()
            print("unsubscribed cleanly — the stream ended, the connection lives on")
            assert client.ping()

    database.close()
    print("demo complete")


if __name__ == "__main__":
    main()
