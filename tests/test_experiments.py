"""Tests for the experiment harness and the figure/table generators (tiny scale)."""

import pytest

from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.minimal_fv import MinimalFilterValidate
from repro.experiments.harness import (
    ExperimentSetup,
    compare_algorithms,
    measurements_as_series,
    run_workload,
)
from repro.experiments.figures import (
    figure3_cost_model,
    figure5_metric_trees,
    figure6_bktree_vs_invindex,
    figure7_coarse_tradeoff,
    figure8_nyt_comparison,
    figure9_yago_comparison,
    figure10_distance_calls,
)
from repro.experiments.tables import table5_model_accuracy, table6_index_build


class TestExperimentSetup:
    def test_create_nyt_preset(self):
        setup = ExperimentSetup.create(dataset="nyt", n=100, k=10, num_queries=5)
        assert setup.name == "nyt"
        assert len(setup.rankings) == 100
        assert len(setup.queries) == 5
        assert setup.k == 10

    def test_create_yago_preset(self):
        setup = ExperimentSetup.create(dataset="yago", n=80, k=5, num_queries=3)
        assert setup.name == "yago"
        assert setup.rankings.k == 5

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSetup.create(dataset="unknown")


class TestRunWorkload:
    @pytest.fixture(scope="class")
    def setup(self):
        return ExperimentSetup.create(dataset="nyt", n=150, k=10, num_queries=6)

    def test_measurement_fields(self, setup):
        algorithm = FilterValidate.build(setup.rankings)
        measurement = run_workload(algorithm, setup.queries, 0.2)
        assert measurement.algorithm == "F&V"
        assert measurement.num_queries == 6
        assert measurement.wall_seconds > 0.0
        assert measurement.stats.distance_calls > 0

    def test_minimal_fv_prepared_automatically(self, setup):
        algorithm = MinimalFilterValidate.build(setup.rankings)
        measurement = run_workload(algorithm, setup.queries, 0.2)
        assert measurement.total_results >= 0

    def test_as_row_flattens_counters(self, setup):
        algorithm = FilterValidate.build(setup.rankings)
        row = run_workload(algorithm, setup.queries, 0.2).as_row()
        assert row["algorithm"] == "F&V"
        assert "distance_calls" in row
        assert "wall_seconds" in row

    def test_compare_algorithms_covers_all_combinations(self, setup):
        measurements = compare_algorithms(setup, ["F&V", "ListMerge"], [0.1, 0.2])
        assert len(measurements) == 4
        assert {m.algorithm for m in measurements} == {"F&V", "ListMerge"}

    def test_measurements_as_series_pivot(self, setup):
        measurements = compare_algorithms(setup, ["F&V"], [0.1, 0.2])
        series = measurements_as_series(measurements, value="results")
        assert set(series["F&V"]) == {0.1, 0.2}


class TestFigureGenerators:
    def test_figure3_shapes(self):
        figure = figure3_cost_model(datasets=("nyt",), n=200, k=10, theta=0.2,
                                    theta_c_grid=[0.0, 0.1, 0.3, 0.5])
        payload = figure["datasets"]["nyt"]
        assert set(payload["series"]) == {"filter", "validate", "overall"}
        assert 0.0 <= payload["recommended_theta_c"] < 1.0
        overall = payload["series"]["overall"]
        for theta_c, total in overall.items():
            assert total == pytest.approx(
                payload["series"]["filter"][theta_c] + payload["series"]["validate"][theta_c]
            )

    def test_figure3_validate_cost_monotone(self):
        figure = figure3_cost_model(datasets=("yago",), n=200, k=10, theta=0.2,
                                    theta_c_grid=[0.0, 0.2, 0.4, 0.6])
        validate = figure["datasets"]["yago"]["series"]["validate"]
        ordered = [validate[x] for x in sorted(validate)]
        assert ordered == sorted(ordered)

    def test_figure7_series_and_recommendation(self):
        figure = figure7_coarse_tradeoff(
            datasets=("nyt",), n=200, k=10, theta=0.2,
            theta_c_grid=(0.1, 0.3, 0.5), num_queries=5,
        )
        payload = figure["datasets"]["nyt"]
        assert set(payload["series"]) == {"filtering", "validation", "overall"}
        assert payload["best_measured_theta_c"] in (0.1, 0.3, 0.5)

    def test_figure5_series_cover_both_trees(self):
        figure = figure5_metric_trees(
            n=80, ks=(5,), theta_for_k_sweep=0.1, thetas=(0.1, 0.2),
            k_for_theta_sweep=5, num_queries=3,
        )
        assert set(figure["by_k"]) == {"BK-tree", "M-tree"}
        assert set(figure["by_theta"]["M-tree"]) == {0.1, 0.2}
        for series in figure["by_theta"].values():
            assert all(value >= 0.0 for value in series.values())

    def test_figure6_series_cover_both_algorithms(self):
        figure = figure6_bktree_vs_invindex(
            n=80, ks=(5,), theta_for_k_sweep=0.1, thetas=(0.1,),
            k_for_theta_sweep=5, num_queries=3,
        )
        assert set(figure["by_k"]) == {"BK-tree", "F&V"}
        assert 5 in figure["by_k"]["F&V"]

    def test_figure8_and_9_rows_cover_requested_algorithms(self):
        for generator, dataset in ((figure8_nyt_comparison, "nyt"), (figure9_yago_comparison, "yago")):
            figure = generator(
                n=100, ks=(10,), thetas=(0.1,), num_queries=3,
                algorithms=("F&V", "ListMerge"),
            )
            assert figure["dataset"] == dataset
            series = figure["by_k"][10]["series"]
            assert set(series) == {"F&V", "ListMerge"}
            rows = figure["by_k"][10]["rows"]
            assert len(rows) == 2
            assert all(row["results"] >= 0 for row in rows)

    def test_figure10_counts_only_dfc_algorithms(self):
        figure = figure10_distance_calls(
            datasets=("nyt",), n=150, ks=(10,), thetas=(0.1,), num_queries=4,
            algorithms=("F&V", "MinimalF&V"),
        )
        series = figure["nyt"][10]["series"]
        assert set(series) == {"F&V", "MinimalF&V"}
        assert series["MinimalF&V"][0.1] <= series["F&V"][0.1]


class TestTableGenerators:
    def test_table6_rows(self):
        rows = table6_index_build(datasets=("yago",), n=120, k=10)
        names = {row["index"] for row in rows}
        assert {"Plain Inverted Index", "Augmented Inverted Index", "BK-tree",
                "M-tree", "Coarse Index", "Delta Inverted Index"} <= names
        for row in rows:
            assert row["size_mb"] > 0.0
            assert row["construction_seconds"] >= 0.0

    def test_table6_augmented_larger_than_plain(self):
        rows = table6_index_build(datasets=("yago",), n=120, k=10)
        by_name = {row["index"]: row for row in rows}
        assert (
            by_name["Augmented Inverted Index"]["size_mb"]
            > by_name["Plain Inverted Index"]["size_mb"]
        )

    def test_table6_inverted_index_has_no_construction_distance_calls(self):
        rows = table6_index_build(datasets=("yago",), n=120, k=10)
        by_name = {row["index"]: row for row in rows}
        assert by_name["Plain Inverted Index"]["construction_distance_calls"] == 0
        assert by_name["Coarse Index"]["construction_distance_calls"] > 0

    def test_table5_rows(self):
        rows = table5_model_accuracy(
            datasets=("nyt",), n=150, k=10, thetas=(0.2,), num_queries=4
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "nyt"
        assert row["theta"] == 0.2
        assert "difference_ms" in row
