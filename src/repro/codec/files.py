"""Durable file primitives for binary artifacts.

The codec layer owns the crash-safety discipline for the files it
defines, mirroring :func:`repro.live.manifest.atomic_write_json` for the
binary world: temp file, ``fsync`` of the temp file, atomic rename,
``fsync`` of the containing directory.  A crash at any point leaves
either the previous file or the complete new one — never a torn middle.

:func:`append_record` is the edit-log/WAL-side primitive: an in-place
append followed by ``fsync``, so the appended record is durable before
the caller takes any dependent action (e.g. truncating the WAL that
covered it).  A crash mid-append leaves a torn tail, which the RBF
framing detects (:class:`~repro.codec.rbf.TruncatedRecordError`) and
readers drop.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO

from repro.devtools.locktrace import mark_io

__all__ = [
    "append_record",
    "atomic_write_bytes",
    "fsync_directory",
]


def fsync_directory(path: Path) -> None:
    """``fsync`` a directory so a rename/create inside it survives a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` so a crash leaves the old file or the new, durably."""
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_suffix(path.suffix + ".tmp")
    mark_io(f"fsync:{path.name}")
    with open(temporary, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    temporary.replace(path)
    fsync_directory(path.parent)


def append_record(handle: BinaryIO, data: bytes) -> None:
    """Append ``data`` to an open binary handle and make it durable now."""
    mark_io(f"fsync:{os.path.basename(getattr(handle, 'name', '<handle>'))}")
    handle.write(data)
    handle.flush()
    os.fsync(handle.fileno())
