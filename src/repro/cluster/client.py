"""A cluster-aware client: routed reads, coordinator writes, self-correction.

:class:`ClusterClient` speaks the ordinary wire protocol — no new frames —
but knows about the cluster's versioned routing table:

* **Mutations** always go to the coordinator.  Insert keys are allocated
  centrally (so a clustered collection assigns the same keys a single
  node would) and every acknowledged write must enter the coordinator's
  replication log; a client that wrote straight to a shard would bypass
  both, which is exactly what the shard-side guards reject.
* **Queries** go straight to the shard primaries and are merged locally
  (see :mod:`repro.cluster.merge`), skipping the coordinator hop.  The
  client holds a cached :class:`~repro.cluster.routing.RoutingTable`; when
  the topology changed under it — a failover promoted a replica, a reshard
  moved slots — the stale shard answers with a ``not_primary`` or
  ``stale_routing`` envelope that *embeds the current table*, and the
  client installs it and retries.  No control-plane round trip: the error
  is the table update.

The self-correction loop is bounded (``max_retries``); a table refresh
from the coordinator is the fallback when a node died without answering.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.api.client import Client
from repro.api.requests import (
    AdminRequest,
    BatchRequest,
    KnnRequest,
    RangeQueryRequest,
    Request,
)
from repro.api.responses import Response
from repro.cluster.merge import (
    merge_batch_responses,
    merge_knn_responses,
    merge_range_responses,
)
from repro.cluster.routing import RoutingTable
from repro.core.errors import CollectionClosedError, NotPrimaryError, StaleRoutingError
from repro.core.ranking import Ranking

__all__ = ["ClusterClient"]

ItemsLike = Union[Ranking, Sequence[int]]

#: Transport-level failures that warrant a table refresh + retry.
_NODE_ERRORS = (ConnectionError, OSError, TimeoutError)


class ClusterClient:
    """Client for a coordinator-fronted cluster (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        *,
        collection: str = "default",
        timeout: Optional[float] = 10.0,
        max_retries: int = 3,
    ) -> None:
        self._collection = collection
        self._timeout = timeout
        self._max_retries = max_retries
        self._coordinator = Client(host, port, timeout=timeout, protocol=2)
        self._shard_clients: dict[str, Client] = {}
        self._table: Optional[RoutingTable] = None

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        for client in self._shard_clients.values():
            try:
                client.close()
            except OSError:
                pass  # best-effort close of an already-broken connection
        self._shard_clients.clear()
        self._coordinator.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- routing table ---------------------------------------------------------------

    @property
    def routing_table(self) -> RoutingTable:
        """The cached table, fetched from the coordinator on first use."""
        if self._table is None:
            self.refresh_routing()
        assert self._table is not None
        return self._table

    @property
    def routing_version(self) -> int:
        return self.routing_table.version

    def refresh_routing(self) -> RoutingTable:
        """Fetch the authoritative table from the coordinator."""
        response = self._coordinator.execute(
            AdminRequest(collection=self._collection, action="route")
        ).raise_for_error()
        table = RoutingTable.from_dict((response.data or {})["routing"])
        self._install(table)
        return table

    def _install(self, table: Optional[dict | RoutingTable]) -> bool:
        """Adopt a newer table (e.g. from an error envelope); False if stale."""
        if table is None:
            return False
        if isinstance(table, dict):
            table = RoutingTable.from_dict(table)
        if self._table is not None and table.version <= self._table.version:
            return False
        self._table = table
        return True

    def status(self) -> dict:
        """The coordinator's membership/lag view (``cluster status``)."""
        response = self._coordinator.execute(
            AdminRequest(collection=self._collection, action="route")
        ).raise_for_error()
        return (response.data or {})["status"]

    # -- mutations (always through the coordinator) ----------------------------------

    def insert(self, items: ItemsLike) -> int:
        return self._coordinator.insert(items, collection=self._collection)

    def upsert(self, key: int, items: ItemsLike) -> None:
        self._coordinator.upsert(key, items, collection=self._collection)

    def delete(self, key: int) -> None:
        self._coordinator.delete(key, collection=self._collection)

    # -- queries (direct to shards, merged locally) ----------------------------------

    def range_query(
        self,
        items: ItemsLike,
        theta: float,
        *,
        algorithm: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: int = 0,
    ) -> Response:
        request = RangeQueryRequest(
            collection=self._collection,
            items=Ranking(items).items,
            theta=theta,
            algorithm=algorithm,
        )
        responses = self._fan_out(request)
        return merge_range_responses(responses, limit=limit, cursor=cursor)

    def knn(self, items: ItemsLike, k: int, *, algorithm: Optional[str] = None) -> Response:
        request = KnnRequest(
            collection=self._collection, items=Ranking(items).items, k=k, algorithm=algorithm
        )
        return merge_knn_responses(self._fan_out(request), k)

    def batch(
        self,
        queries: Sequence[ItemsLike],
        theta: float,
        *,
        algorithm: Optional[str] = None,
    ) -> Response:
        request = BatchRequest(
            collection=self._collection,
            queries=tuple(Ranking(query).items for query in queries),
            theta=theta,
            algorithm=algorithm,
        )
        return merge_batch_responses(self._fan_out(request))

    def _fan_out(self, request: Request) -> list[Response]:
        """One checked answer per shard, self-correcting on stale routing."""
        last_error: Optional[Exception] = None
        for _ in range(self._max_retries + 1):
            table = self.routing_table
            try:
                return [
                    self._ask_shard(table.shard(shard_id).primary, request)
                    for shard_id in range(table.num_shards)
                ]
            except (NotPrimaryError, StaleRoutingError) as error:
                last_error = error
                # the envelope carries the fresh table; fall back to a
                # coordinator round trip when it (unusually) does not
                if not self._install(error.routing):
                    self.refresh_routing()
            except (*_NODE_ERRORS, CollectionClosedError) as error:
                # a dying node can still answer one last frame — with a
                # collection_closed envelope; treat it like a dead socket
                last_error = error
                self.refresh_routing()
        raise ConnectionError(
            f"query failed after {self._max_retries + 1} routing attempts"
        ) from last_error

    def _ask_shard(self, address: str, request: Request) -> Response:
        try:
            response = self._shard_client(address).execute(request)
        except _NODE_ERRORS:
            self._drop_shard_client(address)
            raise
        response.raise_for_error()
        return response

    def _shard_client(self, address: str) -> Client:
        client = self._shard_clients.get(address)
        if client is None or client.closed:
            host, _, port = address.rpartition(":")
            client = Client(host, int(port), timeout=self._timeout, protocol=2)
            self._shard_clients[address] = client
        return client

    def _drop_shard_client(self, address: str) -> None:
        client = self._shard_clients.pop(address, None)
        if client is not None:
            try:
                client.close()
            except OSError:
                pass  # best-effort close of an already-broken connection

    def __repr__(self) -> str:
        version = self._table.version if self._table is not None else "?"
        return (
            f"ClusterClient(collection={self._collection!r}, "
            f"coordinator={self._coordinator.address!r}, table=v{version})"
        )
