"""Command-line interface: ``repro-topk``.

Subcommands
-----------
``generate``
    Generate a synthetic dataset preset (NYT-like or Yago-like) and write it
    to a TSV/JSON file.
``query``
    Load a ranking file, build one of the registered algorithms, and answer a
    query supplied on the command line.
``compare``
    Run the full algorithm comparison on a dataset preset and print the
    resulting table (a small-scale Figure 8/9).
``batch-query``
    Serve a query workload through the sharded query engine (planner +
    result cache) and print per-request decisions plus throughput totals.
``ingest``
    Apply a JSONL mutation stream (insert/delete/upsert) to a live-update
    collection, optionally answering query probes mid-stream, and print
    mutation/flush/compaction statistics.  ``--fsync`` / ``--commit-batch``
    / ``--commit-interval`` pick the WAL durability mode and
    ``--snapshot-every`` tunes the automatic snapshot policy; the summary
    names the guarantee the run executed under.
``serve``
    Load a ranking file into a named collection (static, or live with
    ``--live``) and serve it over TCP until a client sends ``--admin
    shutdown`` (or Ctrl-C).  ``--async`` picks the asyncio transport;
    ``--shard I/N`` serves one round-robin shard of the file — boot N of
    these and point ``batch-query --remote-shards`` (or a
    ``RemoteShardExecutor``) at them for a scale-out topology.  ``--empty``
    serves a bare database with no collection — the blank node a cluster
    coordinator provisions over wire DDL.
``cluster``
    ``cluster up --shards N --replicas R`` spawns ``N*(1+R)`` empty shard
    servers, assembles them into a hash-routed, WAL-replicated cluster, and
    serves the coordinator (same wire protocol as ``serve``);
    ``cluster status`` prints membership, routing version, and replication
    lag; ``cluster reshard --moves 3:1,7:0`` migrates hash slots online.
``client``
    Connect to a running server (protocol v2 with v1 fallback; pin with
    ``--protocol``) and issue one request: a range query (``--query``), a
    k-NN query (``--query`` + ``--knn``), a mutation (``--insert`` /
    ``--delete`` / ``--upsert``), or an admin action (``--admin
    ping|collections|stats|metrics|slow_queries|create|drop|flush|compact|
    snapshot|shutdown`` — ``create`` takes ``--engine static|live`` plus
    optionally ``--rankings``, ``--shards``, ``--algorithm``).  ``--trace``
    asks the server to trace a query and prints the span tree it returns;
    ``--admin metrics --format prometheus`` prints scrape-ready text
    exposition; ``--admin slow_queries`` prints the N slowest requests
    with their span trees.  ``--query`` + ``--subscribe`` registers a
    standing query instead: the snapshot prints immediately, result deltas
    stream as the collection changes, and the client unsubscribes cleanly
    after ``--deltas N`` of them (protocol v2 servers only).
``figure`` / ``table``
    Regenerate one of the paper's figures or tables and print the report.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from collections.abc import Sequence

from repro.analysis.report import format_table
from repro.api import (
    ADMIN_ACTIONS,
    AdminRequest,
    AsyncDatabaseServer,
    Client,
    COLLECTION_ENGINES,
    Database,
    DatabaseServer,
    RemoteShardExecutor,
)
from repro.api.requests import KnnRequest, RangeQueryRequest
from repro.api.server import DEFAULT_HOST, DEFAULT_PORT
from repro.cluster import DEFAULT_NUM_SLOTS, Coordinator
from repro.core.errors import ReproError
from repro.obs.tracing import span_tree_lines
from repro.core.ranking import Ranking
from repro.algorithms.registry import (
    COMPARISON_ALGORITHMS,
    LIVE_ALGORITHMS,
    available_algorithms,
    make_algorithm,
)
from repro.datasets.loader import load_rankings, save_rankings
from repro.datasets.queries import sample_queries
from repro.live import DEFAULT_LIVE_ALGORITHM, LiveCollection
from repro.live.collection import SNAPSHOT_FILENAME, WAL_BINARY_FILENAME, WAL_FILENAME
from repro.live.manifest import MANIFEST_BINARY_FILENAME, MANIFEST_FILENAME
from repro.service import QueryEngine, partition_rankings
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.yago import yago_like_dataset
from repro.experiments import figures as figure_module
from repro.experiments import tables as table_module
from repro.experiments.harness import ExperimentSetup, compare_algorithms

_FIGURES = {
    "3": lambda args: figure_module.figure3_cost_model(n=args.n, k=args.k, print_report=True),
    "5": lambda args: figure_module.figure5_metric_trees(n=args.n, print_report=True),
    "6": lambda args: figure_module.figure6_bktree_vs_invindex(n=args.n, print_report=True),
    "7": lambda args: figure_module.figure7_coarse_tradeoff(n=args.n, k=args.k, print_report=True),
    "8": lambda args: figure_module.figure8_nyt_comparison(n=args.n, print_report=True),
    "9": lambda args: figure_module.figure9_yago_comparison(n=args.n, print_report=True),
    "10": lambda args: figure_module.figure10_distance_calls(n=args.n, print_report=True),
}

_TABLES = {
    "5": lambda args: table_module.table5_model_accuracy(n=args.n, k=args.k, print_report=True),
    "6": lambda args: table_module.table6_index_build(n=args.n, k=args.k, print_report=True),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-topk",
        description="Top-k-list similarity search (EDBT 2015 coarse-index reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset preset")
    generate.add_argument("output", help="output file (.tsv or .json)")
    generate.add_argument("--dataset", choices=("nyt", "yago"), default="nyt")
    generate.add_argument("--n", type=int, default=5000, help="number of rankings")
    generate.add_argument("--k", type=int, default=10, help="ranking size")

    query = subparsers.add_parser("query", help="answer one similarity query over a ranking file")
    query.add_argument("rankings", help="ranking file produced by 'generate' (or your own TSV)")
    query.add_argument("--algorithm", default="Coarse+Drop", choices=available_algorithms())
    query.add_argument("--query", required=True, help="comma-separated item ids, best first")
    query.add_argument("--theta", type=float, default=0.2, help="normalised distance threshold")
    query.add_argument("--theta-c", type=float, default=None, help="coarse partitioning threshold")
    query.add_argument("--limit", type=int, default=20, help="print at most this many matches")

    compare = subparsers.add_parser("compare", help="run the algorithm comparison on a preset")
    compare.add_argument("--dataset", choices=("nyt", "yago"), default="nyt")
    compare.add_argument("--n", type=int, default=1500)
    compare.add_argument("--k", type=int, default=10)
    compare.add_argument("--queries", type=int, default=30)
    compare.add_argument("--thetas", default="0.1,0.2,0.3", help="comma-separated thresholds")

    batch = subparsers.add_parser(
        "batch-query", help="serve a query workload through the sharded engine"
    )
    batch.add_argument("rankings", help="ranking file produced by 'generate' (or your own TSV)")
    batch.add_argument("--queries", type=int, default=50, help="queries sampled from the collection")
    batch.add_argument("--seed", type=int, default=3, help="query sampling seed")
    batch.add_argument("--theta", type=float, default=0.2, help="normalised distance threshold")
    batch.add_argument("--shards", type=int, default=2, help="number of index shards")
    batch.add_argument(
        "--algorithm",
        default=None,
        # Minimal F&V needs its oracle lists materialised per query and
        # cannot serve ad-hoc traffic, so it is not offered here.
        choices=[name for name in available_algorithms() if name != "MinimalF&V"],
        help="pin one algorithm instead of letting the planner choose",
    )
    batch.add_argument("--cache-capacity", type=int, default=1024, help="result-cache entries")
    batch.add_argument("--no-cache", action="store_true", help="disable the result cache")
    batch.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="fan-out backend for the shards (process = real CPU parallelism)",
    )
    batch.add_argument(
        "--remote-shards", default=None,
        help="comma-separated host:port shard servers (protocol v2); overrides"
        " --shards/--executor and fans sub-queries out over the network",
    )
    batch.add_argument(
        "--remote-collection", default="default",
        help="collection name each shard server serves its shard under",
    )
    batch.add_argument(
        "--wire-format", choices=("json", "binary"), default="json",
        help="frame-body format for --remote-shards fan-out (negotiated at"
        " hello; binary moves sub-query replies as RBF columnar buffers)",
    )
    batch.add_argument(
        "--repeat", type=int, default=1, help="passes over the batch (later passes hit the cache)"
    )
    batch.add_argument(
        "--show", type=int, default=10, help="print the first N per-request planner decisions"
    )

    ingest = subparsers.add_parser(
        "ingest", help="apply a JSONL mutation stream to a live-update collection"
    )
    ingest.add_argument(
        "mutations",
        help='JSONL stream: {"op": "insert"|"delete"|"upsert", "items": [...], "key": ...}'
        " (one mutation per line; '-' reads stdin)",
    )
    ingest.add_argument(
        "--dir", default=None, help="persistence directory (WAL + snapshots); in-memory if omitted"
    )
    ingest.add_argument(
        "--format", choices=("json", "binary"), default=None,
        help="storage format for --dir: RBF binary or JSON artifacts (default:"
        " match what the directory already holds, json when fresh); switching"
        " formats migrates the directory in place",
    )
    ingest.add_argument(
        "--memtable-threshold", type=int, default=256, help="memtable size sealed into a segment"
    )
    ingest.add_argument(
        "--max-segments", type=int, default=4, help="segment count that triggers compaction"
    )
    ingest.add_argument("--shards", type=int, default=1, help="shard count of the compacted base")
    ingest.add_argument(
        "--algorithm", default="F&V", choices=list(LIVE_ALGORITHMS),
        help="index algorithm for base and segment queries",
    )
    ingest.add_argument(
        "--query", default=None, help="comma-separated item ids probed during ingestion"
    )
    ingest.add_argument("--theta", type=float, default=0.2, help="probe threshold")
    ingest.add_argument("--knn", type=int, default=0, help="also probe k nearest neighbours")
    ingest.add_argument(
        "--probe-every", type=int, default=100, help="mutations between --query probes"
    )
    ingest.add_argument(
        "--snapshot", action="store_true", help="write a snapshot when the stream ends"
    )
    ingest.add_argument(
        "--fsync", action="store_true",
        help="fsync the WAL after every mutation (per-record durability; requires --dir)",
    )
    ingest.add_argument(
        "--commit-batch", type=int, default=None,
        help="group-commit: fsync the WAL once per this many mutations (requires --dir)",
    )
    ingest.add_argument(
        "--commit-interval", type=float, default=None,
        help="group-commit: fsync the WAL once a batch is this many seconds old (requires --dir)",
    )
    ingest.add_argument(
        "--snapshot-every", type=int, default=1024,
        help="auto-snapshot once this many WAL records accumulate (0 disables the policy)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a ranking file over TCP (length-prefixed JSON frames)"
    )
    serve.add_argument(
        "rankings", nargs="?", default=None,
        help="ranking file produced by 'generate' (or your own TSV); optional when"
        " '--live --dir' reopens existing durable state",
    )
    serve.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--name", default="default", help="collection name clients address requests to"
    )
    serve.add_argument(
        "--live", action="store_true",
        help="serve as a mutable live collection (accepts insert/delete/upsert)",
    )
    serve.add_argument(
        "--dir", default=None,
        help="persistence directory for --live (WAL + snapshots; enables"
        " '--admin snapshot'); in-memory if omitted",
    )
    serve.add_argument(
        "--format", choices=("json", "binary"), default=None,
        help="storage format for '--live --dir': RBF binary or JSON artifacts"
        " (default: match what the directory already holds, json when fresh);"
        " switching formats migrates the directory in place",
    )
    serve.add_argument("--shards", type=int, default=1, help="number of index shards")
    serve.add_argument(
        "--shard", default=None, metavar="I/N",
        help="serve only shard I of an N-way round-robin partitioning (static"
        " only) — the building block of a remote shard topology",
    )
    serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve on the asyncio transport (one event loop, no thread per"
        " connection) instead of the threaded server",
    )
    serve.add_argument(
        "--algorithm", default=None, choices=list(LIVE_ALGORITHMS),
        help="pin one algorithm (static: pins the planner; live: index algorithm)",
    )
    serve.add_argument("--cache-capacity", type=int, default=1024, help="result-cache entries")
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync the WAL after every mutation (per-record durability; needs --live --dir)",
    )
    serve.add_argument(
        "--commit-batch", type=int, default=None,
        help="group-commit: fsync the WAL once per this many mutations (needs --live --dir)",
    )
    serve.add_argument(
        "--commit-interval", type=float, default=None,
        help="group-commit: fsync the WAL once a batch is this many seconds old"
        " (needs --live --dir)",
    )
    serve.add_argument(
        "--ready-file", default=None,
        help="write 'host port' here once listening (for scripts and CI)",
    )
    serve.add_argument(
        "--empty", action="store_true",
        help="serve an empty database with no collection; a cluster coordinator"
        " provisions it over wire DDL ('cluster up' spawns these)",
    )

    cluster = subparsers.add_parser(
        "cluster", help="assemble and operate a replicated, hash-routed cluster"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    up = cluster_sub.add_parser(
        "up",
        help="spawn empty shard servers, assemble them, and serve the coordinator",
    )
    up.add_argument("--shards", type=int, default=2, help="number of shards")
    up.add_argument("--replicas", type=int, default=1, help="replicas per shard")
    up.add_argument("--spares", type=int, default=0, help="extra unassigned nodes")
    up.add_argument("--collection", default="default", help="the clustered collection's name")
    up.add_argument(
        "--algorithm", default=None, choices=list(LIVE_ALGORITHMS),
        help="index algorithm for every shard's live collection",
    )
    up.add_argument(
        "--format", choices=("json", "binary"), default="json",
        help="wire format for coordinator-to-shard fan-out and replication"
        " shipping (negotiated at hello; binary moves sub-query replies as"
        " RBF frame bodies)",
    )
    up.add_argument("--host", default=DEFAULT_HOST, help="coordinator bind address")
    up.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="coordinator bind port (0 picks a free port)",
    )
    up.add_argument(
        "--slots", type=int, default=DEFAULT_NUM_SLOTS,
        help="hash slots in the routing table (resharding moves these)",
    )
    up.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="seconds between node health probes",
    )
    up.add_argument(
        "--node-timeout", type=float, default=10.0, help="per-node socket timeout (seconds)"
    )
    up.add_argument(
        "--state-file", default=None,
        help="write the topology here as JSON (addresses + node pids — lets"
        " scripts and chaos tests kill a specific node)",
    )
    up.add_argument(
        "--ready-file", default=None,
        help="write 'host port' of the coordinator here once serving",
    )
    for sub in ("status", "reshard"):
        sub_parser = cluster_sub.add_parser(
            sub,
            help="print membership, routing version, and replication lag"
            if sub == "status"
            else "move hash slots between shards online",
        )
        sub_parser.add_argument("--host", default=DEFAULT_HOST, help="coordinator address")
        sub_parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="coordinator port")
        sub_parser.add_argument("--collection", default="default", help="clustered collection")
        sub_parser.add_argument(
            "--timeout", type=float, default=10.0, help="socket timeout (seconds)"
        )
        if sub == "reshard":
            sub_parser.add_argument(
                "--moves", required=True,
                help="comma-separated slot:shard pairs, e.g. '3:1,7:0'",
            )

    client = subparsers.add_parser("client", help="issue one request to a running server")
    client.add_argument("--host", default=DEFAULT_HOST, help="server address")
    client.add_argument("--port", type=int, default=DEFAULT_PORT, help="server port")
    client.add_argument("--collection", default="default", help="collection to address")
    operation = client.add_mutually_exclusive_group(required=True)
    operation.add_argument("--query", help="comma-separated item ids, best first")
    operation.add_argument("--insert", help="comma-separated item ids to insert")
    operation.add_argument("--delete", type=int, default=None, help="logical key to delete")
    operation.add_argument("--upsert", type=int, default=None, help="logical key to upsert")
    operation.add_argument("--admin", choices=list(ADMIN_ACTIONS), help="admin action")
    client.add_argument("--items", default=None, help="item ids for --upsert")
    client.add_argument(
        "--engine", choices=list(COLLECTION_ENGINES), default=None,
        help="for '--admin create': the collection engine (static or live)",
    )
    client.add_argument(
        "--rankings", default=None,
        help="for '--admin create': ranking file whose rows become the"
        " collection's data (static) or seed (live)",
    )
    client.add_argument(
        "--shards", type=int, default=None,
        help="for '--admin create': shard count of the new collection",
    )
    client.add_argument(
        "--protocol", type=int, choices=(1, 2), default=None,
        help="pin the wire protocol version (default: negotiate v2, fall back to v1)",
    )
    client.add_argument(
        "--wire-format", choices=("json", "binary"), default=None,
        help="ask for RBF binary frame bodies on hot request shapes"
        " (negotiated at hello; falls back to json when the server lacks it)",
    )
    client.add_argument(
        "--subscribe", action="store_true",
        help="register --query as a standing query: print the snapshot, then"
        " stream result deltas as the collection changes (protocol v2 only)",
    )
    client.add_argument(
        "--deltas", type=int, default=1,
        help="with --subscribe: unsubscribe after this many deltas (0 streams"
        " until the server ends the subscription)",
    )
    client.add_argument("--theta", type=float, default=0.2, help="range-query threshold")
    client.add_argument(
        "--knn", type=int, default=0, help="answer --query as a k-NN query for this k"
    )
    client.add_argument(
        "--algorithm", default=None, help="pin the serving algorithm for this request"
    )
    client.add_argument("--limit", type=int, default=20, help="print at most this many matches")
    client.add_argument("--timeout", type=float, default=10.0, help="socket timeout (seconds)")
    client.add_argument(
        "--trace", action="store_true",
        help="ask the server to trace the request and print its span tree"
        " (protocol v2 only; silently dropped on a v1 connection)",
    )
    client.add_argument(
        "--format", choices=("json", "prometheus"), default=None,
        help="for '--admin metrics': structured JSON (default) or Prometheus"
        " text exposition",
    )
    client.add_argument(
        "--cluster", action="store_true",
        help="for '--admin metrics' against a coordinator: merge every cluster"
        " node's metrics into one node-labelled exposition",
    )

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", choices=sorted(_FIGURES))
    figure.add_argument("--n", type=int, default=1000)
    figure.add_argument("--k", type=int, default=10)

    table = subparsers.add_parser("table", help="regenerate one of the paper's tables")
    table.add_argument("number", choices=sorted(_TABLES))
    table.add_argument("--n", type=int, default=1000)
    table.add_argument("--k", type=int, default=10)

    lint = subparsers.add_parser(
        "lint", help="run the project's static-analysis rules over a source tree"
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: <root>/src)"
    )
    lint.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="lint_format",
        help="report format (default: text)",
    )
    lint.add_argument("--rules", default=None, help="comma-separated rule ids to run")
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    if args.dataset == "nyt":
        rankings = nyt_like_dataset(n=args.n, k=args.k)
    else:
        rankings = yago_like_dataset(n=args.n, k=args.k)
    fmt = "json" if args.output.endswith(".json") else "tsv"
    path = save_rankings(rankings, args.output, fmt=fmt)
    print(f"wrote {len(rankings)} rankings (k={rankings.k}) to {path}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    rankings = load_rankings(args.rankings)
    try:
        items = [int(token) for token in args.query.split(",") if token.strip()]
    except ValueError:
        print("error: --query must be a comma-separated list of integer item ids", file=sys.stderr)
        return 2
    query = Ranking(items)
    kwargs = {}
    if args.theta_c is not None and args.algorithm in ("Coarse", "Coarse+Drop"):
        kwargs["theta_c"] = args.theta_c
    algorithm = make_algorithm(args.algorithm, rankings, **kwargs)
    if args.algorithm == "MinimalF&V":
        algorithm.prepare(query, args.theta)
    result = algorithm.search(query, args.theta)
    print(f"{len(result)} rankings within theta={args.theta} ({args.algorithm})")
    for match in list(result)[: args.limit]:
        print(f"  rid={match.rid}  distance={match.distance:.4f}  items={list(match.ranking.items)}")
    stats = result.stats.as_dict()
    print(
        f"distance calls: {stats['distance_calls']:.0f}  "
        f"postings scanned: {stats['postings_scanned']:.0f}  "
        f"candidates: {stats['candidates']:.0f}"
    )
    return 0


def _command_batch_query(args: argparse.Namespace) -> int:
    if args.queries <= 0 or args.repeat <= 0:
        print("error: --queries and --repeat must be positive", file=sys.stderr)
        return 2
    if args.shards <= 0:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    if args.cache_capacity < 0:
        print("error: --cache-capacity must be non-negative", file=sys.stderr)
        return 2
    if not 0.0 <= args.theta < 1.0:
        print("error: --theta must lie in [0, 1)", file=sys.stderr)
        return 2
    rankings = load_rankings(args.rankings)
    queries = sample_queries(rankings, args.queries, seed=args.seed)
    algorithms = None if args.algorithm is None else [args.algorithm]
    capacity = 0 if args.no_cache else args.cache_capacity
    executor = args.executor
    remote = None
    num_shards = args.shards
    if args.remote_shards is not None:
        addresses = [token.strip() for token in args.remote_shards.split(",") if token.strip()]
        if not addresses:
            print("error: --remote-shards must list host:port addresses", file=sys.stderr)
            return 2
        try:
            remote = RemoteShardExecutor(
                addresses,
                collection=args.remote_collection,
                wire_format=args.wire_format,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        executor = remote
        num_shards = len(addresses)
        print(
            f"fanning out to {num_shards} remote shard server(s)"
            f" ({args.wire_format} wire format): "
            + ", ".join(f"{host}:{port}" for host, port in remote.addresses)
        )
    try:
        return _serve_batch_workload(args, rankings, queries, algorithms, capacity,
                                     num_shards, executor)
    except (ConnectionError, TimeoutError) as error:
        print(f"error: remote shard fan-out failed: {error}", file=sys.stderr)
        return 1
    except (ReproError, ValueError, KeyError) as error:
        # typed shard-server failures (unknown collection, ...) and topology
        # mismatches must exit like every other CLI error, not traceback
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if remote is not None:
            remote.close()


def _serve_batch_workload(
    args: argparse.Namespace, rankings, queries, algorithms, capacity, num_shards, executor
) -> int:
    with QueryEngine(
        rankings,
        num_shards=num_shards,
        algorithms=algorithms,
        cache_capacity=capacity,
        executor=executor,
    ) as engine:
        shown = 0
        start = time.perf_counter()
        for round_number in range(args.repeat):
            for response in engine.batch_query(queries, args.theta):
                stats = response.stats
                if shown < args.show:
                    shown += 1
                    origin = "cache" if stats.cache_hit else stats.planner_source
                    print(
                        f"  [{shown:3d}] {stats.algorithm:12s} via {origin:8s} "
                        f"results={stats.results:<4d} "
                        f"latency={stats.latency_seconds * 1000.0:7.2f}ms"
                    )
        elapsed = time.perf_counter() - start
        totals = engine.stats()
        requests = totals.requests
        qps = requests / elapsed if elapsed > 0 else float("inf")
        planner_names = ", ".join(engine.planner.candidates)
        print(
            f"\nserved {requests} requests in {elapsed:.3f}s over "
            f"{engine.num_shards} shard(s): {qps:.1f} QPS"
        )
        print(f"planner candidates: {planner_names}")
        picks = ", ".join(
            f"{name} x{count}" for name, count in sorted(totals.algorithm_counts.items())
        )
        print(f"algorithm picks: {picks or 'none (all cache hits)'}")
        cache_stats = totals.cache
        cache_state = "off" if capacity == 0 else f"capacity {capacity}"
        print(
            f"cache ({cache_state}): {cache_stats.hits} hits / {cache_stats.lookups} lookups "
            f"(hit rate {cache_stats.hit_rate:.1%})"
        )
        print(f"mean latency: {totals.mean_latency_seconds * 1000.0:.2f}ms")
    return 0


def _parse_query_items(text: str) -> list[int]:
    return [int(token) for token in text.split(",") if token.strip()]


def _run_ingest_probe(live: LiveCollection, args: argparse.Namespace, applied: int) -> None:
    query = Ranking(_parse_query_items(args.query))
    start = time.perf_counter()
    result = live.range_query(query, args.theta, algorithm=args.algorithm)
    elapsed = time.perf_counter() - start
    line = (
        f"  probe @{applied:>6d} mutations: {len(result):4d} results "
        f"in {elapsed * 1000.0:7.2f}ms"
    )
    if args.knn > 0:
        start = time.perf_counter()
        knn = live.knn(query, args.knn, algorithm=args.algorithm)
        knn_elapsed = time.perf_counter() - start
        line += f"  |  {args.knn}-NN in {knn_elapsed * 1000.0:7.2f}ms (best rid={knn.rids[0] if knn.rids else '-'})"
    print(line)


def _command_ingest(args: argparse.Namespace) -> int:
    if args.memtable_threshold <= 0 or args.max_segments <= 0 or args.shards <= 0:
        print(
            "error: --memtable-threshold, --max-segments and --shards must be positive",
            file=sys.stderr,
        )
        return 2
    if args.probe_every <= 0:
        print("error: --probe-every must be positive", file=sys.stderr)
        return 2
    if args.query is not None:
        try:
            _parse_query_items(args.query)
        except ValueError:
            print("error: --query must be a comma-separated list of integer item ids", file=sys.stderr)
            return 2
    if args.snapshot and args.dir is None:
        print("error: --snapshot requires --dir", file=sys.stderr)
        return 2
    if args.format is not None and args.dir is None:
        print("error: --format requires --dir", file=sys.stderr)
        return 2
    durability_flags = args.fsync or args.commit_batch is not None or args.commit_interval is not None
    if durability_flags and args.dir is None:
        print("error: --fsync/--commit-batch/--commit-interval require --dir", file=sys.stderr)
        return 2
    if args.fsync and (args.commit_batch is not None or args.commit_interval is not None):
        print("error: --fsync conflicts with --commit-batch/--commit-interval", file=sys.stderr)
        return 2
    if args.commit_batch is not None and args.commit_batch <= 0:
        print("error: --commit-batch must be positive", file=sys.stderr)
        return 2
    if args.commit_interval is not None and args.commit_interval <= 0:
        print("error: --commit-interval must be positive", file=sys.stderr)
        return 2
    if args.snapshot_every < 0:
        print("error: --snapshot-every must be non-negative", file=sys.stderr)
        return 2
    if args.dir is not None:
        live = LiveCollection.open(
            args.dir,
            format=args.format,
            memtable_threshold=args.memtable_threshold,
            max_segments=args.max_segments,
            num_shards=args.shards,
            sync=args.fsync,
            commit_batch=args.commit_batch,
            commit_interval=args.commit_interval,
            snapshot_every=args.snapshot_every or None,
        )
        if live.stats().replayed:
            print(f"replayed {live.stats().replayed} WAL record(s) from {args.dir}")
    else:
        live = LiveCollection(
            memtable_threshold=args.memtable_threshold,
            max_segments=args.max_segments,
            num_shards=args.shards,
        )
    try:
        if args.mutations == "-":
            stream = sys.stdin
        else:
            stream = open(args.mutations, encoding="utf-8")
    except OSError as error:
        live.close()
        print(f"error: cannot read mutation stream: {error}", file=sys.stderr)
        return 2
    applied = 0
    errors = 0
    try:  # from here on the collection is always closed, even on a probe failure
        start = time.perf_counter()
        try:
            for line_number, line in enumerate(stream, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    payload = json.loads(line)
                    op = payload["op"]
                    if op == "insert":
                        live.insert(payload["items"])
                    elif op == "delete":
                        live.delete(int(payload["key"]))
                    elif op == "upsert":
                        live.upsert(int(payload["key"]), payload["items"])
                    else:
                        raise ValueError(f"unknown op {op!r}")
                except Exception as error:  # repro: noqa[no-bare-except] reported to stderr, counted, dirty streams continue
                    errors += 1
                    print(f"  line {line_number}: skipped ({error})", file=sys.stderr)
                    continue
                applied += 1
                if args.query is not None and applied % args.probe_every == 0:
                    _run_ingest_probe(live, args, applied)
        finally:
            if stream is not sys.stdin:
                stream.close()
        elapsed = time.perf_counter() - start
        if args.query is not None and applied % args.probe_every != 0:
            _run_ingest_probe(live, args, applied)
        stats = live.stats()
        rate = applied / elapsed if elapsed > 0 else float("inf")
        print(f"\napplied {applied} mutation(s) in {elapsed:.3f}s ({rate:.0f} mutations/s)"
              + (f", skipped {errors}" if errors else ""))
        print(
            f"  inserts={stats.inserts} deletes={stats.deletes} upserts={stats.upserts} "
            f"flushes={stats.flushes} compactions={stats.compactions} "
            f"snapshots={stats.snapshots}"
        )
        print(
            f"  live rankings: {len(live)}  memtable: {live.memtable_size}  "
            f"segments: {live.segment_count}  base: {live.base_size}  "
            f"tombstones: {live.tombstone_count}"
        )
        durability = stats.durability
        if durability == "group-commit":
            bounds = []
            if args.commit_batch is not None:
                bounds.append(f"batch={args.commit_batch}")
            if args.commit_interval is not None:
                bounds.append(f"interval={args.commit_interval}s")
            durability += f" ({', '.join(bounds)})"
        if stats.durability != "in-memory":
            durability += f", {stats.storage_format} storage"
        print(f"  durability: {durability}"
              + ("  (acknowledged writes may be lost on power loss)"
                 if stats.durability in ("in-memory", "no-sync") else ""))
        if args.snapshot:
            path = live.snapshot()
            print(f"snapshot written to {path}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        live.close()
    return 0


def _parse_shard_spec(text: str) -> tuple[int, int]:
    index_text, separator, count_text = text.partition("/")
    try:
        if not separator:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"--shard must look like I/N (e.g. 0/2), got {text!r}") from None
    if count <= 0 or not 0 <= index < count:
        raise ValueError(f"--shard needs 0 <= I < N, got {text!r}")
    return index, count


def _command_serve(args: argparse.Namespace) -> int:
    if args.empty:
        if args.rankings is not None or args.live or args.shard is not None or args.dir:
            print(
                "error: --empty serves a bare database; drop rankings/--live/--shard/--dir",
                file=sys.stderr,
            )
            return 2
        return _serve_empty(args)
    if args.shards <= 0:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    shard_spec = None
    if args.shard is not None:
        if args.live:
            print("error: --shard partitions a static collection; drop --live", file=sys.stderr)
            return 2
        if args.rankings is None:
            print("error: --shard needs a rankings file to partition", file=sys.stderr)
            return 2
        try:
            shard_spec = _parse_shard_spec(args.shard)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.cache_capacity < 0:
        print("error: --cache-capacity must be non-negative", file=sys.stderr)
        return 2
    if args.dir is not None and not args.live:
        print("error: --dir requires --live", file=sys.stderr)
        return 2
    if args.format is not None and (not args.live or args.dir is None):
        print("error: --format requires --live --dir", file=sys.stderr)
        return 2
    durability_flags = (
        args.fsync or args.commit_batch is not None or args.commit_interval is not None
    )
    if durability_flags and args.dir is None:
        print("error: --fsync/--commit-batch/--commit-interval require --dir", file=sys.stderr)
        return 2
    if args.fsync and (args.commit_batch is not None or args.commit_interval is not None):
        print("error: --fsync conflicts with --commit-batch/--commit-interval", file=sys.stderr)
        return 2
    if args.commit_batch is not None and args.commit_batch <= 0:
        print("error: --commit-batch must be positive", file=sys.stderr)
        return 2
    if args.commit_interval is not None and args.commit_interval <= 0:
        print("error: --commit-interval must be positive", file=sys.stderr)
        return 2
    if args.rankings is None and (not args.live or args.dir is None):
        print(
            "error: a rankings file is required unless '--live --dir' reopens existing state",
            file=sys.stderr,
        )
        return 2
    database = Database()
    try:
        if args.live:
            if args.dir is not None:
                # the state directory is self-contained: the TSV only seeds a
                # brand-new directory and is never re-read on restarts — an
                # existing (even emptied-out) state must not be re-seeded
                fresh = not any(
                    os.path.exists(os.path.join(args.dir, name))
                    for name in (
                        MANIFEST_FILENAME,
                        MANIFEST_BINARY_FILENAME,
                        WAL_FILENAME,
                        WAL_BINARY_FILENAME,
                        SNAPSHOT_FILENAME,
                    )
                )
                collection = LiveCollection.open(
                    args.dir,
                    format=args.format,
                    num_shards=args.shards,
                    sync=args.fsync,
                    commit_batch=args.commit_batch,
                    commit_interval=args.commit_interval,
                )
                if not fresh:
                    print(
                        f"opened existing live state ({len(collection)} rankings, "
                        f"{collection.stats().replayed} WAL record(s) replayed) from {args.dir}"
                    )
                elif args.rankings is not None:
                    for ranking in load_rankings(args.rankings):
                        collection.insert(ranking.items)
            else:
                collection = LiveCollection(
                    initial=load_rankings(args.rankings), num_shards=args.shards
                )
            database.create_live(
                args.name,
                collection,
                algorithm=args.algorithm or DEFAULT_LIVE_ALGORITHM,
                cache_capacity=args.cache_capacity,
            )
            size, k = len(collection), collection.k
        else:
            rankings = load_rankings(args.rankings)
            if shard_spec is not None:
                index, count = shard_spec
                shards = partition_rankings(rankings, count)
                if index >= len(shards):
                    raise ReproError(
                        f"shard {index}/{count} is empty: the collection has only"
                        f" {len(rankings)} ranking(s)"
                    )
                rankings = shards[index]
            algorithms = None if args.algorithm is None else [args.algorithm]
            database.create_static(
                args.name,
                rankings,
                num_shards=args.shards,
                algorithms=algorithms,
                cache_capacity=args.cache_capacity,
            )
            size, k = len(rankings), rankings.k
        server_type = AsyncDatabaseServer if args.use_async else DatabaseServer
        server = server_type(database, host=args.host, port=args.port)
        if args.use_async:
            server.start()
    except (ReproError, OSError, ValueError) as error:
        database.close()
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.address
    kind = "live" if args.live else "static"
    transport = "asyncio" if args.use_async else "threaded"
    described = args.name if shard_spec is None else f"{args.name} (shard {args.shard})"
    print(
        f"serving {kind} collection {described!r} "
        f"({size} rankings, k={k}, {args.shards} shard(s), {transport}) on {host}:{port}"
    )
    if args.live:
        durability = collection.durability
        if durability != "in-memory":
            durability += f", {collection.storage_format} storage"
        print(f"durability: {durability}"
              + ("  (acknowledged writes may be lost on power loss)"
                 if collection.durability in ("in-memory", "no-sync") else ""))
    print("stop with a client '--admin shutdown' request or Ctrl-C")
    try:
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")
        if args.use_async:
            server.wait()  # the bridge thread exits on admin/shutdown
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        server.close()
        database.close()
    print("server stopped")
    return 0


def _serve_empty(args: argparse.Namespace) -> int:
    """Serve a database with no collections (a cluster node before DDL)."""
    database = Database()
    try:
        server_type = AsyncDatabaseServer if args.use_async else DatabaseServer
        server = server_type(database, host=args.host, port=args.port)
        if args.use_async:
            server.start()
    except (ReproError, OSError, ValueError) as error:
        database.close()
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.address
    transport = "asyncio" if args.use_async else "threaded"
    print(f"serving empty database ({transport}) on {host}:{port}")
    print("stop with a client '--admin shutdown' request or Ctrl-C")
    try:
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")
        if args.use_async:
            server.wait()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        server.close()
        database.close()
    print("server stopped")
    return 0


def _wait_node_ready(ready_file: str, process: subprocess.Popen, timeout: float) -> str:
    """Poll one node's ready file; returns its ``host:port``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                content = handle.read().split()
            if len(content) == 2:
                return f"{content[0]}:{content[1]}"
        if process.poll() is not None:
            raise ReproError(
                f"shard server (pid {process.pid}) exited with code"
                f" {process.returncode} before becoming ready"
            )
        time.sleep(0.05)
    raise ReproError(f"shard server (pid {process.pid}) not ready after {timeout:.0f}s")


def _command_cluster_up(args: argparse.Namespace) -> int:
    if args.shards <= 0 or args.replicas < 0 or args.spares < 0:
        print(
            "error: --shards must be positive; --replicas/--spares non-negative",
            file=sys.stderr,
        )
        return 2
    total = args.shards * (1 + args.replicas) + args.spares
    workdir = tempfile.mkdtemp(prefix="repro-cluster-")
    processes: list[subprocess.Popen] = []
    coordinator: Coordinator | None = None
    server: DatabaseServer | None = None
    exit_code = 0
    try:
        print(f"spawning {total} empty shard server(s)...")
        ready_files = []
        for index in range(total):
            ready = os.path.join(workdir, f"node-{index}.ready")
            ready_files.append(ready)
            processes.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.cli", "serve", "--empty",
                        "--host", args.host, "--port", "0", "--ready-file", ready,
                    ],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        addresses = [
            _wait_node_ready(ready, process, timeout=30.0)
            for ready, process in zip(ready_files, processes)
        ]
        coordinator = Coordinator(
            addresses,
            collection=args.collection,
            num_shards=args.shards,
            replicas=args.replicas,
            num_slots=args.slots,
            algorithm=args.algorithm,
            heartbeat_interval=args.heartbeat_interval,
            timeout=args.node_timeout,
            wire_format=args.format,
        )
        server = DatabaseServer(coordinator, host=args.host, port=args.port)
        host, port = server.address
        coordinator.address = f"{host}:{port}"
        coordinator.start()
        state = {
            "coordinator": f"{host}:{port}",
            "collection": args.collection,
            "shards": args.shards,
            "replicas": args.replicas,
            "nodes": [
                {"address": address, "pid": process.pid}
                for address, process in zip(addresses, processes)
            ],
        }
        if args.state_file:
            with open(args.state_file, "w", encoding="utf-8") as handle:
                json.dump(state, handle, indent=2)
                handle.write("\n")
        table = coordinator.routing_table
        print(
            f"cluster up: {args.shards} shard(s) x {1 + args.replicas} member(s)"
            f" (+{args.spares} spare(s)), {table.num_slots} slots,"
            f" routing v{table.version}"
        )
        for spec in table.shards:
            members = ", ".join(spec.replicas) or "none"
            print(f"  shard {spec.shard_id}: primary {spec.primary}  replicas: {members}")
        print(
            f"coordinator serving {args.collection!r} on {host}:{port}"
            f" ({args.format} wire format to shards)"
        )
        print("stop with a client '--admin shutdown' request or Ctrl-C")
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError, ValueError, ConnectionError) as error:
        print(f"error: {error}", file=sys.stderr)
        exit_code = 1
    finally:
        if coordinator is not None:
            coordinator.close()
        if server is not None:
            server.close()
        if coordinator is not None:
            coordinator.shutdown_nodes()
        for process in processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        shutil.rmtree(workdir, ignore_errors=True)
    print("cluster stopped")
    return exit_code


def _cluster_status_lines(status: dict) -> list[str]:
    lines = [
        f"collection {status.get('collection', '?')!r} — routing"
        f" v{status.get('version', '?')}, {status.get('num_slots', '?')} slots,"
        f" next key {status.get('next_key', '?')}"
    ]
    for shard in status.get("shards", []):
        primary_state = "alive" if shard.get("primary_alive") else "DEAD"
        lines.append(
            f"shard {shard.get('shard')}: primary {shard.get('primary')}"
            f" ({primary_state})  seq={shard.get('seq')}  log={shard.get('log_size')}"
        )
        for replica in shard.get("replicas", []):
            replica_state = "alive" if replica.get("alive") else "DEAD"
            lines.append(
                f"  replica {replica.get('address')} ({replica_state})"
                f"  applied={replica.get('applied_seq')}  lag={replica.get('lag')}"
            )
    spares = status.get("spares", [])
    if spares:
        lines.append("spares: " + ", ".join(spares))
    migrating = status.get("migrating", [])
    if migrating:
        lines.append(f"migrating slots: {migrating}")
    return lines


def _command_cluster_status(args: argparse.Namespace) -> int:
    try:
        with Client(args.host, args.port, timeout=args.timeout, protocol=2) as client:
            response = client.execute(
                AdminRequest(collection=args.collection, action="route")
            )
    except (OSError, ConnectionError) as error:
        print(f"error: cannot reach coordinator {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    if not response.ok:
        print(f"error: {response.error.code}: {response.error.message}", file=sys.stderr)
        return 1
    for line in _cluster_status_lines((response.data or {}).get("status", {})):
        print(line)
    return 0


def _command_cluster_reshard(args: argparse.Namespace) -> int:
    moves: dict[int, int] = {}
    try:
        for pair in args.moves.split(","):
            if not pair.strip():
                continue
            slot, _, target = pair.partition(":")
            moves[int(slot)] = int(target)
    except ValueError:
        print("error: --moves must be comma-separated slot:shard pairs", file=sys.stderr)
        return 2
    if not moves:
        print("error: --moves lists no slot:shard pairs", file=sys.stderr)
        return 2
    try:
        with Client(args.host, args.port, timeout=args.timeout, protocol=2) as client:
            response = client.execute(
                AdminRequest(collection=args.collection, action="reshard", moves=moves)
            )
    except (OSError, ConnectionError) as error:
        print(f"error: cannot reach coordinator {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    if not response.ok:
        print(f"error: {response.error.code}: {response.error.message}", file=sys.stderr)
        return 1
    print(json.dumps(response.data, indent=2, sort_keys=True))
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    if args.cluster_command == "up":
        return _command_cluster_up(args)
    if args.cluster_command == "status":
        return _command_cluster_status(args)
    return _command_cluster_reshard(args)


def _match_lines(response, limit: int) -> list[str]:
    matches = response.matches or ()
    lines = [
        f"  rid={match.rid}  distance={match.distance:.4f}  items={list(match.items)}"
        for match in list(matches)[:limit]
    ]
    stats = response.stats or {}
    if stats:
        lines.append(
            f"{len(matches)} match(es) via {stats.get('algorithm', '?')} "
            f"({'cache hit' if stats.get('cache_hit') else stats.get('planner_source', '?')}) "
            f"in {float(stats.get('latency_seconds', 0.0)) * 1000.0:.2f}ms"
        )
    else:
        lines.append(f"{len(matches)} match(es)")
    return lines


def _run_client_op(client: Client, args: argparse.Namespace) -> tuple[int, list[str]]:
    """Run the one requested operation; returns (exit code, stdout lines).

    Network I/O and envelope handling happen here; *stdout* output is
    returned for the caller to print once the connection is done, so a
    broken stdout pipe (e.g. ``| head``) can never be mistaken for — or
    mask — a server failure.  Error envelopes are reported to stderr
    immediately.
    """
    trace = True if args.trace else None
    if args.query is not None:
        items = _parse_query_items(args.query)
        if args.subscribe:
            return _run_subscribe(client, args, items)
        if args.knn > 0:
            request = KnnRequest(
                collection=args.collection, items=tuple(items), k=args.knn,
                algorithm=args.algorithm,
            )
        else:
            # server-side pagination: only the asked-for page crosses the wire
            request = RangeQueryRequest(
                collection=args.collection, items=tuple(items), theta=args.theta,
                algorithm=args.algorithm, limit=args.limit,
            )
        response = client.execute(request, trace=trace)
        if not response.ok:
            print(f"error: {response.error.code}: {response.error.message}", file=sys.stderr)
            return 1, []
        lines = _match_lines(response, args.limit)
        if response.cursor is not None:
            lines.append(f"... more matches beyond --limit {args.limit} (cursor={response.cursor})")
        if args.trace:
            if response.trace is not None:
                lines.extend(span_tree_lines(response.trace))
            else:
                lines.append("(no trace: the connection fell back to protocol v1)")
        return 0, lines
    if args.insert is not None:
        key = client.insert(_parse_query_items(args.insert), collection=args.collection)
        return 0, [f"inserted key={key}"]
    if args.delete is not None:
        client.delete(args.delete, collection=args.collection)
        return 0, [f"deleted key={args.delete}"]
    if args.upsert is not None:
        client.upsert(args.upsert, _parse_query_items(args.items), collection=args.collection)
        return 0, [f"upserted key={args.upsert}"]
    if args.admin == "create":
        seed = None
        if args.rankings is not None:
            seed = tuple(ranking.items for ranking in load_rankings(args.rankings))
        response = client.execute(
            AdminRequest(
                collection=args.collection,
                action="create",
                engine=args.engine,
                rankings=seed,
                algorithm=args.algorithm,
                num_shards=args.shards,
            )
        )
    elif args.admin == "metrics":
        response = client.execute(
            AdminRequest(
                collection=args.collection,
                action="metrics",
                format=args.format,
                scope="cluster" if args.cluster else None,
            ),
            trace=trace,
        )
    else:
        response = client.execute(
            {"type": "admin", "action": args.admin, "collection": args.collection}
        )
    if not response.ok:
        print(f"error: {response.error.code}: {response.error.message}", file=sys.stderr)
        return 1, []
    if args.admin == "metrics" and args.format == "prometheus":
        # scrape-ready output: the exposition text, nothing else
        return 0, [str((response.data or {}).get("exposition", ""))]
    if args.admin == "slow_queries":
        return 0, _slow_query_lines(response.data or {})
    if args.admin == "stats":
        # the wire format is negotiated client-side at hello, so only this
        # end of the connection can report which one is actually active
        data = dict(response.data or {})
        data["wire"] = {
            "format": client.wire_format,
            "protocol": client.protocol_version,
        }
        return 0, [json.dumps(data, indent=2, sort_keys=True)]
    return 0, [json.dumps(response.data, indent=2, sort_keys=True)]


def _run_subscribe(client: Client, args: argparse.Namespace, items: list[int]) -> tuple[int, list[str]]:
    """Stream a standing query: snapshot, then deltas, then a clean unsubscribe.

    Unlike the one-shot operations this prints as events arrive (flushed, so
    a piped consumer sees each delta when it happens), because the whole
    point is watching the result set move.
    """
    mode = "knn" if args.knn > 0 else "range"
    subscription = client.subscribe(
        items,
        collection=args.collection,
        mode=mode,
        theta=0.0 if args.knn > 0 else args.theta,
        k=args.knn,
        algorithm=args.algorithm,
    )
    print(
        f"subscribed id={subscription.id} mode={mode}"
        f" snapshot={len(subscription.matches)} match(es)",
        flush=True,
    )
    for match in list(subscription.matches)[: args.limit]:
        print(
            f"  rid={match.rid}  distance={match.distance:.4f}  items={list(match.items)}",
            flush=True,
        )
    seen = 0
    while args.deltas <= 0 or seen < args.deltas:
        delta = subscription.get()
        if delta is None:
            break  # server ended the stream first
        seen += 1
        print(
            f"delta version={delta.version} entered={len(delta.entered)}"
            f" moved={len(delta.moved)} left={len(delta.left)}",
            flush=True,
        )
        for match in delta.entered:
            print(f"  +rid={match.rid}  distance={match.distance:.4f}", flush=True)
        for match in delta.moved:
            print(f"  ~rid={match.rid}  distance={match.distance:.4f}", flush=True)
        for rid in delta.left:
            print(f"  -rid={rid}", flush=True)
    subscription.unsubscribe()
    print("unsubscribed", flush=True)
    return 0, []


def _slow_query_lines(data: dict) -> list[str]:
    """Human-readable slow-query report: one header per entry + span trees."""
    entries = data.get("slow_queries", [])
    if not entries:
        return [f"slow-query log empty (capacity {data.get('capacity', '?')})"]
    lines = [f"{len(entries)} slow quer(ies), slowest first (capacity {data.get('capacity', '?')})"]
    for position, entry in enumerate(entries, start=1):
        header = (
            f"[{position:2d}] {entry.get('kind', '?'):6s} on {entry.get('collection', '?')!r}"
            f"  {float(entry.get('wall_seconds', 0.0)) * 1000.0:8.2f}ms"
            f"  results={entry.get('results', 0)}"
        )
        if entry.get("algorithm"):
            header += f"  via {entry['algorithm']} ({entry.get('planner_source') or '?'})"
        lines.append(header)
        if entry.get("trace"):
            lines.extend("  " + line for line in span_tree_lines(entry["trace"]))
    return lines


def _command_client(args: argparse.Namespace) -> int:
    for flag, text in (("--query", args.query), ("--insert", args.insert), ("--items", args.items)):
        if text is not None:
            try:
                _parse_query_items(text)
            except ValueError:
                print(
                    f"error: {flag} must be a comma-separated list of integer item ids",
                    file=sys.stderr,
                )
                return 2
    if args.upsert is not None and args.items is None:
        print("error: --upsert needs --items", file=sys.stderr)
        return 2
    if args.subscribe and args.query is None:
        print("error: --subscribe needs --query", file=sys.stderr)
        return 2
    if args.format is not None and args.admin != "metrics":
        print("error: --format only applies to '--admin metrics'", file=sys.stderr)
        return 2
    if args.cluster and args.admin != "metrics":
        print("error: --cluster only applies to '--admin metrics'", file=sys.stderr)
        return 2
    try:
        client = Client(
            args.host, args.port, timeout=args.timeout, protocol=args.protocol,
            wire_format=args.wire_format,
        )
    except (OSError, ConnectionError) as error:
        print(f"error: cannot connect to {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    with client:
        try:
            exit_code, lines = _run_client_op(client, args)
        except (ReproError, ValueError, KeyError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (ConnectionError, OSError) as error:
            print(f"error: connection failed: {error}", file=sys.stderr)
            return 1
    for line in lines:
        print(line)
    return exit_code


def _command_compare(args: argparse.Namespace) -> int:
    thetas = [float(token) for token in args.thetas.split(",") if token.strip()]
    setup = ExperimentSetup.create(
        dataset=args.dataset, n=args.n, k=args.k, num_queries=args.queries
    )
    measurements = compare_algorithms(
        setup, COMPARISON_ALGORITHMS, thetas, figure_module.DEFAULT_COARSE_KWARGS
    )
    rows = [measurement.as_row() for measurement in measurements]
    columns = ["algorithm", "theta", "wall_seconds", "distance_calls", "candidates", "results"]
    print(format_table(rows, columns=columns, title=f"Comparison on {args.dataset} (n={args.n}, k={args.k})"))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import main as lint_main

    forwarded = list(args.paths) + ["--root", args.root, "--format", args.lint_format]
    if args.rules:
        forwarded += ["--rules", args.rules]
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "batch-query":
        return _command_batch_query(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "client":
        return _command_client(args)
    if args.command == "figure":
        _FIGURES[args.number](args)
        return 0
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "table":
        _TABLES[args.number](args)
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
