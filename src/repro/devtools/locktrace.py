"""Runtime lock-order tracing: find deadlocks before they happen.

The serving stack is a lattice of locks — collection, WAL, cache, registry,
coordinator shard and node locks — and the rule that keeps it deadlock-free
("always take them in the same order") is invisible at runtime.  This module
makes it visible: :class:`TracedLock` is a drop-in wrapper that records, per
thread, which locks were held when each lock was acquired, building a global
*lock-order graph*.  A cycle in that graph is a **lock-order inversion**:
two code paths that take the same locks in opposite orders and will
eventually deadlock under the right interleaving — reported deterministically
even when the test run never actually deadlocks (the lockdep idea).

Activation
----------
Everything is off by default.  Setting ``REPRO_LOCKTRACE=1`` in the
environment before the process imports this module switches
:func:`make_lock` — the factory the hot classes create their locks through —
from plain ``threading`` locks to traced ones.  The stress and failover
suites run under this flag in CI and assert that the inversion report stays
empty.

Beyond inversions, the registry collects two *smells* (reported, never
fatal):

* **long holds** — a lock held longer than ``REPRO_LOCKTRACE_HOLD_MS``
  milliseconds (default 250), with the release site's stack;
* **IO under lock** — :func:`mark_io` callers (the WAL/manifest ``fsync``
  barriers) that ran while the thread held a traced lock.

Ordering is keyed by lock *instance*, so two collections each nesting their
own WAL lock do not alias into a false cycle, while a genuine ABBA over the
same pair of instances is caught.  This module imports only the standard
library, so any layer may depend on it without cycles.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "DEFAULT_HOLD_SECONDS",
    "ENV_FLAG",
    "HOLD_ENV_FLAG",
    "LockInversion",
    "LockSmell",
    "LockTraceRegistry",
    "TracedLock",
    "get_lock_registry",
    "locktrace_enabled",
    "make_lock",
    "mark_io",
    "reset_lock_registry",
]

#: Environment variable that switches :func:`make_lock` to traced locks.
ENV_FLAG = "REPRO_LOCKTRACE"

#: Environment variable overriding the long-hold threshold (milliseconds).
HOLD_ENV_FLAG = "REPRO_LOCKTRACE_HOLD_MS"

#: Default long-hold threshold in seconds.
DEFAULT_HOLD_SECONDS = 0.25


def locktrace_enabled() -> bool:
    """Whether ``REPRO_LOCKTRACE`` asks for traced locks."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0", "false", "no")


def _hold_threshold_seconds() -> float:
    raw = os.environ.get(HOLD_ENV_FLAG, "")
    try:
        return float(raw) / 1000.0 if raw else DEFAULT_HOLD_SECONDS
    except ValueError:
        return DEFAULT_HOLD_SECONDS


def _call_site(skip: int = 3, limit: int = 6) -> str:
    """A compact ``file:line in func`` stack slice of the caller."""
    frames = traceback.extract_stack()[:-skip]
    interesting = frames[-limit:]
    return " <- ".join(
        f"{os.path.basename(frame.filename)}:{frame.lineno}:{frame.name}"
        for frame in reversed(interesting)
    )


@dataclass(frozen=True)
class LockInversion:
    """Two (or more) locks acquired in conflicting orders: a deadlock seed.

    ``cycle`` names the locks along the cycle; ``forward_site`` is where the
    pre-existing order was observed, ``backward_site`` where the conflicting
    acquisition closed the cycle.
    """

    cycle: tuple[str, ...]
    forward_site: str
    backward_site: str

    def describe(self) -> str:
        chain = " -> ".join(self.cycle + (self.cycle[0],))
        return (
            f"lock-order inversion: {chain}\n"
            f"  established order at: {self.forward_site}\n"
            f"  conflicting order at: {self.backward_site}"
        )


@dataclass(frozen=True)
class LockSmell:
    """A non-fatal finding: a long hold or IO performed under a lock."""

    kind: str  # "long-hold" | "io-under-lock"
    lock: str
    detail: str
    site: str

    def describe(self) -> str:
        return f"{self.kind}: {self.lock} — {self.detail} ({self.site})"


@dataclass
class _HeldLock:
    """One entry of a thread's lock stack."""

    key: int
    label: str
    acquired_at: float
    depth: int = 1  # reentrant acquisitions of the same lock


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: list[_HeldLock] = []


_STATE = _ThreadState()


class LockTraceRegistry:
    """The process-wide lock-order graph and its findings.

    ``record_acquire`` adds one edge per already-held lock to the directed
    order graph; a new edge that closes a cycle is reported as a
    :class:`LockInversion` exactly once per edge pair.  The registry's own
    lock is a plain ``threading.Lock`` (never a traced one).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded-by _lock: edge -> first acquisition site that recorded it
        self._edges: dict[tuple[int, int], str] = {}
        self._labels: dict[int, str] = {}
        self._inversions: list[LockInversion] = []
        self._reported_edges: set[tuple[int, int]] = set()
        self._smells: list[LockSmell] = []
        self._hold_threshold = _hold_threshold_seconds()

    # -- event intake ------------------------------------------------------------

    def record_acquire(self, key: int, label: str, held: list[_HeldLock]) -> None:
        """Note that ``label`` was acquired while ``held`` were already held."""
        if not held:
            with self._lock:
                self._labels.setdefault(key, label)
            return
        site = _call_site()
        with self._lock:
            self._labels.setdefault(key, label)
            for entry in held:
                edge = (entry.key, key)
                if edge in self._edges:
                    continue
                cycle = self._find_path(key, entry.key)
                if cycle is not None and edge not in self._reported_edges:
                    self._reported_edges.add(edge)
                    labels = tuple(self._labels.get(k, f"lock#{k}") for k in cycle)
                    self._inversions.append(
                        LockInversion(
                            cycle=labels,
                            forward_site=self._edges.get(
                                (cycle[0], cycle[1]), "<unknown>"
                            )
                            if len(cycle) == 2
                            else "<multi-step chain>",
                            backward_site=site,
                        )
                    )
                    continue  # do not record the inverted edge as legitimate
                self._edges[edge] = site

    def record_release(self, key: int, label: str, held_seconds: float) -> None:
        """Note a release; long holds become smells."""
        if held_seconds < self._hold_threshold:
            return
        with self._lock:
            self._smells.append(
                LockSmell(
                    kind="long-hold",
                    lock=label,
                    detail=f"held {held_seconds * 1000.0:.1f}ms "
                    f"(threshold {self._hold_threshold * 1000.0:.0f}ms)",
                    site=_call_site(),
                )
            )

    def record_io(self, description: str, held: list[_HeldLock]) -> None:
        """Note a blocking-IO barrier performed while locks were held."""
        if not held:
            return
        with self._lock:
            self._smells.append(
                LockSmell(
                    kind="io-under-lock",
                    lock=", ".join(entry.label for entry in held),
                    detail=description,
                    site=_call_site(),
                )
            )

    def _find_path(self, start: int, goal: int) -> Optional[tuple[int, ...]]:
        """A path start -> ... -> goal through the edge graph, if one exists.

        Caller holds ``self._lock``.  A found path means adding the edge
        ``goal -> start`` would close a cycle; the returned tuple is that
        cycle's node sequence starting at ``start``.
        """
        adjacency: dict[int, list[int]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
        stack: list[tuple[int, tuple[int, ...]]] = [(start, (start,))]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append((neighbour, path + (neighbour,)))
        return None

    # -- reporting ---------------------------------------------------------------

    def inversions(self) -> list[LockInversion]:
        """Every lock-order inversion observed so far."""
        with self._lock:
            return list(self._inversions)

    def smells(self) -> list[LockSmell]:
        """Long-hold and IO-under-lock findings (advisory)."""
        with self._lock:
            return list(self._smells)

    def edges(self) -> dict[tuple[str, str], str]:
        """The observed order graph as ``(held, acquired) -> site``."""
        with self._lock:
            return {
                (
                    self._labels.get(a, f"lock#{a}"),
                    self._labels.get(b, f"lock#{b}"),
                ): site
                for (a, b), site in self._edges.items()
            }

    def report(self) -> str:
        """Human-readable summary of inversions and smells."""
        lines = []
        for inversion in self.inversions():
            lines.append(inversion.describe())
        for smell in self.smells():
            lines.append(smell.describe())
        return "\n".join(lines) if lines else "locktrace: no findings"

    def clear(self) -> None:
        """Drop every edge and finding (test isolation)."""
        with self._lock:
            self._edges.clear()
            self._labels.clear()
            self._inversions.clear()
            self._reported_edges.clear()
            self._smells.clear()


_REGISTRY = LockTraceRegistry()
_LABEL_COUNTERS: dict[str, "itertools.count[int]"] = {}
_LABEL_LOCK = threading.Lock()


def get_lock_registry() -> LockTraceRegistry:
    """The process-wide registry every :class:`TracedLock` reports into."""
    return _REGISTRY


def reset_lock_registry() -> None:
    """Clear the process registry (between tests)."""
    _REGISTRY.clear()


def _unique_label(name: str) -> str:
    with _LABEL_LOCK:
        counter = _LABEL_COUNTERS.setdefault(name, itertools.count())
        ordinal = next(counter)
    return name if ordinal == 0 else f"{name}#{ordinal}"


#: Anything :func:`make_lock` may return.
LockLike = Union["TracedLock", threading.Lock, "threading.RLock"]


class TracedLock:
    """A lock wrapper that feeds the order graph on every acquisition.

    Supports the ``Lock``/``RLock`` surface the codebase uses: ``acquire``,
    ``release``, and the context-manager protocol.  Reentrant acquisitions
    (the inner lock must then be an ``RLock``) record no new edges — holding
    a lock you already hold cannot invert an order.
    """

    def __init__(
        self,
        name: str,
        inner: Optional[LockLike] = None,
        registry: Optional[LockTraceRegistry] = None,
    ) -> None:
        self.name = _unique_label(name)
        self._inner = inner if inner is not None else threading.RLock()
        self._registry = registry if registry is not None else _REGISTRY

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _STATE.stack
        for entry in stack:
            if entry.key == id(self):
                acquired = self._inner.acquire(blocking, timeout)
                if acquired:
                    entry.depth += 1
                return acquired
        self._registry.record_acquire(id(self), self.name, list(stack))
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(_HeldLock(id(self), self.name, time.monotonic()))
        return acquired

    def release(self) -> None:
        stack = _STATE.stack
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.key == id(self):
                if entry.depth > 1:
                    entry.depth -= 1
                else:
                    del stack[index]
                    self._registry.record_release(
                        id(self), self.name, time.monotonic() - entry.acquired_at
                    )
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TracedLock({self.name})"


def make_lock(name: str, *, reentrant: bool = False) -> LockLike:
    """The lock factory the instrumented classes use.

    Returns a plain ``threading`` lock unless ``REPRO_LOCKTRACE`` is set, in
    which case the lock is traced and labelled ``name`` (instances beyond
    the first get ``name#2``-style suffixes, keeping the order graph keyed
    per instance).
    """
    inner: LockLike = threading.RLock() if reentrant else threading.Lock()
    if not locktrace_enabled():
        return inner
    return TracedLock(name, inner)


def mark_io(description: str) -> None:
    """Note a blocking-IO barrier (``fsync`` and friends) at the call site.

    A no-op unless tracing is enabled; when the calling thread holds traced
    locks, the barrier is recorded as an ``io-under-lock`` smell so reviews
    can see exactly which locks are held across disk waits.
    """
    if not locktrace_enabled():
        return
    held = [entry for entry in _STATE.stack]
    _REGISTRY.record_io(description, held)
