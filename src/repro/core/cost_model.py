"""Analytical cost model for tuning the partitioning threshold (Section 5).

The model predicts, for a candidate partitioning threshold ``theta_C``, the
expected per-query cost of the coarse index as the sum of

* the **filtering cost** — merging the ``k`` medoid index lists and
  validating the retrieved medoids against the relaxed threshold, and
* the **validation cost** — evaluating the distance of the candidate
  rankings contained in the retrieved partitions.

It is deliberately assumption-lean; its only inputs are

* ``n`` (collection size), ``k`` (ranking size), ``v`` (global item-domain
  size),
* the empirical cumulative distribution of pairwise distances
  ``P[X <= x]`` (normalised scale),
* the Zipf skew ``s`` of item popularity, and
* two calibrated unit costs: the runtime of one Footrule evaluation
  (``cost_footrule``) and of merging ``k`` lists of a given total size
  (``cost_merge``).

The individual estimates mirror the paper exactly:

* the expected number of medoids ``M(n, theta_C)`` follows the
  batched coupon-collector argument (Equations 1-2),
* the expected number of candidate rankings is ``n * P[X <= theta + theta_C]``
  (Equation 4),
* the expected medoid index-list length is ``sum_i M * f(i; s, v')^2``
  (Equation 5) with ``v'`` the expected number of distinct items across the
  medoids (Equation 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Optional

from repro.core.errors import InvalidThresholdError

DistanceCdf = Callable[[float], float]
MergeCost = Callable[[int, float], float]


@dataclass
class CostModelInputs:
    """Everything the cost model needs to know about a dataset and machine.

    Attributes
    ----------
    n:
        Number of indexed rankings.
    k:
        Ranking size.
    v:
        Size of the global item domain (number of distinct items).
    zipf_s:
        Skew of the item-popularity Zipf law (estimated from the data).
    distance_cdf:
        ``P[X <= x]`` for the normalised pairwise Footrule distance.
    cost_footrule:
        Runtime (seconds) of one Footrule evaluation for rankings of size k.
    cost_merge:
        ``cost_merge(k, total_size)``: runtime (seconds) of merging ``k``
        index lists holding ``total_size`` postings altogether.
    """

    n: int
    k: int
    v: int
    zipf_s: float
    distance_cdf: DistanceCdf
    cost_footrule: float = 1.0
    cost_merge: MergeCost = field(default=lambda k, size: float(size))

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"collection size must be positive, got {self.n}")
        if self.k <= 0:
            raise ValueError(f"ranking size must be positive, got {self.k}")
        if self.v < self.k:
            raise ValueError(f"domain size ({self.v}) must be at least k ({self.k})")
        if self.zipf_s < 0:
            raise ValueError(f"Zipf skew must be non-negative, got {self.zipf_s}")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted per-query cost components for one value of ``theta_C``."""

    theta_c: float
    filter_cost: float
    validate_cost: float

    @property
    def total(self) -> float:
        """Sum of filtering and validation cost."""
        return self.filter_cost + self.validate_cost


@dataclass(frozen=True)
class ThetaCRecommendation:
    """Result of the sweet-spot search over a grid of ``theta_C`` values."""

    theta_c: float
    estimate: CostEstimate
    curve: tuple[CostEstimate, ...]


def generalized_harmonic(count: int, s: float) -> float:
    """The generalised harmonic number ``H_{count, s} = sum_{i=1..count} i^-s``."""
    if count <= 0:
        return 0.0
    return sum(1.0 / (i ** s) for i in range(1, count + 1))


def zipf_frequency(rank: int, s: float, count: int, harmonic: Optional[float] = None) -> float:
    """Relative frequency of the ``rank``-th most popular item under Zipf(s).

    ``f(i; s, v) = 1 / (i^s * H_{v, s})``.
    """
    if rank < 1 or rank > count:
        raise ValueError(f"rank must lie in [1, {count}], got {rank}")
    if harmonic is None:
        harmonic = generalized_harmonic(count, s)
    return 1.0 / ((rank ** s) * harmonic)


class CostModel:
    """Predicts the coarse-index query cost and picks the sweet-spot ``theta_C``."""

    def __init__(self, inputs: CostModelInputs) -> None:
        self._inputs = inputs

    @property
    def inputs(self) -> CostModelInputs:
        """The dataset/machine parameters driving the model."""
        return self._inputs

    # -- building blocks (Equations 1-6) ---------------------------------------------

    def expected_num_medoids(self, theta_c: float) -> float:
        """``M(n, theta_C)``: expected number of medoids (Equations 1-2).

        The batched coupon-collector argument: selecting a medoid assigns a
        "package" of ``p = P[X <= theta_C] * n`` rankings at once; the number
        of packages needed to cover all ``n`` rankings is ``M``.
        """
        self._check_theta("theta_c", theta_c)
        n = self._inputs.n
        package = self._inputs.distance_cdf(theta_c) * n
        package = min(float(n), max(1.0, package))
        total_picks = 0.0
        for i in range(n):
            within_package = math.fmod(i, package)
            if within_package == 0.0:
                total_picks += 1.0
            else:
                total_picks += (n - within_package) / (n - i)
        medoids = total_picks / package
        return min(float(n), max(1.0, medoids))

    def expected_retrieved_medoids(self, theta: float, theta_c: float) -> float:
        """Expected number of medoids within the relaxed threshold (Equation 3)."""
        medoids = self.expected_num_medoids(theta_c)
        return self._inputs.distance_cdf(theta + theta_c) * medoids

    def expected_candidate_rankings(self, theta: float, theta_c: float) -> float:
        """Expected number of candidate rankings to validate (Equation 4)."""
        return self._inputs.distance_cdf(theta + theta_c) * self._inputs.n

    def expected_distinct_medoid_items(self, num_medoids: float) -> float:
        """``E[v']``: expected number of distinct items across the medoids (Equation 6)."""
        v = self._inputs.v
        k = self._inputs.k
        missing_probability = (1.0 - k / v) ** num_medoids
        return v * (1.0 - missing_probability)

    def expected_index_list_length(self, num_medoids: float) -> float:
        """Expected medoid index-list length under query/data Zipf skew (Equation 5).

        Items are both indexed and queried according to the same Zipf law, so
        the expected length of the list hit by a random query item is
        ``sum_i M * f(i; s, v')^2``.
        """
        v_prime = max(1, int(round(self.expected_distinct_medoid_items(num_medoids))))
        s = self._inputs.zipf_s
        harmonic = generalized_harmonic(v_prime, s)
        squared_sum = sum(
            zipf_frequency(i, s, v_prime, harmonic) ** 2 for i in range(1, v_prime + 1)
        )
        return num_medoids * squared_sum

    # -- cost components (Table 3) ------------------------------------------------------

    def filter_cost(self, theta: float, theta_c: float) -> float:
        """Cost of finding the medoids for a query (inverted index + medoid validation)."""
        self._check_query(theta, theta_c)
        medoids = self.expected_num_medoids(theta_c)
        list_length = self.expected_index_list_length(medoids)
        k = self._inputs.k
        merge_cost = self._inputs.cost_merge(k, list_length * k)
        medoid_validation = k * list_length * self._inputs.cost_footrule
        return merge_cost + medoid_validation

    def validate_cost(self, theta: float, theta_c: float) -> float:
        """Cost of validating the candidate rankings of the retrieved partitions."""
        self._check_query(theta, theta_c)
        candidates = self.expected_candidate_rankings(theta, theta_c)
        return candidates * self._inputs.cost_footrule

    def estimate(self, theta: float, theta_c: float) -> CostEstimate:
        """Both cost components for one ``(theta, theta_C)`` combination."""
        return CostEstimate(
            theta_c=theta_c,
            filter_cost=self.filter_cost(theta, theta_c),
            validate_cost=self.validate_cost(theta, theta_c),
        )

    # -- sweet-spot search -----------------------------------------------------------------

    def cost_curve(
        self, theta: float, theta_c_grid: Optional[Sequence[float]] = None
    ) -> list[CostEstimate]:
        """Cost estimates over a grid of ``theta_C`` values (Figure 3)."""
        grid = list(theta_c_grid) if theta_c_grid is not None else self.default_grid(theta)
        return [self.estimate(theta, theta_c) for theta_c in grid]

    def recommend_theta_c(
        self, theta: float, theta_c_grid: Optional[Sequence[float]] = None
    ) -> ThetaCRecommendation:
        """Pick the ``theta_C`` minimising the predicted total cost."""
        curve = self.cost_curve(theta, theta_c_grid)
        if not curve:
            raise InvalidThresholdError(theta, "no feasible theta_C (theta + theta_C must be < 1)")
        best = min(curve, key=lambda estimate: estimate.total)
        return ThetaCRecommendation(theta_c=best.theta_c, estimate=best, curve=tuple(curve))

    def default_grid(self, theta: float, step: float = 0.02) -> list[float]:
        """Feasible ``theta_C`` grid: ``[0, 1 - theta)`` in increments of ``step``."""
        self._check_theta("theta", theta)
        grid = []
        value = 0.0
        while value + theta < 1.0 - 1e-9:
            grid.append(round(value, 10))
            value += step
        return grid

    # -- validation helpers -------------------------------------------------------------------

    @staticmethod
    def _check_theta(name: str, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise InvalidThresholdError(value, f"{name} must lie in [0, 1)")

    def _check_query(self, theta: float, theta_c: float) -> None:
        self._check_theta("theta", theta)
        self._check_theta("theta_c", theta_c)
        if theta + theta_c >= 1.0:
            raise InvalidThresholdError(
                theta + theta_c,
                "theta + theta_C must be < 1 so medoids overlap the query (Lemma 1)",
            )
