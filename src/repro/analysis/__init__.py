"""Dataset analysis, cost calibration and report formatting utilities."""

from repro.analysis.calibration import CalibrationResult, calibrate_costs
from repro.analysis.report import format_series, format_table
from repro.analysis.stats import (
    EmpiricalDistanceDistribution,
    estimate_intrinsic_dimensionality,
    estimate_zipf_skew,
    cost_model_inputs_for,
)

__all__ = [
    "EmpiricalDistanceDistribution",
    "estimate_zipf_skew",
    "estimate_intrinsic_dimensionality",
    "cost_model_inputs_for",
    "CalibrationResult",
    "calibrate_costs",
    "format_table",
    "format_series",
]
