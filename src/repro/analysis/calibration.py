"""Calibration of the cost model's unit costs.

The cost model expresses both cost components in a common unit by
pre-measuring (Section 5):

* ``CostFootrule(k)`` — the runtime of a single Footrule evaluation for
  rankings of size ``k``, and
* ``Costmerge(k, size)`` — the runtime of merging ``k`` id-sorted lists
  containing ``size`` postings altogether.

This module measures both on the current machine with small timed loops and
fits ``Costmerge`` as a linear function of the merged size (merging is a
streaming operation, so a per-posting cost plus a per-list constant describes
it well).
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.distances import footrule_topk_raw
from repro.core.ranking import Ranking


@dataclass(frozen=True)
class CalibrationResult:
    """Measured unit costs, in seconds."""

    k: int
    cost_footrule: float
    merge_cost_per_posting: float
    merge_cost_constant: float

    def cost_merge(self, k: int, size: float) -> float:
        """``Costmerge(k, size)`` as a callable for the cost model."""
        return self.merge_cost_constant * k + self.merge_cost_per_posting * size


def _random_ranking(rng: random.Random, k: int, domain: int) -> Ranking:
    return Ranking(rng.sample(range(domain), k))


def measure_footrule_cost(k: int, repetitions: int = 2000, seed: int = 3) -> float:
    """Average runtime (seconds) of one Footrule evaluation for size ``k``."""
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    rng = random.Random(seed)
    domain = max(10 * k, 100)
    pairs = [
        (_random_ranking(rng, k, domain), _random_ranking(rng, k, domain))
        for _ in range(min(repetitions, 200))
    ]
    start = time.perf_counter()
    for repetition in range(repetitions):
        left, right = pairs[repetition % len(pairs)]
        footrule_topk_raw(left, right)
    elapsed = time.perf_counter() - start
    return elapsed / repetitions


def measure_merge_cost(
    k: int, sizes: Sequence[int] = (100, 1000, 5000), repetitions: int = 20, seed: int = 3
) -> tuple[float, float]:
    """Fit ``Costmerge`` as ``constant * k + per_posting * size``.

    Returns ``(per_posting, constant)`` in seconds.  The merge performed is a
    k-way heap merge over id-sorted integer lists, matching what the query
    algorithms do in their filtering phase.
    """
    rng = random.Random(seed)
    measured_sizes: list[float] = []
    measured_times: list[float] = []
    for size in sizes:
        per_list = max(1, size // k)
        lists = [sorted(rng.sample(range(size * 10), per_list)) for _ in range(k)]
        start = time.perf_counter()
        for _ in range(repetitions):
            merged = heapq.merge(*lists)
            count = 0
            for _value in merged:
                count += 1
        elapsed = (time.perf_counter() - start) / repetitions
        measured_sizes.append(per_list * k)
        measured_times.append(elapsed)
    per_posting, constant = np.polyfit(measured_sizes, measured_times, deg=1)
    return max(float(per_posting), 1e-12), max(float(constant), 0.0) / k


def calibrate_costs(k: int, repetitions: int = 2000, seed: int = 3) -> CalibrationResult:
    """Measure both unit costs on the current machine."""
    cost_footrule = measure_footrule_cost(k, repetitions=repetitions, seed=seed)
    per_posting, constant = measure_merge_cost(k, seed=seed)
    return CalibrationResult(
        k=k,
        cost_footrule=cost_footrule,
        merge_cost_per_posting=per_posting,
        merge_cost_constant=constant,
    )
