"""Experiment harness regenerating every figure and table of the paper."""

from repro.experiments.harness import (
    ExperimentSetup,
    WorkloadMeasurement,
    compare_algorithms,
    run_workload,
)
from repro.experiments.figures import (
    figure3_cost_model,
    figure5_metric_trees,
    figure6_bktree_vs_invindex,
    figure7_coarse_tradeoff,
    figure8_nyt_comparison,
    figure9_yago_comparison,
    figure10_distance_calls,
)
from repro.experiments.tables import table5_model_accuracy, table6_index_build

__all__ = [
    "ExperimentSetup",
    "WorkloadMeasurement",
    "run_workload",
    "compare_algorithms",
    "figure3_cost_model",
    "figure5_metric_trees",
    "figure6_bktree_vs_invindex",
    "figure7_coarse_tradeoff",
    "figure8_nyt_comparison",
    "figure9_yago_comparison",
    "figure10_distance_calls",
    "table5_model_accuracy",
    "table6_index_build",
]
