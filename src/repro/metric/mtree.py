"""M-tree: a balanced, paged metric index (Ciaccia, Patella, Zezula 1997).

The M-tree is the metric-space baseline the paper compares against.  It is a
height-balanced tree built by bottom-up node splits (like a B-tree): leaf
nodes store objects with their distance to the parent routing object;
internal nodes store routing objects with a covering radius.  Range queries
prune subtrees whose covering ball cannot intersect the query ball, using the
triangle inequality on the precomputed parent distances.

This is a from-scratch implementation supporting:

* configurable node capacity,
* random or max-spread promotion of routing objects at split time,
* generalised-hyperplane partitioning of the split entries,
* range search with parent-distance pruning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from repro.core.ranking import Ranking
from repro.core.stats import SearchStats

MetricDistance = Callable[[Ranking, Ranking], float]


@dataclass
class _Entry:
    """One entry of an M-tree node.

    In a leaf node the entry holds a data object; in an internal node it
    holds a routing object with its covering radius and a child node.
    """

    ranking: Ranking
    parent_distance: float = 0.0
    covering_radius: float = 0.0
    subtree: Optional["_Node"] = None

    @property
    def is_routing(self) -> bool:
        return self.subtree is not None


@dataclass
class _Node:
    """An M-tree node holding up to ``capacity`` entries."""

    is_leaf: bool
    entries: list[_Entry] = field(default_factory=list)
    parent_entry: Optional[_Entry] = None

    def is_full(self, capacity: int) -> bool:
        return len(self.entries) > capacity


class MTree:
    """M-tree over rankings with a user-supplied metric.

    Parameters
    ----------
    distance:
        Any metric between rankings (raw Footrule by default in callers).
    capacity:
        Maximum number of entries per node before a split (>= 2).
    promotion:
        ``"max_spread"`` (default) promotes the two entries that are farthest
        apart; ``"random"`` promotes a random pair — the cheaper policy of
        the original paper.
    seed:
        Seed for the random promotion policy, for reproducibility.

    Examples
    --------
    >>> from repro.core.distances import footrule_topk_raw
    >>> from repro.core.ranking import RankingSet
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9], [7, 9, 8]])
    >>> tree = MTree.build(rankings.rankings, footrule_topk_raw, capacity=2)
    >>> sorted(r.rid for r, d in tree.range_search(rankings[0], 4))
    [0, 1]
    """

    def __init__(
        self,
        distance: MetricDistance,
        capacity: int = 16,
        promotion: str = "max_spread",
        seed: int = 7,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"node capacity must be at least 2, got {capacity}")
        if promotion not in ("max_spread", "random"):
            raise ValueError(f"unknown promotion policy {promotion!r}")
        self._distance = distance
        self._capacity = capacity
        self._promotion = promotion
        self._rng = random.Random(seed)
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0
        self._construction_distance_calls = 0

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        rankings: Iterable[Ranking],
        distance: MetricDistance,
        capacity: int = 16,
        promotion: str = "max_spread",
        seed: int = 7,
    ) -> "MTree":
        """Insert all rankings one by one."""
        tree = cls(distance, capacity=capacity, promotion=promotion, seed=seed)
        for ranking in rankings:
            tree.insert(ranking)
        return tree

    def _measure(self, left: Ranking, right: Ranking) -> float:
        self._construction_distance_calls += 1
        return self._distance(left, right)

    def insert(self, ranking: Ranking) -> None:
        """Insert one ranking, splitting nodes on overflow."""
        self._insert_into(self._root, ranking, parent_distance=0.0)
        self._size += 1

    def _insert_into(self, node: _Node, ranking: Ranking, parent_distance: float) -> None:
        if node.is_leaf:
            node.entries.append(_Entry(ranking=ranking, parent_distance=parent_distance))
            if node.is_full(self._capacity):
                self._split(node)
            return
        # choose the routing entry whose covering radius needs the least enlargement
        best_entry: Optional[_Entry] = None
        best_distance = 0.0
        best_enlargement = float("inf")
        for entry in node.entries:
            separation = self._measure(ranking, entry.ranking)
            enlargement = max(0.0, separation - entry.covering_radius)
            if enlargement < best_enlargement or (
                enlargement == best_enlargement
                and best_entry is not None
                and separation < best_distance
            ):
                best_entry = entry
                best_distance = separation
                best_enlargement = enlargement
        assert best_entry is not None and best_entry.subtree is not None
        if best_distance > best_entry.covering_radius:
            best_entry.covering_radius = best_distance
        self._insert_into(best_entry.subtree, ranking, parent_distance=best_distance)

    # -- node splitting -----------------------------------------------------------------

    def _split(self, node: _Node) -> None:
        entries = node.entries
        first, second = self._promote(entries)
        group_one, group_two = self._partition(entries, first, second)

        node_one = _Node(is_leaf=node.is_leaf, entries=group_one)
        node_two = _Node(is_leaf=node.is_leaf, entries=group_two)
        entry_one = self._make_routing_entry(first.ranking, node_one)
        entry_two = self._make_routing_entry(second.ranking, node_two)
        node_one.parent_entry = entry_one
        node_two.parent_entry = entry_two

        parent = self._find_parent(self._root, node)
        if parent is None:
            # the split node is the root: grow the tree by one level
            new_root = _Node(is_leaf=False, entries=[entry_one, entry_two])
            self._root = new_root
            return
        # replace the routing entry that pointed at the overflowing node
        parent.entries = [entry for entry in parent.entries if entry.subtree is not node]
        for entry in (entry_one, entry_two):
            if parent.parent_entry is not None:
                entry.parent_distance = self._measure(entry.ranking, parent.parent_entry.ranking)
            parent.entries.append(entry)
        if parent.is_full(self._capacity):
            self._split(parent)

    def _promote(self, entries: list[_Entry]) -> tuple[_Entry, _Entry]:
        if self._promotion == "random" or len(entries) <= 2:
            pair = self._rng.sample(entries, 2)
            return pair[0], pair[1]
        best_pair = (entries[0], entries[1])
        best_spread = -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                spread = self._measure(entries[i].ranking, entries[j].ranking)
                if spread > best_spread:
                    best_spread = spread
                    best_pair = (entries[i], entries[j])
        return best_pair

    def _partition(
        self, entries: list[_Entry], first: _Entry, second: _Entry
    ) -> tuple[list[_Entry], list[_Entry]]:
        """Generalised-hyperplane partitioning: assign to the closer promoted entry."""
        group_one: list[_Entry] = []
        group_two: list[_Entry] = []
        for entry in entries:
            to_first = self._measure(entry.ranking, first.ranking)
            to_second = self._measure(entry.ranking, second.ranking)
            if to_first <= to_second:
                entry.parent_distance = to_first
                group_one.append(entry)
            else:
                entry.parent_distance = to_second
                group_two.append(entry)
        # every group must be non-empty for the tree to stay valid
        if not group_one:
            group_one.append(group_two.pop())
        if not group_two:
            group_two.append(group_one.pop())
        return group_one, group_two

    def _make_routing_entry(self, ranking: Ranking, subtree: _Node) -> _Entry:
        radius = 0.0
        for entry in subtree.entries:
            reach = entry.parent_distance + (entry.covering_radius if entry.is_routing else 0.0)
            radius = max(radius, reach)
        return _Entry(ranking=ranking, covering_radius=radius, subtree=subtree)

    def _find_parent(self, current: _Node, target: _Node) -> Optional[_Node]:
        if current.is_leaf:
            return None
        for entry in current.entries:
            if entry.subtree is target:
                return current
            if entry.subtree is not None:
                found = self._find_parent(entry.subtree, target)
                if found is not None:
                    return found
        return None

    # -- accessors ---------------------------------------------------------------------------

    @property
    def construction_distance_calls(self) -> int:
        """Distance evaluations spent during construction."""
        return self._construction_distance_calls

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Ranking]:
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node) -> Iterator[Ranking]:
        for entry in node.entries:
            if node.is_leaf:
                yield entry.ranking
            elif entry.subtree is not None:
                yield from self._iter_node(entry.subtree)

    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            child = next((e.subtree for e in node.entries if e.subtree is not None), None)
            if child is None:
                break
            node = child
            levels += 1
        return levels

    def memory_estimate_bytes(self) -> int:
        """Rough footprint: per-entry overhead plus the stored rankings."""
        per_entry_overhead = 40
        total_entries = 0
        ranking_bytes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total_entries += len(node.entries)
            for entry in node.entries:
                if node.is_leaf:
                    ranking_bytes += 8 * entry.ranking.size
                if entry.subtree is not None:
                    stack.append(entry.subtree)
        return per_entry_overhead * total_entries + ranking_bytes

    # -- queries -----------------------------------------------------------------------------

    def range_search(
        self,
        query: Ranking,
        theta_raw: float,
        stats: Optional[SearchStats] = None,
    ) -> list[tuple[Ranking, float]]:
        """All rankings within distance ``theta_raw`` of the query."""
        results: list[tuple[Ranking, float]] = []
        self._range_search_node(self._root, query, theta_raw, None, results, stats)
        return results

    def _range_search_node(
        self,
        node: _Node,
        query: Ranking,
        theta_raw: float,
        query_to_parent: Optional[float],
        results: list[tuple[Ranking, float]],
        stats: Optional[SearchStats],
    ) -> None:
        if stats is not None:
            stats.nodes_visited += 1
        for entry in node.entries:
            # triangle-inequality pre-filter on the stored parent distance
            if query_to_parent is not None:
                slack = theta_raw + (entry.covering_radius if entry.is_routing else 0.0)
                if abs(query_to_parent - entry.parent_distance) > slack:
                    continue
            if stats is not None:
                stats.distance_calls += 1
            separation = self._distance(query, entry.ranking)
            if entry.is_routing:
                assert entry.subtree is not None
                if separation <= theta_raw + entry.covering_radius:
                    self._range_search_node(
                        entry.subtree, query, theta_raw, separation, results, stats
                    )
            elif separation <= theta_raw:
                results.append((entry.ranking, separation))

    def __repr__(self) -> str:
        return f"MTree(size={self._size}, height={self.height()}, capacity={self._capacity})"
