"""One function per table of the paper's evaluation section."""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.analysis.report import format_table
from repro.core.coarse_index import CoarseIndex
from repro.core.distances import footrule_topk_raw
from repro.core.ranking import RankingSet
from repro.invindex.augmented import AugmentedInvertedIndex
from repro.invindex.blocked import BlockedInvertedIndex
from repro.invindex.delta import DeltaInvertedIndex
from repro.invindex.plain import PlainInvertedIndex
from repro.metric.bktree import BKTree
from repro.metric.mtree import MTree
from repro.experiments.figures import figure7_coarse_tradeoff
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.yago import yago_like_dataset


def table5_model_accuracy(
    datasets: Sequence[str] = ("nyt", "yago"),
    n: int = 1500,
    k: int = 10,
    thetas: Sequence[float] = (0.1, 0.2, 0.3),
    num_queries: int = 30,
    print_report: bool = False,
) -> list[dict]:
    """Gap between the best measured coarse performance and the model's pick (Table 5).

    For every dataset and query threshold the coarse index is swept over a
    grid of theta_C values; the row reports the wall-clock difference (in
    milliseconds, per workload) between the best measured configuration and
    the configuration the cost model recommends.
    """
    rows: list[dict] = []
    for theta in thetas:
        figure = figure7_coarse_tradeoff(
            datasets=datasets, n=n, k=k, theta=theta, num_queries=num_queries
        )
        for dataset, payload in figure["datasets"].items():
            best_seconds = payload["best_measured_seconds"]
            model_seconds = payload["model_overall_seconds"]
            if model_seconds is None:
                # the recommended theta_C was not on the measured grid; take
                # the closest measured grid point
                overall = payload["series"]["overall"]
                closest = min(overall, key=lambda value: abs(value - payload["model_theta_c"]))
                model_seconds = overall[closest]
            rows.append(
                {
                    "dataset": dataset,
                    "theta": theta,
                    "best_theta_c": payload["best_measured_theta_c"],
                    "model_theta_c": payload["model_theta_c"],
                    "difference_ms": (model_seconds - best_seconds) * 1000.0,
                }
            )
    if print_report:
        print(format_table(rows, title="Table 5 — cost-model accuracy"))
    return rows


def _timed_build(builder) -> tuple[object, float]:
    start = time.perf_counter()
    built = builder()
    return built, time.perf_counter() - start


def table6_index_build(
    datasets: Sequence[str] = ("nyt", "yago"),
    n: int = 1500,
    k: int = 10,
    coarse_theta_c: float = 0.5,
    print_report: bool = False,
) -> list[dict]:
    """Size and construction time of every index structure (Table 6)."""
    rows: list[dict] = []
    for dataset in datasets:
        if dataset == "nyt":
            rankings: RankingSet = nyt_like_dataset(n=n, k=k)
        elif dataset == "yago":
            rankings = yago_like_dataset(n=n, k=k)
        else:
            raise ValueError(f"unknown dataset preset {dataset!r}")

        builders = {
            "Plain Inverted Index": lambda r=rankings: PlainInvertedIndex.build(r),
            "Augmented Inverted Index": lambda r=rankings: AugmentedInvertedIndex.build(r),
            "Blocked Inverted Index": lambda r=rankings: BlockedInvertedIndex.build(r),
            "Delta Inverted Index": lambda r=rankings: DeltaInvertedIndex.build(r),
            "BK-tree": lambda r=rankings: BKTree.build(r.rankings, footrule_topk_raw),
            "M-tree": lambda r=rankings: MTree.build(r.rankings, footrule_topk_raw),
            "Coarse Index": lambda r=rankings: CoarseIndex.build(r, theta_c=coarse_theta_c),
        }
        for index_name, builder in builders.items():
            built, seconds = _timed_build(builder)
            size_bytes = built.memory_estimate_bytes()
            distance_calls = getattr(built, "construction_distance_calls", 0)
            rows.append(
                {
                    "dataset": dataset,
                    "index": index_name,
                    "size_mb": size_bytes / (1024.0 * 1024.0),
                    "construction_seconds": seconds,
                    "construction_distance_calls": distance_calls,
                }
            )
    if print_report:
        print(format_table(rows, title="Table 6 — index size and construction time"))
    return rows
