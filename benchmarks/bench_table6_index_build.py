"""Table 6 — index size and construction time for every index structure.

One benchmark per (dataset, index structure); the construction is the timed
operation and the size estimate plus construction distance calls are attached
as extra_info.  Expected shapes: the plain inverted index is the cheapest to
build, the rank-augmented index is the largest, and the coarse index is the
most expensive to construct (it builds a BK-tree and partitions it).
"""

from __future__ import annotations

import pytest

from repro.core.coarse_index import CoarseIndex
from repro.core.distances import footrule_topk_raw
from repro.invindex.augmented import AugmentedInvertedIndex
from repro.invindex.blocked import BlockedInvertedIndex
from repro.invindex.delta import DeltaInvertedIndex
from repro.invindex.plain import PlainInvertedIndex
from repro.metric.bktree import BKTree
from repro.metric.mtree import MTree

from _utils import run_once

BUILDERS = {
    "plain-inverted-index": lambda rankings: PlainInvertedIndex.build(rankings),
    "augmented-inverted-index": lambda rankings: AugmentedInvertedIndex.build(rankings),
    "blocked-inverted-index": lambda rankings: BlockedInvertedIndex.build(rankings),
    "delta-inverted-index": lambda rankings: DeltaInvertedIndex.build(rankings),
    "bk-tree": lambda rankings: BKTree.build(rankings.rankings, footrule_topk_raw),
    "m-tree": lambda rankings: MTree.build(rankings.rankings, footrule_topk_raw, capacity=16),
    "coarse-index": lambda rankings: CoarseIndex.build(rankings, theta_c=0.5),
}


@pytest.mark.benchmark(group="table6-index-build")
@pytest.mark.parametrize("index_name", list(BUILDERS))
@pytest.mark.parametrize("dataset", ["nyt", "yago"])
def test_table6_build(benchmark, dataset, index_name, nyt_setup, yago_setup):
    setup = nyt_setup if dataset == "nyt" else yago_setup
    builder = BUILDERS[index_name]
    built = run_once(benchmark, builder, setup.rankings)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["size_mb"] = round(built.memory_estimate_bytes() / (1024 * 1024), 4)
    benchmark.extra_info["construction_distance_calls"] = getattr(
        built, "construction_distance_calls", 0
    )
