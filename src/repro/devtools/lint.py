"""Project-specific static analysis for the repro codebase.

Generic linters check style; this one checks the *invariants that keep a
concurrent LSM store correct* — lock discipline, fsync-before-rename,
wire-schema/dispatch parity, metric-name consistency — by walking the
AST of every module under ``src/repro`` and running a small set of
:class:`Rule` objects over it.

The moving parts:

* :class:`ModuleInfo` — one parsed source file: path, raw text, AST, and
  the per-line ``# repro: noqa[rule-id]`` suppression map.
* :class:`Project` — every module plus the repo root, handed to rules
  that need a cross-file view (wire parity, metric catalogue).
* :class:`Rule` — subclass and override :meth:`Rule.check_module` (runs
  once per file) and/or :meth:`Rule.check_project` (runs once per lint
  pass).  Yield :class:`Finding` objects; the framework applies ``noqa``
  filtering, sorting, and reporting.
* :func:`run_lint` / :func:`main` — the programmatic and CLI entry
  points.  Exit codes: 0 clean, 1 findings, 2 usage or internal error.

Suppressions are *scoped*: ``# repro: noqa[guarded-by]`` on the
offending line silences that rule only; a bare ``# repro: noqa``
silences every rule on the line.  Each suppression is expected to carry
a short justification in the same comment — the rule catalogue in the
README documents the convention.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "build_parser",
    "load_project",
    "main",
    "run_lint",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: ``# repro: noqa`` or ``# repro: noqa[rule-a, rule-b]`` — optionally
#: followed by a justification in the same comment.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s\-]+)\])?")

#: All rules suppressed (bare ``# repro: noqa``).
_ALL_RULES = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str  # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "rule": self.rule, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class ModuleInfo:
    """One parsed source file plus its suppression map."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.noqa: dict[int, set[str]] = _parse_noqa(self.lines)

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return _ALL_RULES in rules or rule in rules

    def line_text(self, line: int) -> str:
        """The 1-indexed source line, or ``""`` past EOF."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def __repr__(self) -> str:
        return f"ModuleInfo({self.relpath!r})"


def _parse_noqa(lines: Sequence[str]) -> dict[int, set[str]]:
    suppressions: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        if match.group(1) is None:
            suppressions[number] = {_ALL_RULES}
        else:
            suppressions[number] = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
    return suppressions


@dataclass
class Project:
    """Every linted module, for rules that need the cross-file view."""

    root: Path
    modules: list[ModuleInfo] = field(default_factory=list)

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def read_text(self, relpath: str) -> Optional[str]:
        """A non-Python file's text (README.md, ...), if it exists."""
        candidate = self.root / relpath
        if candidate.is_file():
            return candidate.read_text(encoding="utf-8")
        return None


class Rule:
    """Base class: subclass, set ``id``/``description``, override a hook."""

    id: str = ""
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings for one file; runs once per module."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Cross-file findings; runs once per lint pass."""
        return ()


def all_rules() -> list[Rule]:
    """Every built-in rule, instantiated fresh."""
    from repro.devtools import rules as _rules

    return _rules.default_rules()


def _iter_sources(root: Path, paths: Sequence[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            yield candidate


def load_project(root: Path, paths: Optional[Sequence[Path]] = None) -> Project:
    """Parse every ``*.py`` under ``paths`` (default: ``root/src``)."""
    root = root.resolve()
    targets = [Path(p) for p in paths] if paths else [root / "src"]
    project = Project(root=root)
    for source in _iter_sources(root, targets):
        resolved = source.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = source.as_posix()
        text = resolved.read_text(encoding="utf-8")
        try:
            project.modules.append(ModuleInfo(resolved, relpath, text))
        except SyntaxError as error:
            raise SystemExit(f"repro lint: cannot parse {relpath}: {error}") from None
    return project


def run_lint(
    project: Project,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Run ``rules`` over ``project``; noqa-filtered, sorted findings."""
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        for module in project.modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))
    kept = []
    for finding in findings:
        module = project.module(finding.path)
        if module is not None and module.suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    return sorted(set(kept))


def _render_text(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} ({len(rules)} rules)")
    return "\n".join(lines)


def _render_json(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "rules": [rule.id for rule in rules],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis (see README: Static analysis).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root, for relative paths and README parity (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.  Exit 0 clean, 1 findings, 2 usage/internal error."""
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        width = max(len(rule.id) for rule in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.description}")
        return EXIT_CLEAN
    if args.rules is not None:
        wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(sorted(unknown))}"
                f" (known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return EXIT_ERROR
        rules = [rule for rule in rules if rule.id in wanted]
    root = Path(args.root)
    if not root.is_dir():
        print(f"repro lint: root {root} is not a directory", file=sys.stderr)
        return EXIT_ERROR
    paths = [Path(p) for p in args.paths] or None
    if paths:
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            print(f"repro lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
            return EXIT_ERROR
    try:
        project = load_project(root, paths)
        findings = run_lint(project, rules)
    except SystemExit as error:
        print(str(error), file=sys.stderr)
        return EXIT_ERROR
    render = _render_json if args.format == "json" else _render_text
    print(render(findings, rules))
    return EXIT_FINDINGS if findings else EXIT_CLEAN
