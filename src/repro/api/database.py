"""The unified serving facade: named collections behind one dispatch.

A :class:`Database` owns any number of *named collections*, each served by
one of the two engines the library already has:

* **static** — a read-only :class:`~repro.service.engine.QueryEngine` over
  a frozen :class:`~repro.core.ranking.RankingSet` (sharded, planned,
  cached);
* **live** — a :class:`~repro.live.engine.LiveQueryEngine` over a mutable
  :class:`~repro.live.collection.LiveCollection` (LSM layers, WAL,
  tombstones), which additionally accepts mutations.

A :class:`Session` is the protocol boundary: ``session.execute(request)``
takes a typed request (or its wire dictionary), routes it to the addressed
collection, and always returns a :class:`~repro.api.responses.Response`
envelope — malformed input, unknown collections, and engine-raised typed
errors all come back as structured error envelopes, never stack traces.
The network server in :mod:`repro.api.server` is nothing but this dispatch
behind a socket, which is why remote answers are byte-identical to
in-process ones.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.core.errors import (
    CollectionClosedError,
    InvalidRequestError,
    NotPrimaryError,
    StaleRoutingError,
    UnknownCollectionError,
    UnsupportedProtocolError,
)
from repro.core.ranking import Ranking, RankingSet
from repro.live.collection import DEFAULT_LIVE_ALGORITHM, LiveCollection
from repro.live.wal import WalRecord
from repro.live.engine import LiveQueryEngine
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry, render_prometheus
from repro.obs.slowlog import DEFAULT_SLOWLOG_CAPACITY, SlowQueryEntry, SlowQueryLog
from repro.obs.tracing import current_trace
from repro.service.engine import QueryEngine
from repro.service.recording import EngineResponse
from repro.api.requests import (
    AdminRequest,
    BatchRequest,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    RangeQueryRequest,
    Request,
    RequestLike,
    SubscribeRequest,
    UnsubscribeRequest,
    UpsertRequest,
    parse_request,
)
from repro.api.responses import MatchPayload, Response, error_response
from repro.api.surface import ExecutorSurface
from repro.devtools.locktrace import make_lock
from repro.sub.manager import ServerSubscription, SubscriptionManager

#: Engines a collection may be served by.
Engine = Union[QueryEngine, LiveQueryEngine]

#: Request kinds the slow-query log considers (queries, not mutations/admin).
_SLOW_LOGGED_KINDS = frozenset({"range", "knn", "batch"})


@dataclass(frozen=True)
class CollectionInfo:
    """One collection's descriptor, as reported by admin requests."""

    name: str
    kind: str
    size: int
    algorithm: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "size": self.size,
            "algorithm": self.algorithm,
        }


@dataclass
class _Collection:
    name: str
    kind: str  # "static" | "live"
    engine: Engine

    @property
    def live_engine(self) -> LiveQueryEngine:
        assert isinstance(self.engine, LiveQueryEngine)
        return self.engine

    def info(self) -> CollectionInfo:
        if self.kind == "static":
            assert isinstance(self.engine, QueryEngine)
            size = len(self.engine.rankings)
            candidates = self.engine.planner.candidates
            algorithm = candidates[0] if len(candidates) == 1 else "adaptive"
        else:
            assert isinstance(self.engine, LiveQueryEngine)
            size = len(self.engine.collection)
            algorithm = self.engine.algorithm
        return CollectionInfo(name=self.name, kind=self.kind, size=size, algorithm=algorithm)


class Database:
    """Named static and live collections behind one serving facade.

    Examples
    --------
    >>> from repro.core.ranking import RankingSet
    >>> database = Database()
    >>> _ = database.create_static(
    ...     "news", RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9]])
    ... )
    >>> session = database.session()
    >>> session.range_query([1, 2, 3], theta=0.3, collection="news").rids
    [0, 1]
    >>> database.close()
    """

    def __init__(self, slow_query_capacity: int = DEFAULT_SLOWLOG_CAPACITY) -> None:
        self._collections: dict[str, _Collection] = {}  # guarded-by: _lock
        self._cluster: dict[str, dict] = {}  # guarded-by: _lock
        self._lock = make_lock("Database._lock")
        self._closed = False  # guarded-by: _lock
        self._slow_log = SlowQueryLog(slow_query_capacity)
        self._subscriptions = SubscriptionManager()

    @property
    def slow_log(self) -> SlowQueryLog:
        """The N-slowest-queries ring every session of this database feeds."""
        return self._slow_log

    @property
    def subscriptions(self) -> SubscriptionManager:
        """The standing-query registry the protocol servers subscribe through."""
        return self._subscriptions

    # -- collection management -----------------------------------------------------

    def create_static(
        self,
        name: str,
        rankings: RankingSet,
        *,
        num_shards: int = 1,
        algorithms: Optional[list[str]] = None,
        cache_capacity: int = 1024,
    ) -> QueryEngine:
        """Register a read-only collection served by a :class:`QueryEngine`."""
        engine = QueryEngine(
            rankings,
            num_shards=num_shards,
            algorithms=algorithms,
            cache_capacity=cache_capacity,
        )
        try:
            self._register(name, _Collection(name=name, kind="static", engine=engine))
        except BaseException:
            engine.close()
            raise
        return engine

    def create_live(
        self,
        name: str,
        collection: Optional[LiveCollection] = None,
        *,
        algorithm: str = DEFAULT_LIVE_ALGORITHM,
        cache_capacity: int = 1024,
    ) -> LiveQueryEngine:
        """Register a mutable collection served by a :class:`LiveQueryEngine`."""
        engine = LiveQueryEngine(
            collection, algorithm=algorithm, cache_capacity=cache_capacity
        )
        try:
            self._register(name, _Collection(name=name, kind="live", engine=engine))
        except BaseException:
            # closing would also close a caller-supplied collection, which the
            # caller still owns on failure — only release the engine's own one
            if collection is None:
                engine.close()
            raise
        return engine

    def attach(self, name: str, engine: Engine) -> Engine:
        """Register an already-built engine under ``name``.

        The database takes ownership: :meth:`drop` and :meth:`close` close
        the engine.
        """
        if isinstance(engine, LiveQueryEngine):
            kind = "live"
        elif isinstance(engine, QueryEngine):
            kind = "static"
        else:
            raise InvalidRequestError(
                f"cannot attach {type(engine).__name__}; expected QueryEngine or LiveQueryEngine"
            )
        self._register(name, _Collection(name=name, kind=kind, engine=engine))
        return engine

    def _register(self, name: str, entry: _Collection) -> None:
        if not name or not isinstance(name, str):
            raise InvalidRequestError(f"collection name must be a non-empty string, got {name!r}")
        with self._lock:
            self._check_open()
            if name in self._collections:
                raise InvalidRequestError(f"collection {name!r} already exists")
            self._collections[name] = entry

    def drop(self, name: str) -> None:
        """Remove a collection and close its engine."""
        with self._lock:
            self._check_open()
            entry = self._collections.pop(name, None)
            self._cluster.pop(name, None)
        if entry is None:
            raise UnknownCollectionError(name)
        entry.engine.close()

    # -- cluster routing state -------------------------------------------------------

    def cluster_config(self, name: str) -> Optional[dict]:
        """This node's routing state for collection ``name``: the installed
        table plus the node's own role and shard id — ``None`` when the
        collection is not clustered (the common case)."""
        with self._lock:
            return self._cluster.get(name)

    def set_cluster_config(
        self, name: str, *, table: dict, role: str, shard_id: Optional[int]
    ) -> dict:
        """Install a routing table pushed by a coordinator (``admin route``)."""
        config = {"table": table, "role": role, "shard_id": shard_id}
        with self._lock:
            self._check_open()
            self._cluster[name] = config
        get_registry().gauge(
            metric_names.CLUSTER_ROUTING_VERSION,
            "Version of the routing table installed on this node.",
            collection=name,
        ).set(float(table.get("version", 0)))
        return config

    def names(self) -> list[str]:
        """The registered collection names, sorted."""
        with self._lock:
            return sorted(self._collections)

    def infos(self) -> list[CollectionInfo]:
        """Descriptors for every collection, sorted by name."""
        with self._lock:
            entries = sorted(self._collections.values(), key=lambda entry: entry.name)
        return [entry.info() for entry in entries]

    def engine(self, name: str) -> Engine:
        """The engine serving ``name`` (for direct in-process use)."""
        return self._lookup(name).engine

    def _lookup(self, name: str) -> _Collection:
        with self._lock:
            self._check_open()
            entry = self._collections.get(name)
        if entry is None:
            raise UnknownCollectionError(name)
        return entry

    def _check_open(self) -> None:  # holds: _lock
        if self._closed:
            raise CollectionClosedError("database is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed  # repro: noqa[guarded-by] lock-free monotonic-flag read

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Close every engine; subsequent requests get ``collection_closed``."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._collections.values())
            self._collections.clear()
        # stop the standing-query dispatchers before their engines go away
        self._subscriptions.close()
        for entry in entries:
            entry.engine.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- serving -------------------------------------------------------------------

    def session(self) -> "Session":
        """A protocol session over this database (cheap; one per client)."""
        return Session(self)

    def execute(self, request: RequestLike) -> Response:
        """Shortcut for ``database.session().execute(request)``."""
        return self.session().execute(request)

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"collections={self.names()}"  # repro: noqa[guarded-by] racy repr read, diagnostic only
        return f"Database({state})"


class Session(ExecutorSurface):
    """The ``execute(request) -> Response`` dispatch over one database.

    Sessions are thread-compatible: the server hands one to every client
    connection, all sharing the same :class:`Database`.  The only
    per-session state is :attr:`subscriptions` — the standing queries a
    protocol server registered for its connection, so disconnect can tear
    down exactly that connection's pushes.
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        #: Standing queries keyed by subscription id; maintained by the
        #: protocol servers (in-process sessions cannot carry pushes).
        self.subscriptions: dict[Any, ServerSubscription] = {}

    def cancel_subscriptions(self) -> None:
        """Tear down every standing query this session registered."""
        subs = list(self.subscriptions.values())
        self.subscriptions.clear()
        self._database.subscriptions.cancel_all(subs)

    @property
    def database(self) -> Database:
        """The database this session serves."""
        return self._database

    def execute(self, request: RequestLike) -> Response:
        """Answer one request; failures become typed error envelopes."""
        try:
            parsed = parse_request(request)
        except Exception as error:
            return error_response(error)
        start = time.perf_counter()
        try:
            response = self._dispatch(parsed)
        except Exception as error:
            # error_response discriminates the typed/user-input failures from
            # true internals; a server must never crash a connection
            return error_response(error)
        if response.ok and parsed.TYPE in _SLOW_LOGGED_KINDS:
            self._record_slow(parsed, response, time.perf_counter() - start)
        return response

    def _record_slow(self, request: Request, response: Response, wall_seconds: float) -> None:
        """Offer one answered query to the database's slow-query log."""
        stats = response.stats or {}
        if response.matches is not None:
            results = len(response.matches)
        elif response.batch is not None:
            results = sum(len(entry.matches or ()) for entry in response.batch)
        else:
            results = 0
        trace = current_trace()
        self._database.slow_log.record(
            SlowQueryEntry(
                kind=request.TYPE,
                collection=request.collection,
                wall_seconds=wall_seconds,
                algorithm=str(stats.get("algorithm", "")),
                planner_source=str(stats.get("planner_source", "")),
                results=results,
                trace_id=trace.trace_id if trace is not None else "",
                # the request's spans so far; the transport-level root span is
                # still open, so its duration reads as time-to-here
                trace=trace.to_dict() if trace is not None else None,
            )
        )

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, request: Request) -> Response:
        if isinstance(request, (SubscribeRequest, UnsubscribeRequest)):
            # the protocol servers intercept these on v2 connections before
            # dispatch; reaching here means the transport cannot push
            raise UnsupportedProtocolError(
                "subscriptions need a protocol v2 server connection; "
                "in-process sessions and v1 connections cannot carry push frames"
            )
        if isinstance(request, AdminRequest):
            return self._dispatch_admin(request)
        entry = self._database._lookup(request.collection)
        config = self._database.cluster_config(request.collection)
        if config is not None and config.get("role") == "replica":
            # replicas serve nothing directly: reads would race the shipped
            # WAL tail, and answers must be byte-identical cluster-wide
            raise NotPrimaryError(
                f"collection {request.collection!r} on this node is a replica; "
                f"route the request via the coordinator or the shard primary",
                routing=config.get("table"),
            )
        if isinstance(request, RangeQueryRequest):
            answered = entry.engine.query(
                request.query, request.theta, algorithm=request.algorithm
            )
            return _range_response(answered, limit=request.limit, cursor=request.cursor)
        if isinstance(request, KnnRequest):
            answered = entry.engine.knn(request.query, request.k, algorithm=request.algorithm)
            return _knn_response(answered)
        if isinstance(request, BatchRequest):
            queries = [Ranking(items) for items in request.queries]
            responses = entry.engine.batch_query(
                queries, request.theta, algorithm=request.algorithm
            )
            return Response(
                ok=True, batch=tuple(_range_response(answered) for answered in responses)
            )
        return self._dispatch_mutation(request, entry, config)

    def _dispatch_mutation(
        self, request: Request, entry: _Collection, config: Optional[dict] = None
    ) -> Response:
        if entry.kind != "live":
            raise InvalidRequestError(
                f"collection {entry.name!r} is static (read-only); mutations need a live collection"
            )
        if config is not None:
            self._check_routing(request, config)
        engine = entry.live_engine
        if isinstance(request, InsertRequest):
            key = engine.insert(list(request.items))
            return Response(ok=True, key=key)
        if isinstance(request, DeleteRequest):
            engine.delete(request.key)
            return Response(ok=True, key=request.key)
        if isinstance(request, UpsertRequest):
            engine.upsert(request.key, list(request.items))
            return Response(ok=True, key=request.key)
        raise InvalidRequestError(f"unhandled request type {type(request).__name__}")

    @staticmethod
    def _check_routing(request: Request, config: dict) -> None:
        """Reject mutations this clustered node does not own.

        The raised errors carry the node's routing table, so a client that
        routed with a stale version can install the fresh one straight from
        the error envelope and retry — no extra round trip.
        """
        table = config.get("table") or {}
        if isinstance(request, InsertRequest):
            coordinator = table.get("coordinator")
            hint = f" at {coordinator}" if coordinator else ""
            raise NotPrimaryError(
                f"collection {request.collection!r} is clustered: insert keys are "
                f"assigned centrally — send inserts to the coordinator{hint}",
                routing=table or None,
            )
        shard_id = config.get("shard_id")
        if shard_id is None or not table.get("slots"):
            return
        from repro.cluster.routing import table_owner  # runtime import: no cycle

        owner = table_owner(table, request.key)
        if owner != shard_id:
            raise StaleRoutingError(
                f"key {request.key} belongs to shard {owner} under routing "
                f"version {table.get('version')}; this node serves shard {shard_id}",
                routing=table,
            )

    def _dispatch_admin(self, request: AdminRequest) -> Response:
        database = self._database
        if request.action == "ping":
            database._check_open()
            return Response(ok=True, data={"pong": True})
        if request.action == "collections":
            database._check_open()
            return Response(
                ok=True, data={"collections": [info.to_dict() for info in database.infos()]}
            )
        if request.action == "shutdown":
            # meaningful to a server (which stops after replying); in-process
            # sessions just acknowledge so the surface behaves uniformly
            database._check_open()
            return Response(ok=True, data={"acknowledged": True})
        if request.action == "metrics":
            database._check_open()
            if request.scope == "cluster":
                raise InvalidRequestError(
                    "metrics scope 'cluster' needs a coordinator; this server "
                    "only scrapes its own process"
                )
            snapshot = get_registry().snapshot()
            if request.format == "prometheus":
                return Response(ok=True, data={"exposition": render_prometheus(snapshot)})
            return Response(ok=True, data=snapshot)
        if request.action == "route":
            database._check_open()
            if request.table is not None:
                config = database.set_cluster_config(
                    request.collection,
                    table=request.table,
                    role=request.role or "primary",
                    shard_id=request.shard_id,
                )
            else:
                config = database.cluster_config(request.collection)
            if config is None:
                return Response(ok=True, data={"routing": None})
            return Response(
                ok=True,
                data={
                    "routing": config["table"],
                    "role": config["role"],
                    "shard_id": config["shard_id"],
                },
            )
        if request.action == "reshard":
            raise InvalidRequestError(
                "reshard is a coordinator verb; this server is a plain database"
            )
        if request.action == "slow_queries":
            database._check_open()
            return Response(
                ok=True,
                data={
                    "capacity": database.slow_log.capacity,
                    "slow_queries": [
                        entry.as_dict() for entry in database.slow_log.entries()
                    ],
                },
            )
        if request.action == "create":
            return self._dispatch_create(request)
        if request.action == "drop":
            database.drop(request.collection)
            return Response(ok=True, data={"dropped": request.collection})
        # everything below operates on one collection — keep this dispatch
        # and the request class's own grouping in lockstep
        assert request.addresses_collection, request.action
        entry = database._lookup(request.collection)
        if request.action == "stats":
            data = entry.info().to_dict()
            data["engine"] = entry.engine.stats().as_dict()
            if entry.kind == "live":
                live = entry.live_engine.collection
                data["live"] = live.stats().as_dict()
                data["layers"] = {
                    "memtable": live.memtable_size,
                    "segments": live.segment_count,
                    "base": live.base_size,
                    "tombstones": live.tombstone_count,
                }
            return Response(ok=True, data=data)
        if entry.kind != "live":
            raise InvalidRequestError(
                f"admin action {request.action!r} needs a live collection; "
                f"{entry.name!r} is static"
            )
        engine = entry.live_engine
        if request.action == "flush":
            return Response(ok=True, data={"segment_id": engine.flush()})
        if request.action == "compact":
            return Response(ok=True, data={"compacted": engine.compact()})
        if request.action == "replicate":
            collection = engine.collection
            applied = 0
            skipped = 0
            for payload in request.records or ():
                record = WalRecord(
                    seq=payload["seq"],
                    op=payload["op"],
                    key=payload["key"],
                    items=None if payload["items"] is None else tuple(payload["items"]),
                )
                if collection.apply_replicated(record):
                    applied += 1
                else:
                    skipped += 1
            return Response(
                ok=True,
                data={
                    "applied_seq": collection.last_seq,
                    "applied": applied,
                    "skipped": skipped,
                },
            )
        if request.action == "promote":
            config = database.cluster_config(request.collection)
            if config is not None:
                with database._lock:
                    config["role"] = "primary"
            return Response(
                ok=True,
                data={
                    "promoted": request.collection,
                    "last_seq": engine.collection.last_seq,
                },
            )
        if request.action == "export":
            return Response(ok=True, data=engine.collection.export_state())
        assert request.action == "snapshot"
        return Response(ok=True, data={"path": str(engine.snapshot())})

    def _dispatch_create(self, request: AdminRequest) -> Response:
        """Collection DDL: register a static or live collection over the wire."""
        database = self._database
        name = request.collection
        num_shards = 1 if request.num_shards is None else request.num_shards
        cache_capacity = 1024 if request.cache_capacity is None else request.cache_capacity
        if request.engine == "static":
            assert request.rankings is not None  # request validation guarantees it
            rankings = RankingSet.from_lists([list(items) for items in request.rankings])
            database.create_static(
                name,
                rankings,
                num_shards=num_shards,
                algorithms=[request.algorithm] if request.algorithm else None,
                cache_capacity=cache_capacity,
            )
            size = len(rankings)
        else:
            collection = LiveCollection(num_shards=num_shards)
            engine = database.create_live(
                name,
                collection,
                algorithm=request.algorithm or DEFAULT_LIVE_ALGORITHM,
                cache_capacity=cache_capacity,
            )
            try:
                if request.rankings is not None:
                    for items in request.rankings:
                        engine.insert(list(items))
            except BaseException:
                # a bad seed row must not leave a half-created collection behind
                database.drop(name)
                raise
            size = len(collection)
        return Response(
            ok=True, data={"created": name, "engine": request.engine, "size": size}
        )


def _range_response(
    answered: EngineResponse, limit: Optional[int] = None, cursor: int = 0
) -> Response:
    """Wrap one answered range query, applying pagination.

    The window is cut on the engine's raw matches first, so payloads are
    only built for the page actually returned.
    """
    raw = answered.result.matches  # type: ignore[union-attr]
    next_cursor: Optional[int] = None
    if limit is not None or cursor:
        end = len(raw) if limit is None else cursor + limit
        window = raw[cursor:end]
        if end < len(raw):
            next_cursor = end
    else:
        window = raw
    matches = tuple(
        MatchPayload(rid=match.rid, distance=match.distance, items=match.ranking.items)
        for match in window
    )
    return Response(
        ok=True, matches=matches, stats=answered.stats.as_dict(), cursor=next_cursor
    )


def _knn_response(answered: EngineResponse) -> Response:
    """Wrap one answered k-NN query."""
    matches = tuple(
        MatchPayload(
            rid=neighbour.rid, distance=neighbour.distance, items=neighbour.ranking.items
        )
        for neighbour in answered.result.neighbours  # type: ignore[union-attr]
    )
    return Response(ok=True, matches=matches, stats=answered.stats.as_dict())
