"""Distance bounds used for pruning (Sections 6.1 - 6.3 of the paper).

Three families of bounds are implemented:

* **Overlap bounds** (Section 6.1): the smallest possible Footrule distance
  between two rankings with a given overlap, the minimum overlap required to
  stay within a threshold (Lemma 2), and the number of index lists that are
  sufficient to retrieve every candidate.
* **Partial-information bounds** (Section 6.2): NRA-style lower and upper
  bounds for a candidate of which only some item/rank pairs have been seen
  while scanning the query's index lists.
* **Block bound** (Section 6.3): the minimum partial distance contributed by
  a block ``B_{i@j}`` (item ``i`` at rank ``j``) given the item's rank in the
  query, used to skip entire blocks.

All bounds in this module operate on the *raw* (integer) Footrule scale;
conversion from normalised thresholds happens at the call sites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Mapping


def lower_bound_zero_overlap(k: int) -> int:
    """``L(k)``: the Footrule distance of two disjoint rankings of size ``k``."""
    if k < 0:
        raise ValueError(f"ranking size must be non-negative, got {k}")
    return k * (k + 1)


def minimal_distance_for_overlap(k: int, overlap: int) -> int:
    """``L(k, omega)``: smallest possible distance given an overlap of ``omega``.

    The minimum is attained when the ``omega`` overlapping items occupy the
    top ``omega`` positions of both rankings in the same order, so only the
    ``k - omega`` non-shared items of each ranking contribute, exactly as if
    two disjoint rankings of size ``k - omega`` were compared:
    ``L(k, omega) = L(k - omega)``.
    """
    if not 0 <= overlap <= k:
        raise ValueError(f"overlap must lie in [0, {k}], got {overlap}")
    return lower_bound_zero_overlap(k - overlap)


def min_overlap_for_threshold(k: int, theta_raw: float) -> int:
    """Minimum overlap any result ranking must have with the query (Lemma 2).

    Solving ``L(k, omega) <= theta`` for ``omega`` yields
    ``omega = floor(0.5 * (1 + 2k - sqrt(1 + 4 * theta)))``.  Rankings whose
    overlap with the query is smaller than the returned value cannot be
    within raw distance ``theta_raw`` of the query.
    """
    if theta_raw < 0:
        raise ValueError(f"threshold must be non-negative, got {theta_raw}")
    if theta_raw >= lower_bound_zero_overlap(k):
        return 0
    omega = math.floor(0.5 * (1.0 + 2.0 * k - math.sqrt(1.0 + 4.0 * theta_raw)))
    return max(0, min(k, omega))


def sufficient_lists(k: int, theta_raw: float, positional: bool = False) -> int:
    """Number of query index lists that must be accessed to avoid false negatives.

    With a minimum required overlap ``omega`` (Lemma 2), any result ranking
    shares at least ``omega`` items with the query, so it is guaranteed to
    appear in at least one list of *any* subset of ``k - omega + 1`` query
    lists.  If ``positional`` is true the refined variant of the paper is
    used: ``k - omega`` lists suffice provided at least one of the accessed
    lists belongs to an item ranked in the query's top ``omega`` positions
    (the caller is responsible for that placement).
    """
    omega = min_overlap_for_threshold(k, theta_raw)
    if omega == 0:
        return k
    required = k - omega if positional else k - omega + 1
    return max(1, min(k, required))


def block_skip_bound(query_rank: int, block_rank: int) -> int:
    """Minimum partial distance contributed by block ``B_{i@j}``.

    Every ranking stored in the block has item ``i`` at rank ``j``; the item
    is ranked ``query_rank`` in the query, so its contribution to the
    Footrule distance is exactly ``|j - query_rank|``, which lower-bounds the
    total distance of every ranking in the block.
    """
    return abs(block_rank - query_rank)


@dataclass(frozen=True)
class PartialBounds:
    """Lower and upper Footrule bounds for a partially seen candidate."""

    lower: int
    upper: int

    def prunable(self, theta_raw: float) -> bool:
        """True if the candidate can never qualify (``lower > theta``)."""
        return self.lower > theta_raw

    def acceptable(self, theta_raw: float) -> bool:
        """True if the candidate is guaranteed to qualify (``upper <= theta``)."""
        return self.upper <= theta_raw


def partial_distance_bounds(
    k: int,
    query_ranks: Mapping[int, int],
    seen_candidate_ranks: Mapping[int, int],
    processed_query_items: Iterable[int],
) -> PartialBounds:
    """NRA-style lower/upper bounds for a candidate during list-at-a-time access.

    Parameters
    ----------
    k:
        Ranking size.
    query_ranks:
        Item -> rank map of the query.
    seen_candidate_ranks:
        Item -> rank map of the candidate entries observed so far.  These are
        exactly the (query item, candidate rank) pairs read from the inverted
        index lists processed up to now.
    processed_query_items:
        The query items whose index lists have already been fully processed.
        For such an item that is *not* among ``seen_candidate_ranks`` we know
        it is absent from the candidate, so it contributes exactly
        ``k - query_rank``.

    Returns
    -------
    PartialBounds
        ``lower`` assumes every still-unseen candidate item coincides in rank
        with a still-unseen query item (contribution 0); ``upper`` assumes no
        further overlap, so every unseen candidate rank slot ``r`` contributes
        ``k - r`` and every unprocessed query item ``i`` contributes
        ``k - query_ranks[i]``.
    """
    processed = set(processed_query_items)
    exact = 0
    for item, candidate_rank in seen_candidate_ranks.items():
        exact += abs(query_ranks.get(item, k) - candidate_rank)
    for item in processed:
        if item not in seen_candidate_ranks:
            # the candidate provably does not contain this query item
            exact += k - query_ranks[item]

    lower = exact

    # Upper bound: remaining (unseen) query items are absent from the candidate
    # and the candidate's unseen rank slots are filled by items absent from the
    # query.
    unseen_query_penalty = sum(
        k - rank
        for item, rank in query_ranks.items()
        if item not in processed and item not in seen_candidate_ranks
    )
    occupied_ranks = set(seen_candidate_ranks.values())
    unseen_candidate_penalty = sum(k - rank for rank in range(k) if rank not in occupied_ranks)
    upper = exact + unseen_query_penalty + unseen_candidate_penalty
    return PartialBounds(lower=lower, upper=upper)


def overlap_upper_bound_distance(k: int, overlap: int) -> int:
    """Largest possible distance between two rankings sharing ``overlap`` items.

    Used in tests as the dual of :func:`minimal_distance_for_overlap`.  The
    exact combinatorial maximum is not needed by the paper's algorithms, so a
    safe (possibly loose) bound is returned: the global maximum
    ``k * (k + 1)`` minus the minimum saving the overlap guarantees.

    The saving of one shared item placed at ranks ``r1`` and ``r2`` relative
    to being unshared is ``(k - r1) + (k - r2) - |r1 - r2| = 2 * (k - max(r1, r2))``,
    which is at least 2 because ranks are at most ``k - 1``.  Hence sharing
    ``overlap`` items saves at least ``2 * overlap``.
    """
    if not 0 <= overlap <= k:
        raise ValueError(f"overlap must lie in [0, {k}], got {overlap}")
    return lower_bound_zero_overlap(k) - 2 * overlap
