"""Saving and loading ranking collections.

Two plain-text formats are supported:

* **TSV** (default): one ranking per line, item ids separated by tabs.  This
  is the interchange format a user would export their own rankings in.
* **JSON**: a single object ``{"k": ..., "rankings": [[...], ...]}`` for
  round-tripping with metadata.

Both formats store item ids only; ranking ids are re-assigned densely on
load, matching how :class:`repro.core.ranking.RankingSet` works.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import InvalidRankingError
from repro.core.ranking import RankingSet


def save_rankings(rankings: RankingSet, path: str | Path, fmt: str = "tsv") -> Path:
    """Write a ranking collection to ``path`` in the given format."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "tsv":
        lines = ["\t".join(str(item) for item in ranking.items) for ranking in rankings]
        target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    elif fmt == "json":
        payload = {"k": rankings.k, "rankings": [list(ranking.items) for ranking in rankings]}
        target.write_text(json.dumps(payload), encoding="utf-8")
    else:
        raise ValueError(f"unknown format {fmt!r}; expected 'tsv' or 'json'")
    return target


def load_rankings(path: str | Path, fmt: str | None = None) -> RankingSet:
    """Read a ranking collection from ``path``.

    The format is inferred from the file extension unless given explicitly.
    """
    source = Path(path)
    if fmt is None:
        fmt = "json" if source.suffix.lower() == ".json" else "tsv"
    text = source.read_text(encoding="utf-8")
    if fmt == "json":
        payload = json.loads(text)
        try:
            lists = payload["rankings"]
        except (TypeError, KeyError) as error:
            raise InvalidRankingError(f"malformed ranking JSON in {source}") from error
        return RankingSet.from_lists(lists)
    if fmt == "tsv":
        lists = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                lists.append([int(token) for token in stripped.split("\t")])
            except ValueError as error:
                raise InvalidRankingError(
                    f"non-integer item id on line {line_number} of {source}"
                ) from error
        return RankingSet.from_lists(lists)
    raise ValueError(f"unknown format {fmt!r}; expected 'tsv' or 'json'")
