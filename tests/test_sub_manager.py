"""Standing queries in-process: delta algebra, priming, coalescing, overflow.

These tests drive :class:`~repro.sub.manager.SubscriptionManager` directly
with collecting ``deliver`` callables — no sockets — so they pin down the
server-side contracts the wire tests then observe end to end:

* ``diff_matches`` / ``apply_delta`` are exact inverses over any before /
  after result pair (same rids, distances, items, order);
* the first offer primes the snapshot, later offers enqueue exact diffs,
  and empty diffs are never sent;
* a burst of commits coalesces into few recomputes (the counter metric
  counts the merged wake-ups);
* a subscriber that stops consuming overflows its bounded queue and gets
  exactly one terminal ``subscription_overflow`` push — and only that
  subscription dies.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.database import Database
from repro.api.requests import SubscribeRequest
from repro.api.responses import MatchPayload, Response
from repro.core.errors import InvalidRequestError
from repro.sub import (
    EVENT_DELTA,
    EVENT_ERROR,
    PushDelta,
    apply_delta,
    delta_body,
    diff_matches,
)


def _match(rid: int, distance: float, items=(1, 2, 3)) -> MatchPayload:
    return MatchPayload(rid=rid, distance=distance, items=tuple(items))


class TestDeltaAlgebra:
    def test_diff_then_apply_round_trips(self):
        before = [_match(1, 0.1), _match(2, 0.2), _match(3, 0.3)]
        after = [_match(2, 0.05), _match(4, 0.15), _match(3, 0.3)]
        delta = diff_matches({m.rid: m for m in before}, after, version=7)
        assert [m.rid for m in delta.entered] == [4]
        assert [m.rid for m in delta.moved] == [2]
        assert delta.left == (1,)
        assert delta.version == 7
        replayed = apply_delta(tuple(before), delta)
        assert replayed == tuple(sorted(after, key=lambda m: (m.distance, m.rid)))

    def test_empty_diff_is_empty(self):
        matches = [_match(1, 0.1), _match(2, 0.2)]
        delta = diff_matches({m.rid: m for m in matches}, matches, version=1)
        assert delta.empty
        assert apply_delta(tuple(matches), delta) == tuple(matches)

    def test_item_change_without_distance_change_is_a_move(self):
        before = {1: _match(1, 0.1, items=(1, 2, 3))}
        after = [_match(1, 0.1, items=(3, 2, 1))]
        delta = diff_matches(before, after, version=2)
        assert [m.rid for m in delta.moved] == [1]
        assert not delta.entered and not delta.left

    def test_apply_rejects_moving_an_absent_rid(self):
        delta = PushDelta(version=1, moved=(_match(9, 0.5),))
        with pytest.raises(InvalidRequestError, match="rid 9"):
            apply_delta((), delta)

    def test_wire_round_trip_via_dict(self):
        delta = PushDelta(
            version=3, entered=(_match(5, 0.25),), moved=(), left=(1, 4)
        )
        body = delta_body(delta)
        assert body["event"] == EVENT_DELTA
        assert PushDelta.from_dict(body) == delta

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(InvalidRequestError):
            PushDelta.from_dict({"event": EVENT_DELTA, "version": "x"})
        with pytest.raises(InvalidRequestError):
            PushDelta.from_dict("not a dict")


class _Collector:
    """A deliver callable that records every push body."""

    def __init__(self) -> None:
        self.bodies: list[dict] = []
        self._cond = threading.Condition()

    def __call__(self, subscription_id, body: dict) -> None:
        with self._cond:
            self.bodies.append(dict(body))
            self._cond.notify_all()

    def wait_for(self, count: int, timeout: float = 10.0) -> list[dict]:
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.bodies) < count:
                remaining = deadline - time.monotonic()
                assert remaining > 0, f"only {len(self.bodies)}/{count} pushes arrived"
                self._cond.wait(timeout=remaining)
            return list(self.bodies)


def _result_bytes(matches) -> bytes:
    """Matches-only comparison key (a subscribe reply carries extra data)."""
    return Response(ok=True, matches=tuple(matches)).result_bytes()


def _subscribe(database, collector, *, sub_id=1, theta=0.4, queue_size=None):
    request = SubscribeRequest(
        collection="live",
        mode="range",
        items=(1, 2, 3, 4, 5, 6),
        theta=theta,
        queue_size=queue_size,
    )
    engine = database._lookup("live").engine
    return database.subscriptions.subscribe(engine, request, sub_id, collector, "test")


class TestManager:
    def _database(self):
        database = Database()
        live = database.create_live("live")
        live.insert([1, 2, 3, 4, 5, 6])
        live.insert([2, 1, 3, 4, 5, 6])
        live.insert([9, 8, 7, 6, 5, 4])
        return database

    def test_snapshot_matches_a_fresh_query(self):
        database = self._database()
        try:
            collector = _Collector()
            response, sub = _subscribe(database, collector)
            local = database.session().range_query([1, 2, 3, 4, 5, 6], 0.4, collection="live")
            assert _result_bytes(response.matches) == _result_bytes(local.matches)
            assert database.subscriptions.active == 1
            database.subscriptions.unsubscribe(sub)
            assert database.subscriptions.active == 0
        finally:
            database.close()

    @staticmethod
    def _converged(collector, snapshot, expected_bytes, timeout=10.0):
        """Accumulated deltas over the snapshot reach the fresh answer."""
        deadline = time.monotonic() + timeout
        while True:
            current = snapshot
            for body in list(collector.bodies):
                assert body["event"] == EVENT_DELTA
                current = apply_delta(current, PushDelta.from_dict(body))
            if _result_bytes(current) == expected_bytes:
                return
            assert time.monotonic() < deadline, "deltas never converged"
            time.sleep(0.02)

    def test_deltas_replay_to_the_fresh_answer_across_churn(self):
        database = self._database()
        try:
            collector = _Collector()
            response, sub = _subscribe(database, collector)
            snapshot = tuple(response.matches)
            session = database.session()

            def fresh() -> bytes:
                answer = session.range_query([1, 2, 3, 4, 5, 6], 0.4, collection="live")
                return _result_bytes(answer.matches)

            key = session.insert([1, 2, 3, 4, 6, 5], collection="live")
            self._converged(collector, snapshot, fresh())
            session.upsert(key, [1, 2, 3, 5, 4, 6], collection="live")
            self._converged(collector, snapshot, fresh())
            session.delete(key, collection="live")
            self._converged(collector, snapshot, fresh())
            database.subscriptions.unsubscribe(sub)
        finally:
            database.close()

    def test_burst_coalesces_into_fewer_pushes(self):
        database = self._database()
        try:
            collector = _Collector()
            response, sub = _subscribe(database, collector, theta=0.99)
            mutations = 40
            session = database.session()
            for index in range(mutations):
                session.insert([1, 2, 3, 4, 5, 7 + index], collection="live")
            expected = len(response.matches) + mutations

            def settled() -> bool:
                current = tuple(response.matches)
                for body in list(collector.bodies):
                    current = apply_delta(current, PushDelta.from_dict(body))
                return len(current) == expected

            deadline = time.monotonic() + 15.0
            while not settled():
                assert time.monotonic() < deadline, "burst never fully applied"
                time.sleep(0.05)
            # a sequential mutator cannot outrun the dispatcher by much, so
            # coalescing is best-effort here; what must hold is that every
            # push is an exact non-empty delta and none were lost
            assert 1 <= len(collector.bodies) <= mutations
            database.subscriptions.unsubscribe(sub)
        finally:
            database.close()

    def test_overflow_cancels_with_one_terminal_error_push(self):
        database = self._database()
        try:
            release = threading.Event()

            class _Stuck(_Collector):
                def __call__(self, subscription_id, body: dict) -> None:
                    super().__call__(subscription_id, body)
                    release.wait(timeout=30.0)  # jam the sender on its first push

            stuck = _Stuck()
            healthy = _Collector()
            _, slow = _subscribe(database, stuck, sub_id=1, theta=0.99, queue_size=1)
            _, fast = _subscribe(database, healthy, sub_id=2, theta=0.99, queue_size=64)
            session = database.session()
            # first insert occupies the jammed sender; the queue (bound 1)
            # fills with the next delta, and one more overflows it
            for extra in range(8):
                session.insert([1, 2, 3, 4, 5, 100 + extra], collection="live")
                time.sleep(0.05)

            deadline = time.monotonic() + 10.0
            while database.subscriptions.active != 1:
                assert time.monotonic() < deadline, "overflow never cancelled the slow sub"
                time.sleep(0.05)
            release.set()
            bodies = stuck.wait_for(2)
            terminal = bodies[-1]
            deadline = time.monotonic() + 10.0
            while stuck.bodies[-1]["event"] != EVENT_ERROR:
                assert time.monotonic() < deadline, "terminal overflow push never arrived"
                time.sleep(0.05)
                terminal = stuck.bodies[-1]
            assert terminal["error"]["code"] == "subscription_overflow"
            assert sum(1 for b in stuck.bodies if b["event"] == EVENT_ERROR) == 1
            # the healthy subscription survived and kept receiving deltas
            assert database.subscriptions.active == 1
            assert healthy.bodies and all(
                body["event"] == EVENT_DELTA for body in healthy.bodies
            )
            database.subscriptions.unsubscribe(fast)
            database.subscriptions.unsubscribe(slow)  # idempotent on the dead one
        finally:
            database.close()

    def test_close_tears_down_every_watch_and_restores_the_hook(self):
        database = self._database()
        engine = database._lookup("live").engine
        prior_hook = engine.collection.wal_hook
        collector = _Collector()
        _subscribe(database, collector)
        assert engine.collection.wal_hook is not prior_hook  # watch installed
        database.close()
        assert engine.collection.wal_hook is prior_hook  # chained hook restored
        assert database.subscriptions.active == 0
