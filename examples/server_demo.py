#!/usr/bin/env python3
"""Network-serving demo: one Database, a TCP server, and remote clients.

The service and live demos drive the engines in-process.  This demo runs
the full protocol stack the way a deployment would:

1. a :class:`repro.api.Database` registers two named collections — a
   read-only ``news`` collection (sharded ``QueryEngine``) and a mutable
   ``updates`` collection (``LiveQueryEngine``);
2. a :class:`repro.api.DatabaseServer` shares that database with every
   client over length-prefixed JSON frames;
3. a :class:`repro.api.Client` issues range, k-NN, and batch queries plus
   mutations — the same method surface the in-process session has;
4. the answers are compared byte-for-byte against the in-process session
   (``result_bytes`` strips only the volatile latency stats);
5. a client's ``admin``/``shutdown`` request stops the server cleanly.

Run with::

    PYTHONPATH=src python examples/server_demo.py
"""

from __future__ import annotations

from repro.api import Client, Database, DatabaseServer
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries


def show(title: str, response) -> None:
    stats = response.stats or {}
    origin = "cache" if stats.get("cache_hit") else stats.get("planner_source", "?")
    print(f"  {title}: {len(response.matches or ())} match(es) "
          f"via {stats.get('algorithm', '?')} ({origin})")
    for match in (response.matches or ())[:3]:
        print(f"    rid={match.rid}  distance={match.distance:.4f}")


def main() -> None:
    rankings = nyt_like_dataset(n=400, k=10)
    queries = sample_queries(rankings, 5, seed=7)
    theta = 0.2

    # -- the database: two named collections behind one facade -----------------
    database = Database()
    database.create_static("news", rankings, num_shards=2)
    live = database.create_live("updates")
    for ranking in list(rankings)[:100]:
        live.insert(ranking.items)
    session = database.session()

    with DatabaseServer(database, port=0) as server:
        host, port = server.address
        print(f"serving {database.names()} on {host}:{port}\n")

        with Client(host, port) as client:
            # -- queries over the wire, against both collections ---------------
            print("remote queries:")
            show("range over 'news'", client.range_query(queries[0], theta, collection="news"))
            show("5-NN over 'updates'", client.knn(queries[0], 5, collection="updates"))
            batch = client.batch(queries, theta, collection="news")
            print(f"  batch over 'news': {len(batch.batch)} envelopes, "
                  f"{sum(len(entry.matches) for entry in batch.batch)} total matches")

            # -- mutations through the same client -----------------------------
            print("\nremote mutations on 'updates':")
            key = client.insert(queries[0].items, collection="updates")
            print(f"  inserted key={key}")
            client.upsert(key, tuple(reversed(queries[0].items)), collection="updates")
            print(f"  upserted key={key}")
            show("range sees the write", client.range_query(
                tuple(reversed(queries[0].items)), 0.05, collection="updates"))
            client.delete(key, collection="updates")
            print(f"  deleted key={key}")

            # -- the headline invariant: remote == in-process, byte for byte ---
            print("\nremote vs in-process answers (result_bytes):")
            identical = 0
            for query in queries:
                for collection in ("news", "updates"):
                    remote = client.range_query(query, theta, collection=collection)
                    local = session.range_query(query, theta, collection=collection)
                    assert remote.result_bytes() == local.result_bytes()
                    identical += 1
            print(f"  {identical}/{identical} byte-identical")

            # -- admin surface --------------------------------------------------
            stats = client.stats("news")
            print(f"\n'news' engine totals: {stats['engine']['requests']} requests, "
                  f"{stats['engine']['cache_hits']} cache hits")

            # -- a client stops the deployment ---------------------------------
            client.shutdown_server()
            print("\nshutdown acknowledged; server stopping")
        server.wait(timeout=5.0)
    database.close()
    print("done")


if __name__ == "__main__":
    main()
