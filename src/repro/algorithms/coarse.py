"""Query processing over the coarse hybrid index (Algorithm 1 of the paper).

``Coarse`` answers a query in two phases:

1. **Filtering** — the medoids (which are rankings themselves) are indexed in
   a plain inverted index; the query is executed against it with the relaxed
   threshold ``theta + theta_C`` using plain F&V, which by Lemma 1 retrieves
   every medoid whose partition could contain a result.
2. **Validation** — each retrieved medoid's partition, stored as a BK-tree,
   is range-searched with the *original* threshold ``theta``, eliminating the
   false positives without an exhaustive scan of the partition.

``Coarse+Drop`` replaces the medoid filtering with F&V+Drop (overlap-based
list dropping, Section 6.1), which the paper found to be the overall winner.

If ``theta + theta_C >= 1`` the inverted index can no longer guarantee that
all relevant medoids overlap the query, so the implementation falls back to
validating every partition (correct but slow) instead of silently missing
results; the paper simply assumes ``theta + theta_C < 1``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.coarse_index import CoarseIndex
from repro.core.distances import footrule_topk_raw
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import PhaseTimer
from repro.invindex.plain import PlainInvertedIndex
from repro.algorithms.base import RankingSearchAlgorithm
from repro.algorithms.fv_drop import select_query_items


class CoarseSearch(RankingSearchAlgorithm):
    """Coarse index with plain F&V medoid filtering.

    Parameters
    ----------
    rankings:
        The collection to index.
    theta_c:
        Normalised partitioning threshold (the paper's comparison runs use
        0.5, the model-optimal value for ``theta = 0.3``).
    coarse_index:
        Optionally a pre-built :class:`CoarseIndex` (so several algorithms or
        benchmark repetitions can share the expensive construction).
    exhaustive_validation:
        Validate partitions by scanning every member instead of using their
        BK-trees (ablation switch).
    """

    name = "Coarse"

    #: Whether medoid filtering applies the +Drop list-dropping optimisation.
    drop_lists = False

    def __init__(
        self,
        rankings: RankingSet,
        theta_c: float = 0.5,
        coarse_index: Optional[CoarseIndex] = None,
        exhaustive_validation: bool = False,
    ) -> None:
        super().__init__(rankings)
        self._coarse = (
            coarse_index
            if coarse_index is not None
            else CoarseIndex.build(rankings, theta_c=theta_c)
        )
        self._medoid_index = PlainInvertedIndex.build(self._coarse.medoids)
        self._exhaustive_validation = exhaustive_validation

    @classmethod
    def build(cls, rankings: RankingSet, theta_c: float = 0.5) -> "CoarseSearch":
        """Build the coarse index, its medoid inverted index, and the algorithm."""
        return cls(rankings, theta_c=theta_c)

    @property
    def coarse_index(self) -> CoarseIndex:
        """The underlying coarse index."""
        return self._coarse

    @property
    def medoid_index(self) -> PlainInvertedIndex:
        """The inverted index over the medoid rankings."""
        return self._medoid_index

    @property
    def theta_c(self) -> float:
        """The partitioning threshold the coarse index was built with."""
        return self._coarse.theta_c

    # -- query processing -------------------------------------------------------------

    def _medoid_query_items(self, query: Ranking, relaxed_raw: float) -> list[int]:
        if not self.drop_lists:
            return list(query.items)
        lengths = {item: self._medoid_index.list_length(item) for item in query.items}
        return select_query_items(lengths, query, relaxed_raw)

    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        stats = result.stats
        theta_raw = self.theta_raw(theta)
        relaxed = theta + self._coarse.theta_c
        relaxed_raw = self.theta_raw(min(relaxed, 1.0))

        with PhaseTimer(stats, "filter_seconds"):
            if relaxed >= 1.0:
                # Lemma 1 precondition violated; validate every partition
                medoid_ids = list(range(len(self._coarse.medoids)))
                stats.extra["relaxed_threshold_fallback"] = (
                    stats.extra.get("relaxed_threshold_fallback", 0.0) + 1.0
                )
            else:
                query_items = self._medoid_query_items(query, relaxed_raw)
                stats.lists_dropped += query.size - len(query_items)
                candidate_medoids = self._medoid_index.candidates(
                    query, stats=stats, query_items=query_items
                )
                medoid_ids = []
                for medoid_id in candidate_medoids:
                    medoid = self._coarse.medoids[medoid_id]
                    stats.distance_calls += 1
                    if footrule_topk_raw(query, medoid) <= relaxed_raw:
                        medoid_ids.append(medoid_id)

        with PhaseTimer(stats, "validate_seconds"):
            matches = self._coarse.validate_partitions(
                medoid_ids,
                query,
                theta_raw,
                stats=stats,
                exhaustive=self._exhaustive_validation,
            )
            for ranking, separation in matches:
                self._add_raw_match(result, ranking, separation)


class CoarseDropSearch(CoarseSearch):
    """Coarse index with F&V+Drop medoid filtering.

    The paper tunes this variant with a much smaller partitioning threshold
    (``theta_C = 0.06``) because a small relaxed threshold lets the +Drop
    criterion skip more medoid index lists.
    """

    name = "Coarse+Drop"
    drop_lists = True

    def __init__(
        self,
        rankings: RankingSet,
        theta_c: float = 0.06,
        coarse_index: Optional[CoarseIndex] = None,
        exhaustive_validation: bool = False,
    ) -> None:
        super().__init__(
            rankings,
            theta_c=theta_c,
            coarse_index=coarse_index,
            exhaustive_validation=exhaustive_validation,
        )

    @classmethod
    def build(cls, rankings: RankingSet, theta_c: float = 0.06) -> "CoarseDropSearch":
        """Build the coarse index with the +Drop default partitioning threshold."""
        return cls(rankings, theta_c=theta_c)
