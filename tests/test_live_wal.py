"""Write-ahead log unit tests: append/replay, tails, corruption, group-commit."""

from __future__ import annotations

import time

import pytest

from repro.live.wal import CorruptWalError, WalRecord, WriteAheadLog


def make_records(count: int) -> list[WalRecord]:
    records = []
    for seq in range(1, count + 1):
        if seq % 3 == 0:
            records.append(WalRecord(seq=seq, op="delete", key=seq - 1))
        else:
            records.append(WalRecord(seq=seq, op="insert", key=seq - 1, items=(seq, seq + 1, seq + 2)))
    return records


def test_append_replay_round_trip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    records = make_records(7)
    for record in records:
        wal.append(record)
    wal.close()
    assert list(wal.replay()) == records


def test_replay_skips_up_to_sequence(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    records = make_records(10)
    for record in records:
        wal.append(record)
    tail = list(wal.replay(after_seq=6))
    assert [record.seq for record in tail] == [7, 8, 9, 10]
    assert list(wal.replay(after_seq=10)) == []


def test_replay_of_missing_file_is_empty(tmp_path):
    wal = WriteAheadLog(tmp_path / "never-created.jsonl")
    assert list(wal.replay()) == []
    assert wal.last_seq() == 0
    assert not wal.exists


def test_last_seq_reports_newest_record(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for record in make_records(5):
        wal.append(record)
    assert wal.last_seq() == 5


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    records = make_records(4)
    for record in records:
        wal.append(record)
    wal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 5, "op": "ins')  # crash mid-append
    assert list(wal.replay()) == records


def test_append_after_torn_tail_repairs_the_log(tmp_path):
    """A post-crash append must not glue onto the torn line (data loss)."""
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    records = make_records(2)
    for record in records:
        wal.append(record)
    wal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 3, "op": "ins')  # crash mid-append
    reopened = WriteAheadLog(path)
    fresh = WalRecord(seq=3, op="insert", key=2, items=(7, 8, 9))
    reopened.append(fresh)
    reopened.close()
    # the torn line is gone and the new record is a committed, parseable tail
    assert list(reopened.replay()) == records + [fresh]
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 3
    assert path.read_text(encoding="utf-8").endswith("\n")


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    for record in make_records(4):
        wal.append(record)
    wal.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[1] = "not json at all"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(CorruptWalError) as excinfo:
        list(wal.replay())
    assert excinfo.value.line_number == 2


def test_truncate_through_drops_covered_records(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for record in make_records(10):
        wal.append(record)
    kept = wal.truncate_through(7)
    assert kept == 3
    assert [record.seq for record in wal.replay()] == [8, 9, 10]
    # appending after a truncation keeps working
    wal.append(WalRecord(seq=11, op="delete", key=1))
    assert wal.last_seq() == 11
    wal.close()


def test_truncate_through_everything_leaves_empty_log(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for record in make_records(4):
        wal.append(record)
    assert wal.truncate_through(4) == 0
    assert list(wal.replay()) == []
    assert wal.exists  # the file stays, just empty
    wal.close()


def test_unknown_operation_is_rejected():
    with pytest.raises(ValueError):
        WalRecord.from_json('{"seq": 1, "op": "truncate", "key": 0}')


def test_insert_requires_items():
    with pytest.raises(ValueError):
        WalRecord.from_json('{"seq": 1, "op": "insert", "key": 0}')


def test_reopened_log_appends_after_existing_records(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path) as wal:
        for record in make_records(3):
            wal.append(record)
    with WriteAheadLog(path) as wal:
        wal.append(WalRecord(seq=4, op="insert", key=3, items=(9, 8, 7)))
        assert [record.seq for record in wal.replay()] == [1, 2, 3, 4]


def test_delete_record_drops_payload():
    record = WalRecord.from_json('{"seq": 2, "op": "delete", "key": 5, "items": [1, 2]}')
    assert record.items is None
    assert "items" not in record.to_json()


# -- durability modes ---------------------------------------------------------------


def test_durability_mode_is_inferred_from_configuration(tmp_path):
    assert WriteAheadLog(tmp_path / "a.jsonl").durability == "no-sync"
    assert WriteAheadLog(tmp_path / "b.jsonl", sync=True).durability == "fsync"
    assert WriteAheadLog(tmp_path / "c.jsonl", commit_batch=8).durability == "group-commit"
    assert WriteAheadLog(tmp_path / "d.jsonl", commit_interval=1.0).durability == "group-commit"


def test_invalid_commit_configuration_rejected(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadLog(tmp_path / "wal.jsonl", commit_batch=0)
    with pytest.raises(ValueError):
        WriteAheadLog(tmp_path / "wal.jsonl", commit_interval=0.0)


def test_fsync_mode_commits_every_record(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", sync=True)
    for record in make_records(5):
        wal.append(record)
    assert wal.commits == 5
    assert wal.durable_seq == wal.appended_seq == 5
    assert wal.pending_records == 0
    wal.close()


def test_group_commit_batches_fsyncs(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", commit_batch=4)
    for record in make_records(10):
        wal.append(record)
    # two full batches committed, two records still pending
    assert wal.commits == 2
    assert wal.durable_seq == 8
    assert wal.appended_seq == 10
    assert wal.pending_records == 2
    wal.sync()
    assert wal.durable_seq == 10
    assert wal.pending_records == 0
    assert wal.commits == 3
    wal.sync()  # barrier with nothing pending is free
    assert wal.commits == 3
    wal.close()


def test_group_commit_interval_commits_an_aged_batch(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", commit_interval=0.02)
    records = make_records(3)
    wal.append(records[0])
    assert wal.durable_seq == 0  # batch just opened
    time.sleep(0.03)
    wal.append(records[1])  # append path notices the batch age
    assert wal.durable_seq == 2
    wal.append(records[2])
    assert wal.durable_seq == 2  # fresh batch, not old enough
    wal.close()


def test_group_commit_close_commits_the_tail(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", commit_batch=100)
    for record in make_records(3):
        wal.append(record)
    assert wal.durable_seq == 0
    wal.close()
    assert wal.durable_seq == 3  # clean shutdown is a barrier


def test_no_sync_mode_only_syncs_explicitly(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for record in make_records(4):
        wal.append(record)
    assert wal.commits == 0
    assert wal.durable_seq == 0
    wal.sync()
    assert wal.durable_seq == 4
    assert wal.commits == 1
    wal.close()


def test_truncate_through_resets_batch_accounting(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", commit_batch=100)
    for record in make_records(6):
        wal.append(record)
    assert wal.pending_records == 6
    kept = wal.truncate_through(4)
    assert kept == 2
    # the fsynced rewrite made every kept record durable
    assert wal.pending_records == 0
    assert wal.durable_seq == wal.appended_seq == 6
    wal.append(WalRecord(seq=7, op="delete", key=0))
    assert [record.seq for record in wal.replay()] == [5, 6, 7]
    wal.close()


def test_record_count_scans_without_decoding(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    assert wal.record_count() == 0
    for record in make_records(5):
        wal.append(record)
    wal.close()
    assert wal.record_count() == 5
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 6, "op": "ins')  # torn tail is not a record
    assert wal.record_count() == 5


def test_crash_after_commit_loses_nothing_before_the_barrier(tmp_path):
    """Truncating the file back to a commit point recovers every durable record.

    Simulates power loss: bytes written after the last ``fsync`` may vanish
    (here: all of them), and a torn suffix must not take committed records
    with it.
    """
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path, commit_batch=3)
    records = make_records(7)
    for record in records[:6]:
        wal.append(record)
    durable_size = path.stat().st_size  # seq 1..6 committed (two batches)
    wal.append(records[6])  # pending, not yet committed
    with open(path, "rb+") as handle:  # "crash": the un-fsynced suffix is lost
        handle.truncate(durable_size)
    survivor = WriteAheadLog(path)
    assert [record.seq for record in survivor.replay()] == [1, 2, 3, 4, 5, 6]
