"""Standing queries: live subscriptions with incremental result deltas.

A standing query is a range or k-NN query registered once against a live
collection (:class:`~repro.api.requests.SubscribeRequest`); the
:class:`~repro.sub.manager.SubscriptionManager` answers it with the
current result set (the *snapshot*) and then pushes a
:class:`~repro.sub.delta.PushDelta` — which rankings entered, moved, or
left — every time a committed mutation changes the answer.  Applying the
deltas to the snapshot (:func:`~repro.sub.delta.apply_delta`) reproduces
exactly what re-running the query would return.

The manager hooks the live store's commit path, coalesces bursts of
commits into single recomputes, and bounds each subscription's pending
queue — a consumer that falls behind is cancelled with a typed
``subscription_overflow`` error instead of growing server memory.  The
transports in :mod:`repro.api` deliver the deltas as v2 ``push`` frames.
"""

from repro.sub.delta import (
    EVENT_DELTA,
    EVENT_ERROR,
    PushDelta,
    apply_delta,
    delta_body,
    diff_matches,
)
from repro.sub.manager import (
    DEFAULT_QUEUE_SIZE,
    ServerSubscription,
    SubscriptionManager,
)

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "EVENT_DELTA",
    "EVENT_ERROR",
    "PushDelta",
    "ServerSubscription",
    "SubscriptionManager",
    "apply_delta",
    "delta_body",
    "diff_matches",
]
