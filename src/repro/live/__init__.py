"""Live-update store: LSM-style mutable collection over the search stack.

The rest of the library serves frozen :class:`~repro.core.ranking.RankingSet`
collections; this package makes the collection *mutable at service speed*
without giving up exact answers:

Layering (write path top to bottom)::

    wal.py         JSONL write-ahead log: no-sync / per-record fsync /
                   group-commit durability modes
    memtable.py    recent writes, answered by exact brute-force scan
    segment.py     sealed immutable runs indexed by any registry algorithm,
                   spilled to disk on durable collections
    tombstones.py  superseded locations filtering segment/base answers
    manifest.py    which persisted runs + tombstones make up a checkpoint
                   and the WAL sequence they cover
    compactor.py   background merge into a fresh ShardedIndex base epoch
    collection.py  LiveCollection facade: insert/delete/upsert/query/knn,
                   flush/compact, snapshot/restore, auto-snapshot policy
    engine.py      LiveQueryEngine: cached serving with per-epoch invalidation

The guarantee throughout: after any interleaving of mutations, flushes, and
compactions, query answers equal a from-scratch index over the logical
collection — and after a restart, the recovered state equals the logical
state at the last durable WAL record.
"""

from repro.live.collection import (
    DEFAULT_LIVE_ALGORITHM,
    LiveCollection,
    LiveStats,
)
from repro.live.compactor import Compactor
from repro.live.engine import LiveQueryEngine
from repro.live.manifest import CorruptManifestError, Manifest
from repro.live.memtable import MemTable
from repro.live.segment import Segment
from repro.live.tombstones import TombstoneSet
from repro.live.wal import CorruptWalError, WalRecord, WriteAheadLog

__all__ = [
    "Compactor",
    "CorruptManifestError",
    "CorruptWalError",
    "DEFAULT_LIVE_ALGORITHM",
    "LiveCollection",
    "LiveQueryEngine",
    "LiveStats",
    "Manifest",
    "MemTable",
    "Segment",
    "TombstoneSet",
    "WalRecord",
    "WriteAheadLog",
]
