"""LRU result cache keyed on normalised query fingerprints.

Real ranking workloads are heavily skewed — a small set of popular queries
accounts for most of the traffic — so memoising answers is the cheapest
throughput multiplier the service layer has.  The cache is a plain
thread-safe LRU over immutable *fingerprints*:

* a **range fingerprint** is the query's item tuple plus the threshold
  rounded to a fixed precision, so ``theta=0.2`` and ``theta=0.20000000001``
  (floating-point drift from radius arithmetic) hit the same entry;
* a **knn fingerprint** is the item tuple plus the neighbour count.

Entries are whatever result object the engine stores (``SearchResult`` or
``KnnResult``); the cache never inspects them.  Cached results are shared
between requests, so callers must treat them as read-only.

Shard rebuilds change which collection an answer refers to, so the engine
explicitly calls :meth:`LRUResultCache.invalidate` whenever the sharded
index is rebuilt; the invalidation counter makes that visible in the stats.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.core.ranking import Ranking
from repro.devtools.locktrace import make_lock
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry

#: Decimal places kept when a threshold becomes part of a fingerprint.
_THETA_PRECISION = 9

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


def range_fingerprint(query: Ranking, theta: float) -> tuple:
    """Canonical cache key of one similarity range query."""
    return ("range", query.items, round(theta, _THETA_PRECISION))


def knn_fingerprint(query: Ranking, n_neighbours: int) -> tuple:
    """Canonical cache key of one k-nearest-neighbour query."""
    return ("knn", query.items, n_neighbours)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view for reports and benchmarks."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
            "hit_rate": self.hit_rate,
        }


class LRUResultCache:
    """Thread-safe least-recently-used cache with a hard capacity bound.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept.  ``0`` disables the cache entirely:
        every lookup is a miss and nothing is ever stored, which lets the
        engine keep one code path for cache-on and cache-off configurations.

    Examples
    --------
    >>> cache = LRUResultCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b" (least recently used)
    >>> cache.get("b") is None
    True
    >>> cache.stats.evictions
    1
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()  # guarded-by: _lock
        self._lock = make_lock("LRUResultCache._lock")
        self._stats = CacheStats()  # guarded-by: _lock
        registry = get_registry()
        self._m_hits = registry.counter(
            metric_names.CACHE_HITS_TOTAL, "Result-cache lookups answered from the cache."
        )
        self._m_misses = registry.counter(
            metric_names.CACHE_MISSES_TOTAL, "Result-cache lookups that missed."
        )
        self._m_evictions = registry.counter(
            metric_names.CACHE_EVICTIONS_TOTAL, "Entries evicted by the LRU capacity bound."
        )
        self._m_invalidations = registry.counter(
            metric_names.CACHE_INVALIDATIONS_TOTAL, "Whole-cache invalidations (shard rebuilds)."
        )

    @property
    def capacity(self) -> int:
        """The maximum number of entries kept."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._capacity > 0

    @property
    def stats(self) -> CacheStats:
        """Live counters; read-only by convention."""
        return self._stats  # repro: noqa[guarded-by] documented live handle; reads are racy by contract

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Return the cached value and mark it most recently used."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._stats.misses += 1
                self._m_misses.inc()
                return default
            self._entries.move_to_end(key)
            self._stats.hits += 1
            self._m_hits.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store one entry, evicting the least recently used ones if full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._m_evictions.inc()

    def invalidate(self) -> int:
        """Drop every entry (shard rebuild); returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.invalidations += 1
            self._m_invalidations.inc()
            return dropped

    def keys(self) -> list[Hashable]:
        """Snapshot of the cached keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LRUResultCache(capacity={self._capacity}, size={len(self._entries)}, "
                f"hit_rate={self._stats.hit_rate:.2f})"
            )
