"""The coarse hybrid index (Section 4 of the paper).

The coarse index blends an inverted index with metric-space indexing:

1. The ranking collection is partitioned into disjoint groups of
   near-duplicates; each group is represented by a *medoid* and every member
   is within the partitioning threshold ``theta_C`` of its medoid.
2. Only the medoids are indexed in an inverted index (plain or
   rank-augmented), which drastically shrinks the filtering structure.
3. Each partition is held as a BK-tree so the validation phase can prune
   inside the partition instead of evaluating every member.

Query processing (Lemma 1): to answer a query ``q`` with threshold ``theta``,
retrieve every medoid with ``d(medoid, q) <= theta + theta_C`` from the
inverted index (relaxed threshold), then run a range search with the original
``theta`` inside each retrieved medoid's partition BK-tree.  Lemma 1
guarantees no false negatives as long as ``theta + theta_C < 1`` (a medoid
that shares no item with the query cannot be retrieved from an inverted
index).

The query-processing algorithms that drive this structure live in
:mod:`repro.algorithms.coarse`; this module owns the data structure itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Optional

from repro.core.distances import footrule_topk_raw, max_footrule_distance
from repro.core.errors import EmptyDatasetError, InvalidThresholdError
from repro.core.ranking import Ranking, RankingSet
from repro.core.stats import SearchStats
from repro.metric.bktree import BKTree
from repro.metric.partitioning import RawPartition, bktree_partition

DiscreteDistance = Callable[[Ranking, Ranking], int]
PartitionerFunction = Callable[[Sequence[Ranking], DiscreteDistance, float], list[RawPartition]]


@dataclass
class Partition:
    """One coarse-index partition: a medoid, its members, and their BK-tree."""

    medoid: Ranking
    members: tuple[Ranking, ...]
    tree: BKTree

    def __len__(self) -> int:
        return len(self.members)

    def range_search(
        self, query: Ranking, theta_raw: float, stats: Optional[SearchStats] = None
    ) -> list[tuple[Ranking, int]]:
        """Rankings of this partition within raw distance ``theta_raw`` of the query."""
        return self.tree.range_search(query, theta_raw, stats=stats)


class CoarseIndex:
    """Medoid inverted index plus per-partition BK-trees.

    Parameters
    ----------
    rankings:
        The collection to index.
    theta_c:
        Normalised partitioning threshold in ``[0, 1)``.  ``0`` groups only
        exact duplicates; larger values produce fewer, larger partitions.
    distance:
        Discrete metric used for partitioning and validation; defaults to the
        raw top-k Footrule distance.
    partitioner:
        Strategy producing the medoid partitions; defaults to the BK-tree
        guided partitioning of the paper.

    Examples
    --------
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9]])
    >>> index = CoarseIndex.build(rankings, theta_c=0.3)
    >>> index.num_partitions() <= len(rankings)
    True
    """

    def __init__(
        self,
        rankings: RankingSet,
        theta_c: float,
        distance: DiscreteDistance = footrule_topk_raw,
        partitioner: PartitionerFunction = bktree_partition,
    ) -> None:
        if not 0.0 <= theta_c < 1.0:
            raise InvalidThresholdError(theta_c, "theta_C must lie in [0, 1)")
        if len(rankings) == 0:
            raise EmptyDatasetError("cannot build a coarse index over an empty ranking set")
        self._rankings = rankings
        self._theta_c = theta_c
        self._distance = distance
        self._partitioner = partitioner
        self._partitions: list[Partition] = []
        self._medoid_set: Optional[RankingSet] = None
        self._medoid_to_partition: dict[int, int] = {}
        self._member_to_partition: dict[int, int] = {}
        self._construction_distance_calls = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        rankings: RankingSet,
        theta_c: float,
        distance: DiscreteDistance = footrule_topk_raw,
        partitioner: PartitionerFunction = bktree_partition,
    ) -> "CoarseIndex":
        """Partition the collection and assemble the coarse index."""
        index = cls(rankings, theta_c, distance=distance, partitioner=partitioner)
        index._build()
        return index

    def _build(self) -> None:
        theta_c_raw = self._theta_c * max_footrule_distance(self._rankings.k)
        raw_partitions = self._partitioner(
            list(self._rankings.rankings), self._counting_distance, theta_c_raw
        )
        medoid_set = RankingSet(k=self._rankings.k)
        for partition_id, raw in enumerate(raw_partitions):
            tree = BKTree(self._counting_distance)
            tree.insert(raw.medoid)
            for member in raw.members:
                if member.rid != raw.medoid.rid:
                    tree.insert(member)
                assert member.rid is not None
                self._member_to_partition[member.rid] = partition_id
            partition = Partition(medoid=raw.medoid, members=raw.members, tree=tree)
            self._partitions.append(partition)
            stored_medoid = medoid_set.add(raw.medoid.items)
            assert stored_medoid.rid is not None
            self._medoid_to_partition[stored_medoid.rid] = partition_id
        self._medoid_set = medoid_set

    def _counting_distance(self, left: Ranking, right: Ranking) -> int:
        self._construction_distance_calls += 1
        return self._distance(left, right)

    # -- accessors -------------------------------------------------------------------

    @property
    def rankings(self) -> RankingSet:
        """The full indexed collection."""
        return self._rankings

    @property
    def theta_c(self) -> float:
        """The normalised partitioning threshold."""
        return self._theta_c

    @property
    def k(self) -> int:
        """Ranking size of the indexed collection."""
        return self._rankings.k

    @property
    def medoids(self) -> RankingSet:
        """The medoid rankings as their own collection (ids are *medoid* ids)."""
        assert self._medoid_set is not None, "coarse index not built"
        return self._medoid_set

    @property
    def partitions(self) -> Sequence[Partition]:
        """All partitions, indexable by partition id."""
        return self._partitions

    @property
    def construction_distance_calls(self) -> int:
        """Distance evaluations spent while partitioning and building trees."""
        return self._construction_distance_calls

    def num_partitions(self) -> int:
        """Number of partitions (equals the number of medoids)."""
        return len(self._partitions)

    def partition_of_medoid(self, medoid_id: int) -> Partition:
        """The partition represented by the medoid with the given *medoid* id."""
        return self._partitions[self._medoid_to_partition[medoid_id]]

    def partition_of_ranking(self, rid: int) -> Partition:
        """The partition containing the ranking with the given *ranking* id."""
        return self._partitions[self._member_to_partition[rid]]

    def average_partition_size(self) -> float:
        """Mean number of rankings per partition."""
        if not self._partitions:
            return 0.0
        return len(self._rankings) / len(self._partitions)

    def memory_estimate_bytes(self) -> int:
        """Footprint: medoid inverted-index postings, partition trees, rankings.

        The medoid inverted index is built by the query algorithms; here the
        medoid postings are accounted for directly (8 bytes per medoid item
        occurrence) so the estimate matches what the paper's Table 6 counts
        for the coarse index (medoid index + BK-trees + raw rankings).
        """
        medoid_postings = 8 * sum(medoid.size for medoid in self.medoids)
        tree_bytes = sum(partition.tree.memory_estimate_bytes() for partition in self._partitions)
        return medoid_postings + tree_bytes

    # -- query support (Algorithm 1) ----------------------------------------------------

    def validate_partitions(
        self,
        medoid_ids: Sequence[int],
        query: Ranking,
        theta_raw: float,
        stats: Optional[SearchStats] = None,
        exhaustive: bool = False,
    ) -> list[tuple[Ranking, int]]:
        """Validate the partitions of the given medoids against the original threshold.

        Parameters
        ----------
        medoid_ids:
            Medoid ids retrieved by the filtering phase with the relaxed
            threshold ``theta + theta_C``.
        query, theta_raw:
            The original query and its raw threshold.
        exhaustive:
            If true, evaluate the distance of every member directly instead
            of using the partition BK-tree (the ablation variant).
        """
        results: list[tuple[Ranking, int]] = []
        for medoid_id in medoid_ids:
            partition = self.partition_of_medoid(medoid_id)
            if stats is not None:
                stats.partitions_visited += 1
            if exhaustive:
                for member in partition.members:
                    if stats is not None:
                        stats.distance_calls += 1
                    separation = self._distance(query, member)
                    if separation <= theta_raw:
                        results.append((member, separation))
            else:
                results.extend(partition.range_search(query, theta_raw, stats=stats))
        return results

    def __repr__(self) -> str:
        return (
            f"CoarseIndex(n={len(self._rankings)}, partitions={self.num_partitions()}, "
            f"theta_c={self._theta_c})"
        )
