"""Query-service engine: the serving layer over the algorithm core.

The algorithm modules answer one query against one monolithic index.  This
package turns them into a *service*: the collection is partitioned over
shards that are searched concurrently, an adaptive planner picks the
algorithm (and its parameters) per query, and answers are memoised in an LRU
result cache.  The :class:`QueryEngine` ties the three together behind a
small request API (``query`` / ``batch_query`` / ``knn``) that reports
per-request :class:`QueryStats`.

Layering (each module only depends on the ones above it)::

    cache.py     LRU result cache keyed on normalised query fingerprints
    recording.py per-request/lifetime stats + the shared cached request flow
    sharding.py  partitioned collection + concurrent fan-out / bounded merge
    planner.py   cost-model priors + runtime EWMAs -> per-query plan
    engine.py    request layer: cache -> planner -> shards

Every result produced through the sharded path is *exactly* equal to the
corresponding single-index answer; sharding changes how much work happens
where, never the semantics.
"""

from repro.service.cache import CacheStats, LRUResultCache, knn_fingerprint, range_fingerprint
from repro.service.engine import QueryEngine
from repro.service.planner import AdaptivePlanner, PlanDecision
from repro.service.recording import (
    EngineResponse,
    EngineStats,
    QueryStats,
    RequestRecorder,
    serve_cached,
)
from repro.service.sharding import (
    RemoteExecutorLike,
    ShardedIndex,
    partition_rankings,
)

__all__ = [
    "AdaptivePlanner",
    "CacheStats",
    "EngineResponse",
    "EngineStats",
    "LRUResultCache",
    "PlanDecision",
    "QueryEngine",
    "QueryStats",
    "RemoteExecutorLike",
    "RequestRecorder",
    "ShardedIndex",
    "knn_fingerprint",
    "partition_rankings",
    "range_fingerprint",
    "serve_cached",
]
