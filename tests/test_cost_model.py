"""Tests for the analytical cost model (Section 5)."""

import pytest

from repro.analysis.stats import EmpiricalDistanceDistribution, cost_model_inputs_for
from repro.core.cost_model import (
    CostModel,
    CostModelInputs,
    generalized_harmonic,
    zipf_frequency,
)
from repro.core.errors import InvalidThresholdError


def linear_cdf(x: float) -> float:
    """A simple synthetic distance CDF used by the closed-form tests."""
    return min(1.0, max(0.0, x))


@pytest.fixture()
def inputs():
    return CostModelInputs(
        n=1000, k=10, v=5000, zipf_s=0.8, distance_cdf=linear_cdf, cost_footrule=1.0
    )


@pytest.fixture()
def model(inputs):
    return CostModel(inputs)


class TestZipfHelpers:
    def test_harmonic_number_s_zero(self):
        assert generalized_harmonic(10, 0.0) == pytest.approx(10.0)

    def test_harmonic_number_s_one(self):
        assert generalized_harmonic(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_harmonic_empty(self):
        assert generalized_harmonic(0, 1.0) == 0.0

    def test_zipf_frequencies_sum_to_one(self):
        total = sum(zipf_frequency(i, 0.7, 50) for i in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_zipf_frequency_decreasing(self):
        values = [zipf_frequency(i, 0.9, 20) for i in range(1, 21)]
        assert values == sorted(values, reverse=True)

    def test_zipf_frequency_bad_rank(self):
        with pytest.raises(ValueError):
            zipf_frequency(0, 0.5, 10)
        with pytest.raises(ValueError):
            zipf_frequency(11, 0.5, 10)


class TestCostModelInputs:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CostModelInputs(n=0, k=10, v=100, zipf_s=0.5, distance_cdf=linear_cdf)
        with pytest.raises(ValueError):
            CostModelInputs(n=10, k=0, v=100, zipf_s=0.5, distance_cdf=linear_cdf)
        with pytest.raises(ValueError):
            CostModelInputs(n=10, k=10, v=5, zipf_s=0.5, distance_cdf=linear_cdf)
        with pytest.raises(ValueError):
            CostModelInputs(n=10, k=10, v=100, zipf_s=-1.0, distance_cdf=linear_cdf)


class TestMedoidCount:
    def test_theta_c_zero_gives_n_medoids(self, model, inputs):
        """With only duplicates grouped (package size 1), every ranking is a medoid."""
        zero_cdf_inputs = CostModelInputs(
            n=inputs.n, k=inputs.k, v=inputs.v, zipf_s=inputs.zipf_s,
            distance_cdf=lambda x: 0.0 if x < 1.0 else 1.0,
        )
        assert CostModel(zero_cdf_inputs).expected_num_medoids(0.0) == pytest.approx(inputs.n)

    def test_full_coverage_gives_one_medoid(self, inputs):
        """If every ranking is within theta_C of any other, one medoid suffices."""
        all_cdf_inputs = CostModelInputs(
            n=inputs.n, k=inputs.k, v=inputs.v, zipf_s=inputs.zipf_s, distance_cdf=lambda x: 1.0
        )
        assert CostModel(all_cdf_inputs).expected_num_medoids(0.5) == pytest.approx(1.0)

    def test_monotone_decreasing_in_theta_c(self, model):
        values = [model.expected_num_medoids(theta_c) for theta_c in (0.0, 0.1, 0.3, 0.6, 0.9)]
        assert values == sorted(values, reverse=True)

    def test_bounded_by_collection_size(self, model, inputs):
        for theta_c in (0.0, 0.2, 0.5, 0.9):
            medoids = model.expected_num_medoids(theta_c)
            assert 1.0 <= medoids <= inputs.n

    def test_rejects_out_of_range_theta_c(self, model):
        with pytest.raises(InvalidThresholdError):
            model.expected_num_medoids(1.5)


class TestExpectations:
    def test_candidate_rankings_equation4(self, model, inputs):
        assert model.expected_candidate_rankings(0.2, 0.3) == pytest.approx(
            linear_cdf(0.5) * inputs.n
        )

    def test_retrieved_medoids_fraction_of_medoids(self, model):
        medoids = model.expected_num_medoids(0.3)
        retrieved = model.expected_retrieved_medoids(0.2, 0.3)
        assert 0.0 <= retrieved <= medoids

    def test_distinct_medoid_items_bounded_by_domain(self, model, inputs):
        for medoids in (1.0, 10.0, 500.0, 10000.0):
            distinct = model.expected_distinct_medoid_items(medoids)
            assert 0.0 < distinct <= inputs.v

    def test_distinct_items_increase_with_medoids(self, model):
        assert model.expected_distinct_medoid_items(10) < model.expected_distinct_medoid_items(500)

    def test_index_list_length_scales_with_medoids(self, model):
        assert model.expected_index_list_length(10) < model.expected_index_list_length(800)


class TestCosts:
    def test_validate_cost_increases_with_theta_c(self, model):
        costs = [model.validate_cost(0.2, theta_c) for theta_c in (0.0, 0.2, 0.4, 0.7)]
        assert costs == sorted(costs)

    def test_filter_cost_decreases_with_theta_c(self, model):
        costs = [model.filter_cost(0.2, theta_c) for theta_c in (0.0, 0.2, 0.4, 0.7)]
        assert costs == sorted(costs, reverse=True)

    def test_estimate_total_is_sum(self, model):
        estimate = model.estimate(0.2, 0.3)
        assert estimate.total == pytest.approx(estimate.filter_cost + estimate.validate_cost)

    def test_infeasible_combination_rejected(self, model):
        with pytest.raises(InvalidThresholdError):
            model.filter_cost(0.5, 0.6)

    def test_recommendation_minimises_curve(self, model):
        recommendation = model.recommend_theta_c(0.2)
        totals = [estimate.total for estimate in recommendation.curve]
        assert recommendation.estimate.total == pytest.approx(min(totals))

    def test_default_grid_respects_feasibility(self, model):
        grid = model.default_grid(0.3)
        assert all(value + 0.3 < 1.0 for value in grid)
        assert grid[0] == 0.0

    def test_cost_curve_custom_grid(self, model):
        curve = model.cost_curve(0.2, [0.1, 0.2])
        assert [estimate.theta_c for estimate in curve] == [0.1, 0.2]


class TestModelOnRealDatasets:
    def test_inputs_from_rankings(self, nyt_small):
        inputs = cost_model_inputs_for(nyt_small, sample_pairs=2000)
        assert inputs.n == len(nyt_small)
        assert inputs.k == nyt_small.k
        assert inputs.v == len(nyt_small.item_domain())
        assert inputs.zipf_s > 0.0

    def test_interior_minimum_exists_for_clustered_data(self, nyt_small):
        """The predicted overall cost has its minimum strictly inside the grid
        (the coarse index beats both extremes), which is the paper's core claim."""
        inputs = cost_model_inputs_for(nyt_small, sample_pairs=3000)
        model = CostModel(inputs)
        recommendation = model.recommend_theta_c(0.2, [round(0.05 * i, 2) for i in range(16)])
        first = recommendation.curve[0].total
        assert recommendation.estimate.total <= first

    def test_empirical_distribution_is_monotone_cdf(self, nyt_small):
        distribution = EmpiricalDistanceDistribution(nyt_small, sample_pairs=2000)
        previous = 0.0
        for x in (0.0, 0.1, 0.3, 0.5, 0.8, 1.0):
            value = distribution.cdf(x)
            assert 0.0 <= value <= 1.0
            assert value >= previous
            previous = value
