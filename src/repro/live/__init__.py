"""Live-update store: LSM-style mutable collection over the search stack.

The rest of the library serves frozen :class:`~repro.core.ranking.RankingSet`
collections; this package makes the collection *mutable at service speed*
without giving up exact answers:

Layering (write path top to bottom)::

    wal.py         JSONL write-ahead log: durable before applied
    memtable.py    recent writes, answered by exact brute-force scan
    segment.py     sealed immutable runs indexed by any registry algorithm
    tombstones.py  superseded locations filtering segment/base answers
    compactor.py   background merge into a fresh ShardedIndex base epoch
    collection.py  LiveCollection facade: insert/delete/upsert/query/knn,
                   flush/compact, snapshot/restore
    engine.py      LiveQueryEngine: cached serving with per-epoch invalidation

The guarantee throughout: after any interleaving of mutations, flushes, and
compactions, query answers equal a from-scratch index over the logical
collection.
"""

from repro.live.collection import (
    DEFAULT_LIVE_ALGORITHM,
    LiveCollection,
    LiveStats,
)
from repro.live.compactor import Compactor
from repro.live.engine import LiveQueryEngine
from repro.live.memtable import MemTable
from repro.live.segment import Segment
from repro.live.tombstones import TombstoneSet
from repro.live.wal import CorruptWalError, WalRecord, WriteAheadLog

__all__ = [
    "Compactor",
    "CorruptWalError",
    "DEFAULT_LIVE_ALGORITHM",
    "LiveCollection",
    "LiveQueryEngine",
    "LiveStats",
    "MemTable",
    "Segment",
    "TombstoneSet",
    "WalRecord",
    "WriteAheadLog",
]
