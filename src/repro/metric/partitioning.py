"""Partitioning rankings into medoid-led groups of bounded diameter.

The coarse index groups rankings into disjoint partitions ``P_i``, each
represented by a medoid ``tau_m`` such that every member satisfies
``d(tau_m, tau) <= theta_C`` (the partitioning threshold).  Two strategies
are provided:

``bktree_partition``
    The paper's strategy: build a BK-tree over all rankings and carve
    partitions out of it.  Medoids are picked in breadth-first tree order
    (the root first); every still-unassigned ranking within ``theta_C`` of
    the current medoid joins its partition.  Using the tree both to find the
    members (a range search) and to seed the medoids keeps construction
    close to the paper's "traverse the BK-tree" description while upholding
    the distance guarantee needed by Lemma 1.

``random_medoid_partition``
    The Chavez & Navarro (2005) strategy the cost model reasons about:
    repeatedly pick a random unassigned ranking as medoid and assign every
    unassigned ranking within ``theta_C`` to it, until nothing is left.

Both return plain ``(medoid, members)`` structures; the coarse index wraps
them into per-partition BK-trees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.core.errors import EmptyDatasetError
from repro.core.ranking import Ranking

DiscreteDistance = Callable[[Ranking, Ranking], int]


@dataclass(frozen=True)
class RawPartition:
    """A medoid and its members (members always include the medoid itself)."""

    medoid: Ranking
    members: tuple[Ranking, ...]

    def __len__(self) -> int:
        return len(self.members)


class Partitioner:
    """Base class for partitioning strategies (callable protocol).

    Subclasses (or plain functions with the same signature) take the ranking
    collection, the discrete distance, and the raw partitioning threshold and
    return a list of :class:`RawPartition` covering every ranking exactly
    once.
    """

    def __call__(
        self,
        rankings: Sequence[Ranking],
        distance: DiscreteDistance,
        theta_c_raw: float,
    ) -> list[RawPartition]:
        raise NotImplementedError


def bktree_partition(
    rankings: Sequence[Ranking],
    distance: DiscreteDistance,
    theta_c_raw: float,
) -> list[RawPartition]:
    """Partition rankings guided by a BK-tree (the paper's strategy).

    The BK-tree is built over the full collection; candidate medoids are
    visited in breadth-first order starting at the root.  When an unassigned
    node is reached it becomes a medoid and a range search with radius
    ``theta_c_raw`` collects every still-unassigned ranking into its
    partition.  The result is a set of disjoint partitions whose members are
    all within ``theta_c_raw`` of their medoid.
    """
    from repro.metric.bktree import BKTree

    if not rankings:
        raise EmptyDatasetError("cannot partition an empty ranking collection")
    tree = BKTree.build(rankings, distance)
    assigned: set[int] = set()
    partitions: list[RawPartition] = []

    assert tree.root is not None
    queue = [tree.root]
    order: list[Ranking] = []
    while queue:
        node = queue.pop(0)
        order.append(node.ranking)
        # visit closer children first so medoids stay spread out
        for edge in sorted(node.children):
            queue.append(node.children[edge])

    for medoid in order:
        rid = _require_rid(medoid)
        if rid in assigned:
            continue
        neighbourhood = tree.range_search(medoid, theta_c_raw)
        members: list[Ranking] = []
        for ranking, _separation in neighbourhood:
            member_rid = _require_rid(ranking)
            if member_rid in assigned:
                continue
            assigned.add(member_rid)
            members.append(ranking)
        if rid not in {_require_rid(member) for member in members}:
            assigned.add(rid)
            members.insert(0, medoid)
        partitions.append(RawPartition(medoid=medoid, members=tuple(members)))
    return partitions


def random_medoid_partition(
    rankings: Sequence[Ranking],
    distance: DiscreteDistance,
    theta_c_raw: float,
    seed: int = 42,
) -> list[RawPartition]:
    """Chavez-Navarro style random-medoid, fixed-radius partitioning."""
    if not rankings:
        raise EmptyDatasetError("cannot partition an empty ranking collection")
    rng = random.Random(seed)
    remaining = list(rankings)
    rng.shuffle(remaining)
    unassigned = {_require_rid(ranking): ranking for ranking in remaining}
    order = [_require_rid(ranking) for ranking in remaining]
    partitions: list[RawPartition] = []
    for rid in order:
        if rid not in unassigned:
            continue
        medoid = unassigned.pop(rid)
        members = [medoid]
        for other_rid in list(unassigned):
            other = unassigned[other_rid]
            if distance(medoid, other) <= theta_c_raw:
                members.append(other)
                del unassigned[other_rid]
        partitions.append(RawPartition(medoid=medoid, members=tuple(members)))
    return partitions


def validate_partitions(
    partitions: Sequence[RawPartition],
    rankings: Sequence[Ranking],
    distance: DiscreteDistance,
    theta_c_raw: float,
) -> None:
    """Raise ``ValueError`` if the partitions violate the coarse-index invariants.

    Checks that (1) every ranking is assigned to exactly one partition and
    (2) every member is within ``theta_c_raw`` of its medoid.  Used by tests
    and available to callers supplying their own partitioner.
    """
    seen: set[int] = set()
    for partition in partitions:
        for member in partition.members:
            rid = _require_rid(member)
            if rid in seen:
                raise ValueError(f"ranking {rid} assigned to more than one partition")
            seen.add(rid)
            if distance(partition.medoid, member) > theta_c_raw:
                raise ValueError(
                    f"ranking {rid} violates the partition radius "
                    f"(> {theta_c_raw} from its medoid)"
                )
    expected = {_require_rid(ranking) for ranking in rankings}
    if seen != expected:
        missing = expected - seen
        raise ValueError(f"rankings not assigned to any partition: {sorted(missing)[:10]}")


def _require_rid(ranking: Ranking) -> int:
    if ranking.rid is None:
        raise ValueError("partitioning requires rankings with assigned ids (use a RankingSet)")
    return ranking.rid
