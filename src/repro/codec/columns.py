"""Columnar array codecs: count-prefixed little-endian i64/f64 columns.

The RBF payloads that carry bulk data (WAL items, run files, wire match
lists) are columnar: a ``u32`` count followed by packed little-endian
values, so the decode side is a single ``numpy.frombuffer`` view over
the payload instead of a per-element JSON parse.  When numpy is absent
(or ``REPRO_CODEC_PURE=1`` forces the fallback for testing), the
:mod:`array` module produces byte-identical encodings — with an explicit
byteswap on big-endian platforms, since the wire layout is always
little-endian.

Decoded values are returned as plain Python ``int``/``float`` lists:
numpy scalars must never leak into response envelopes, where
``json.dumps`` (and byte-identical answers) require native types.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import Sequence

from repro.codec.rbf import CorruptRecordError

try:  # pragma: no cover - exercised via REPRO_CODEC_PURE on numpy-less builds
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None  # type: ignore[assignment]

if os.environ.get("REPRO_CODEC_PURE"):
    _numpy = None  # type: ignore[assignment]

__all__ = [
    "COUNT",
    "MATRIX_HEADER",
    "decode_f64",
    "decode_i64",
    "decode_matrix",
    "encode_f64",
    "encode_i64",
    "encode_matrix",
    "using_numpy",
]

#: Count prefix of every column: number of values that follow.
COUNT = struct.Struct("<I")

#: Matrix prefix: row count then uniform row width.
MATRIX_HEADER = struct.Struct("<II")

_BIG_ENDIAN = sys.byteorder == "big"


def using_numpy() -> bool:
    """Whether the fast numpy path is active (vs the ``array`` fallback)."""
    return _numpy is not None


def _pack_values(values: Sequence, typecode: str, dtype: str) -> bytes:
    if _numpy is not None:
        return _numpy.asarray(values, dtype=dtype).tobytes()
    packed = array(typecode, values)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian CI
        packed.byteswap()
    return packed.tobytes()


#: Below this count ``struct.unpack_from`` beats ``numpy.frombuffer`` —
#: the per-call numpy overhead dominates tiny columns (WAL items, short
#: match lists), and the struct module caches compiled formats.
_SMALL_COLUMN = 64


def _unpack_values(
    buffer: bytes, offset: int, count: int, typecode: str, dtype: str
) -> list:
    width = struct.calcsize(typecode)
    end = offset + count * width
    if end > len(buffer):
        raise CorruptRecordError(
            f"column of {count} values overruns the payload", offset=offset
        )
    if count <= _SMALL_COLUMN:
        return list(struct.unpack_from(f"<{count}{typecode}", buffer, offset))
    if _numpy is not None:
        view = _numpy.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
        return view.tolist()
    unpacked = array(typecode)
    unpacked.frombytes(buffer[offset:end])
    if _BIG_ENDIAN:  # pragma: no cover - little-endian CI
        unpacked.byteswap()
    return unpacked.tolist()


def encode_i64(values: Sequence[int]) -> bytes:
    """Encode a count-prefixed column of signed 64-bit integers."""
    return COUNT.pack(len(values)) + _pack_values(values, "q", "<i8")


def decode_i64(buffer: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode one i64 column; returns ``(values, next_offset)``."""
    if len(buffer) - offset < COUNT.size:
        raise CorruptRecordError("missing column count", offset=offset)
    (count,) = COUNT.unpack_from(buffer, offset)
    values = _unpack_values(buffer, offset + COUNT.size, count, "q", "<i8")
    return values, offset + COUNT.size + count * 8


def encode_f64(values: Sequence[float]) -> bytes:
    """Encode a count-prefixed column of IEEE-754 doubles (exact round trip)."""
    return COUNT.pack(len(values)) + _pack_values(values, "d", "<f8")


def decode_f64(buffer: bytes, offset: int = 0) -> tuple[list[float], int]:
    """Decode one f64 column; returns ``(values, next_offset)``."""
    if len(buffer) - offset < COUNT.size:
        raise CorruptRecordError("missing column count", offset=offset)
    (count,) = COUNT.unpack_from(buffer, offset)
    values = _unpack_values(buffer, offset + COUNT.size, count, "d", "<f8")
    return values, offset + COUNT.size + count * 8


def encode_matrix(rows: Sequence[Sequence[int]]) -> bytes:
    """Encode ``n`` uniform-width i64 rows as an ``n x k`` matrix block.

    Rows must share one width ``k`` (rankings in a collection do by
    construction); an empty matrix stores ``k = 0``.
    """
    n = len(rows)
    k = len(rows[0]) if n else 0
    flat: list[int] = []
    for row in rows:
        if len(row) != k:
            raise ValueError(f"ragged matrix: row of {len(row)} items, expected {k}")
        flat.extend(row)
    return MATRIX_HEADER.pack(n, k) + _pack_values(flat, "q", "<i8")


def decode_matrix(buffer: bytes, offset: int = 0) -> tuple[list[list[int]], int]:
    """Decode one i64 matrix block; returns ``(rows, next_offset)``."""
    if len(buffer) - offset < MATRIX_HEADER.size:
        raise CorruptRecordError("missing matrix header", offset=offset)
    n, k = MATRIX_HEADER.unpack_from(buffer, offset)
    start = offset + MATRIX_HEADER.size
    flat = _unpack_values(buffer, start, n * k, "q", "<i8")
    rows = [flat[i * k : (i + 1) * k] for i in range(n)]
    return rows, start + n * k * 8
