"""Serving layer over a mutable collection: cached queries + mutations.

:class:`LiveQueryEngine` is the live-update counterpart of
:class:`~repro.service.engine.QueryEngine`: the same request API
(``query`` / ``batch_query`` / ``knn`` returning
:class:`~repro.service.recording.EngineResponse` with per-request
:class:`~repro.service.recording.QueryStats`), the same
:class:`~repro.service.cache.LRUResultCache`, the same shared request flow
from :mod:`repro.service.recording` — but over a
:class:`~repro.live.collection.LiveCollection` that also accepts
``insert`` / ``delete`` / ``upsert`` between queries.

Cache correctness under mutation is epoch-based: the collection bumps its
``version`` on every mutation, flush, and compaction, and the engine
invalidates the whole cache the first time it sees a new version.  A burst
of writes therefore costs exactly one invalidation, and read-only periods
keep their hit rate — the same discipline ``QueryEngine`` applies around
``rebuild()``.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from pathlib import Path
from typing import Optional, Union

from repro.core.errors import InvalidRequestError
from repro.core.ranking import Ranking
from repro.algorithms.registry import LIVE_ALGORITHMS
from repro.live.collection import DEFAULT_LIVE_ALGORITHM, LiveCollection
from repro.service.cache import LRUResultCache, knn_fingerprint, range_fingerprint
from repro.service.recording import (
    EngineResponse,
    EngineStats,
    RequestRecorder,
    serve_cached,
)


class LiveQueryEngine:
    """Cached query service over a mutable :class:`LiveCollection`.

    Parameters
    ----------
    collection:
        The live collection to serve; a fresh empty one by default.
    algorithm:
        Default index algorithm for base and segment queries; must be one of
        the registry's :data:`~repro.algorithms.registry.LIVE_ALGORITHMS`
        (per-request overrides are unrestricted).
    cache_capacity:
        LRU capacity; ``0`` disables result caching.

    Examples
    --------
    >>> engine = LiveQueryEngine()
    >>> engine.insert([1, 2, 3])
    0
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    False
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    True
    >>> engine.insert([7, 8, 9])                # bumps the collection version
    1
    >>> engine.query(Ranking([1, 2, 3]), theta=0.1).stats.cache_hit
    False
    """

    def __init__(
        self,
        collection: Optional[LiveCollection] = None,
        *,
        algorithm: str = DEFAULT_LIVE_ALGORITHM,
        cache_capacity: int = 1024,
    ) -> None:
        if algorithm not in LIVE_ALGORITHMS:
            known = ", ".join(LIVE_ALGORITHMS)
            raise InvalidRequestError(
                f"algorithm {algorithm!r} cannot serve live traffic; use one of {known}"
            )
        self._collection = collection if collection is not None else LiveCollection()
        self._algorithm = algorithm
        self._cache = LRUResultCache(cache_capacity)
        self._recorder = RequestRecorder(self._cache.stats, lambda: self._collection.num_shards)
        self._epoch_lock = threading.Lock()
        self._cached_version = self._collection.version

    # -- component access ---------------------------------------------------------

    @property
    def collection(self) -> LiveCollection:
        """The served mutable collection."""
        return self._collection

    @property
    def cache(self) -> LRUResultCache:
        """The result cache."""
        return self._cache

    @property
    def algorithm(self) -> str:
        """The default index algorithm."""
        return self._algorithm

    def stats(self) -> EngineStats:
        """Running totals (``rebuilds`` counts cache-invalidation epochs)."""
        return self._recorder.stats

    # -- mutations (delegate; the version bump invalidates lazily) ----------------

    def insert(self, items: Union[Ranking, list[int], tuple[int, ...]]) -> int:
        """Insert one ranking; returns its logical key."""
        return self._collection.insert(items)

    def delete(self, key: int) -> None:
        """Delete the ranking stored under ``key``."""
        self._collection.delete(key)

    def upsert(self, key: int, items: Union[Ranking, list[int], tuple[int, ...]]) -> None:
        """Replace (or insert) the ranking under ``key``."""
        self._collection.upsert(key, items)

    def flush(self) -> Optional[int]:
        """Seal the memtable into a segment."""
        return self._collection.flush()

    def compact(self) -> bool:
        """Fold segments and tombstones into a fresh base epoch."""
        return self._collection.compact()

    def sync(self) -> None:
        """Force a WAL barrier: everything accepted so far becomes durable."""
        self._collection.sync()

    def snapshot(self) -> Path:
        """Checkpoint the collection so restarts replay only the WAL tail."""
        return self._collection.snapshot()

    @property
    def durability(self) -> str:
        """The served collection's write-path guarantee."""
        return self._collection.durability

    def close(self) -> None:
        """Close the collection (WAL handle, thread pools, compactor)."""
        self._collection.close()

    def __enter__(self) -> "LiveQueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request entry points ------------------------------------------------------

    def query(
        self, query: Ranking, theta: float, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one range query over the current logical collection."""
        version = self._refresh_epoch()
        chosen = algorithm if algorithm is not None else self._algorithm

        def compute():
            result = self._collection.range_query(query, theta, algorithm=chosen)
            return result, chosen, "pinned" if algorithm is not None else "default"

        return serve_cached(
            kind="range",
            fingerprint=range_fingerprint(query, theta),
            cache_get=self._cache.get,
            cache_put=lambda fingerprint, result: self._put_if_current(
                fingerprint, result, version
            ),
            compute=compute,
            recorder=self._recorder,
            theta=theta,
        )

    def batch_query(
        self, queries: Sequence[Ranking], theta: float, algorithm: Optional[str] = None
    ) -> list[EngineResponse]:
        """Answer a batch of range queries through the cached path."""
        return [self.query(query, theta, algorithm=algorithm) for query in queries]

    def knn(
        self, query: Ranking, n_neighbours: int, algorithm: Optional[str] = None
    ) -> EngineResponse:
        """Answer one exact k-nearest-neighbour query."""
        version = self._refresh_epoch()
        chosen = algorithm if algorithm is not None else self._algorithm

        def compute():
            result = self._collection.knn(query, n_neighbours, algorithm=chosen)
            return result, chosen, "pinned" if algorithm is not None else "default"

        return serve_cached(
            kind="knn",
            fingerprint=knn_fingerprint(query, n_neighbours),
            cache_get=self._cache.get,
            cache_put=lambda fingerprint, result: self._put_if_current(
                fingerprint, result, version
            ),
            compute=compute,
            recorder=self._recorder,
            n_neighbours=n_neighbours,
        )

    # -- internals ------------------------------------------------------------------

    def _refresh_epoch(self) -> int:
        """Invalidate the cache once per observed collection version change.

        An empty cache has nothing stale in it, so write bursts that arrive
        before any query re-populates it cost zero invalidations.  Returns
        the version the caller's answer will be computed against.
        """
        with self._epoch_lock:
            version = self._collection.version
            if version != self._cached_version:
                if len(self._cache) > 0:
                    self._cache.invalidate()
                    self._recorder.count_rebuild()
                self._cached_version = version
            return version

    def _put_if_current(self, fingerprint, result, version: int) -> None:
        """Cache an answer unless a mutation landed while it was computed.

        Without the check, a result computed against version ``v`` could be
        stored after a concurrent invalidation already advanced the epoch —
        and then be served as a fresh hit.  A mutation that lands after the
        put is still safe: the epoch it bumps invalidates on the next query.
        """
        with self._epoch_lock:
            if self._collection.version == version and self._cached_version == version:
                self._cache.put(fingerprint, result)

    def __repr__(self) -> str:
        return (
            f"LiveQueryEngine(live={len(self._collection)}, "
            f"version={self._collection.version}, requests={self._recorder.stats.requests})"
        )
