"""Tombstones: which stored versions are no longer the live one.

A delete or upsert cannot touch an immutable segment or the sealed base
index, so instead the *location* of the superseded version — ``("base",
epoch, global id)`` or ``("seg", segment id, local id)`` — is tombstoned.
Query merging then filters every base/segment match through the set, and
compaction consumes the tombstones of the layers it rewrites.

Per-layer counts are maintained alongside the set because exact k-NN over a
tombstoned layer must over-fetch: a layer's top ``n + dead(layer)`` answers
are guaranteed to contain its top ``n`` live ones.
"""

from __future__ import annotations

from collections import Counter

#: A tombstoned location: ("base", epoch, rid) or ("seg", segment_id, local_rid).
TombstoneLocation = tuple[str, int, int]


class TombstoneSet:
    """Set of superseded storage locations with per-layer counts.

    Examples
    --------
    >>> tombstones = TombstoneSet()
    >>> tombstones.add(("seg", 0, 2))
    >>> ("seg", 0, 2) in tombstones
    True
    >>> tombstones.count_for(("seg", 0))
    1
    """

    def __init__(self) -> None:
        self._locations: set[TombstoneLocation] = set()
        self._per_layer: Counter = Counter()

    def add(self, location: TombstoneLocation) -> None:
        """Mark one stored version as dead."""
        if location not in self._locations:
            self._locations.add(location)
            self._per_layer[location[:2]] += 1

    def __contains__(self, location: object) -> bool:
        return location in self._locations

    def __len__(self) -> int:
        return len(self._locations)

    def count_for(self, layer: tuple[str, int]) -> int:
        """Dead versions inside one layer (``("base", epoch)`` / ``("seg", id)``)."""
        return self._per_layer.get(layer, 0)

    def snapshot(self) -> frozenset[TombstoneLocation]:
        """Immutable copy for lock-free readers (queries, the compactor)."""
        return frozenset(self._locations)

    def discard_layer(self, layer: tuple[str, int]) -> int:
        """Drop every tombstone of one layer (it was compacted away)."""
        doomed = [location for location in self._locations if location[:2] == layer]
        for location in doomed:
            self._locations.discard(location)
        if layer in self._per_layer:
            del self._per_layer[layer]
        return len(doomed)

    def __repr__(self) -> str:
        return f"TombstoneSet(size={len(self._locations)})"
