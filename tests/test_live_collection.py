"""LiveCollection unit tests: mutations, layering, flush, and compaction."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    DuplicateItemError,
    InvalidThresholdError,
    RankingSizeMismatchError,
)
from repro.core.ranking import Ranking, RankingSet
from repro.live import LiveCollection


def fresh(**kwargs) -> LiveCollection:
    kwargs.setdefault("memtable_threshold", 4)
    kwargs.setdefault("max_segments", 2)
    return LiveCollection(**kwargs)


def test_insert_assigns_increasing_keys():
    live = fresh()
    assert [live.insert([1, 2, 3]), live.insert([4, 5, 6]), live.insert([7, 8, 9])] == [0, 1, 2]
    assert len(live) == 3
    assert live.live_keys() == [0, 1, 2]
    assert live.k == 3


def test_get_returns_current_version():
    live = fresh()
    key = live.insert([1, 2, 3])
    assert live.get(key) == Ranking([1, 2, 3])
    live.upsert(key, [3, 2, 1])
    assert live.get(key) == Ranking([3, 2, 1])
    assert live.get(999) is None


def test_delete_removes_from_memtable():
    live = fresh()
    key = live.insert([1, 2, 3])
    live.delete(key)
    assert len(live) == 0
    assert live.memtable_size == 0
    assert live.tombstone_count == 0  # never sealed, nothing to tombstone


def test_delete_of_sealed_ranking_tombstones_it():
    live = fresh()
    keys = [live.insert([i, i + 1, i + 2]) for i in range(0, 12, 3)]
    assert live.segment_count >= 1  # threshold 4 reached
    live.delete(keys[0])
    assert live.tombstone_count == 1
    assert keys[0] not in live


def test_delete_unknown_key_raises():
    live = fresh()
    live.insert([1, 2, 3])
    with pytest.raises(KeyError):
        live.delete(42)


def test_upsert_of_sealed_key_shadows_old_version():
    live = fresh(memtable_threshold=2)
    key = live.insert([1, 2, 3])
    live.insert([4, 5, 6])  # seals the memtable
    assert live.segment_count == 1
    live.upsert(key, [7, 8, 9])
    assert live.tombstone_count == 1
    assert live.get(key) == Ranking([7, 8, 9])
    result = live.range_query(Ranking([1, 2, 3]), theta=0.1)
    assert key not in result.rids  # old version filtered by its tombstone


def test_upsert_of_unknown_key_inserts_and_advances_key_counter():
    live = fresh()
    live.upsert(10, [1, 2, 3])
    assert live.live_keys() == [10]
    assert live.insert([4, 5, 6]) == 11


def test_mismatched_ranking_size_is_rejected():
    live = fresh()
    live.insert([1, 2, 3])
    with pytest.raises(RankingSizeMismatchError):
        live.insert([1, 2, 3, 4])
    with pytest.raises(RankingSizeMismatchError):
        live.upsert(0, [1, 2, 3, 4])
    with pytest.raises(DuplicateItemError):
        live.insert([1, 1, 2])
    assert live.stats().inserts == 1  # failed mutations not counted


def test_query_validation():
    live = fresh()
    live.insert([1, 2, 3])
    with pytest.raises(InvalidThresholdError):
        live.range_query(Ranking([1, 2, 3]), theta=1.5)
    with pytest.raises(RankingSizeMismatchError):
        live.range_query(Ranking([1, 2, 3, 4]), theta=0.2)
    with pytest.raises(RankingSizeMismatchError):
        live.knn(Ranking([1, 2, 3, 4]), 1)
    with pytest.raises(ValueError):
        live.knn(Ranking([1, 2, 3]), 0)


def test_flush_threshold_seals_memtable():
    live = fresh(memtable_threshold=3)
    for i in range(3):
        live.insert([i * 3 + 1, i * 3 + 2, i * 3 + 3])
    assert live.memtable_size == 0
    assert live.segment_count == 1
    assert live.stats().flushes == 1


def test_manual_flush_and_empty_flush():
    live = fresh(memtable_threshold=100)
    assert live.flush() is None
    live.insert([1, 2, 3])
    assert live.flush() is not None
    assert live.flush() is None
    assert live.segment_count == 1


def test_compaction_folds_segments_into_base():
    live = fresh(memtable_threshold=2, max_segments=10)
    keys = [live.insert([i, i + 100, i + 200]) for i in range(8)]
    live.delete(keys[2])
    live.flush()
    assert live.segment_count == 4
    assert live.compact() is True
    assert live.segment_count == 0
    assert live.base_size == 7
    assert live.tombstone_count == 0  # reclaimed by the merge
    assert live.live_keys() == [k for k in keys if k != keys[2]]


def test_compaction_with_nothing_to_do_is_a_no_op():
    live = fresh()
    assert live.compact() is False
    live.insert([1, 2, 3])
    assert live.compact() is False  # only the memtable holds data
    assert live.stats().compactions == 0


def test_auto_compaction_trigger():
    live = fresh(memtable_threshold=2, max_segments=2)
    for i in range(12):
        live.insert([i, i + 50, i + 100])
    assert live.stats().compactions >= 1
    assert live.segment_count <= 2


def test_background_compaction_completes():
    live = LiveCollection(memtable_threshold=2, max_segments=2, background_compaction=True)
    for i in range(20):
        live.insert([i, i + 50, i + 100])
    live._compactor.join()
    assert live.stats().compactions >= 1
    # every ranking still answerable after the swap
    result = live.range_query(Ranking([0, 50, 100]), theta=0.0)
    assert result.rids == {0}
    live.close()


def test_initial_collection_becomes_base():
    rankings = RankingSet.from_lists([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    live = LiveCollection(initial=rankings, num_shards=2)
    assert live.base_size == 3
    assert live.live_keys() == [0, 1, 2]
    assert live.insert([10, 11, 12]) == 3
    live.delete(1)
    assert live.to_ranking_set().rankings[1] == Ranking([7, 8, 9])


def test_version_bumps_on_every_change():
    live = fresh(memtable_threshold=100)
    versions = [live.version]
    live.insert([1, 2, 3])
    versions.append(live.version)
    live.upsert(0, [3, 2, 1])
    versions.append(live.version)
    live.flush()
    versions.append(live.version)
    live.delete(0)
    versions.append(live.version)
    assert versions == sorted(set(versions))  # strictly increasing


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        LiveCollection(memtable_threshold=0)
    with pytest.raises(ValueError):
        LiveCollection(max_segments=0)
    with pytest.raises(ValueError):
        LiveCollection(num_shards=0)


def test_stats_mutation_totals():
    live = fresh()
    live.insert([1, 2, 3])
    live.insert([4, 5, 6])
    live.upsert(0, [3, 2, 1])
    live.delete(1)
    stats = live.stats()
    assert (stats.inserts, stats.deletes, stats.upserts) == (2, 1, 1)
    assert stats.mutations == 4
    assert stats.as_dict()["mutations"]["inserts"] == 2
    assert stats.as_flat_dict()["inserts"] == 2
