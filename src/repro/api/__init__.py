"""Protocol-first serving API: one facade, typed envelopes, a wire layer.

The library grew two signature-divergent serving engines —
:class:`~repro.service.engine.QueryEngine` over frozen collections and
:class:`~repro.live.engine.LiveQueryEngine` over mutable ones.  This
package is the stable boundary in front of both:

Layering (each module only depends on the ones above it)::

    requests.py   typed request objects + strict wire-payload validation
    responses.py  the Response envelope, error codes, canonical JSON
    surface.py    ExecutorSurface: engine-shaped helpers over execute()
    database.py   Database facade (named static/live collections) + Session
    protocol.py   length-prefixed JSON frames, size limits, frame errors
    server.py     threaded TCP server sharing one Database
    client.py     blocking client speaking the same surface

The invariant the whole package is built around: for any request, the
response produced over the wire is **byte-identical** (modulo volatile
latency stats — see :meth:`~repro.api.responses.Response.result_bytes`) to
the response produced by an in-process :class:`~repro.api.database.Session`
on the same database.
"""

from repro.api.client import Client
from repro.api.database import CollectionInfo, Database, Session
from repro.api.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    FrameTooLargeError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.api.requests import (
    ADMIN_ACTIONS,
    AdminRequest,
    BatchRequest,
    DEFAULT_COLLECTION,
    DeleteRequest,
    InsertRequest,
    KnnRequest,
    RangeQueryRequest,
    Request,
    UpsertRequest,
    parse_request,
)
from repro.api.responses import (
    MatchPayload,
    Response,
    ResponseError,
    canonical_json,
    error_response,
)
from repro.api.server import DEFAULT_HOST, DEFAULT_PORT, DatabaseServer
from repro.api.surface import ExecutorSurface

__all__ = [
    "ADMIN_ACTIONS",
    "AdminRequest",
    "BatchRequest",
    "Client",
    "CollectionInfo",
    "Database",
    "DatabaseServer",
    "DEFAULT_COLLECTION",
    "DEFAULT_HOST",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_PORT",
    "DeleteRequest",
    "ExecutorSurface",
    "FrameError",
    "FrameTooLargeError",
    "InsertRequest",
    "KnnRequest",
    "MatchPayload",
    "RangeQueryRequest",
    "Request",
    "Response",
    "ResponseError",
    "Session",
    "UpsertRequest",
    "canonical_json",
    "encode_frame",
    "error_response",
    "parse_request",
    "read_frame",
    "write_frame",
]
