"""Figure 7 — measured coarse-index filtering/validation trade-off over theta_C.

One benchmark per (dataset, theta_C) grid point at theta = 0.2, k = 10.  The
filtering and validation phase times are attached as extra_info so the two
curves of the paper's figure can be read off the benchmark JSON; the expected
shape is decreasing filtering time, increasing validation time, and an
interior minimum of the total.
"""

from __future__ import annotations

import pytest

from repro.algorithms.coarse import CoarseSearch
from repro.experiments.harness import run_workload

from _utils import attach_counters, run_once

THETA = 0.2
THETA_C_GRID = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7)

_algorithms = {}


def _algorithm(setup, theta_c: float) -> CoarseSearch:
    key = (setup.name, theta_c)
    if key not in _algorithms:
        _algorithms[key] = CoarseSearch.build(setup.rankings, theta_c=theta_c)
    return _algorithms[key]


@pytest.mark.benchmark(group="figure7-coarse-tradeoff")
@pytest.mark.parametrize("theta_c", THETA_C_GRID)
@pytest.mark.parametrize("dataset", ["nyt", "yago"])
def test_figure7_tradeoff(benchmark, dataset, theta_c, nyt_setup, yago_setup):
    setup = nyt_setup if dataset == "nyt" else yago_setup
    algorithm = _algorithm(setup, theta_c)
    measurement = run_once(benchmark, run_workload, algorithm, setup.queries, THETA)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["theta_c"] = theta_c
    benchmark.extra_info["filter_seconds"] = round(measurement.stats.filter_seconds, 6)
    benchmark.extra_info["validate_seconds"] = round(measurement.stats.validate_seconds, 6)
    benchmark.extra_info["num_partitions"] = algorithm.coarse_index.num_partitions()
    attach_counters(benchmark, measurement)
