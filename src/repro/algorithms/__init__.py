"""Query-processing algorithms evaluated in the paper.

Every algorithm implements :class:`RankingSearchAlgorithm` and is registered
under its paper name in :mod:`repro.algorithms.registry`, so the experiment
harness, the CLI and the benchmarks can run the full suite uniformly:

================  ==========================================================
Registry name      Description
================  ==========================================================
``F&V``            Filter & Validate over a plain inverted index
``F&V+Drop``       F&V accessing only the lists required by Lemma 2
``ListMerge``      Merge join of id-sorted, rank-augmented lists
``Blocked+Prune``  Blocked list access with NRA-style bound pruning
``Blocked+Prune+Drop``  Blocked access, pruning, and list dropping combined
``Coarse``         Coarse index, medoid filtering via F&V
``Coarse+Drop``    Coarse index, medoid filtering via F&V+Drop
``AdaptSearch``    Adaptive prefix-filtering competitor
``MinimalF&V``     Oracle lower bound (one materialised list per query)
``BK-tree``        BK-tree range search baseline
``M-tree``         M-tree range search baseline
``VP-tree``        VP-tree range search baseline (extension)
================  ==========================================================
"""

from repro.algorithms.adaptsearch import AdaptSearch
from repro.algorithms.base import RankingSearchAlgorithm
from repro.algorithms.batch import BatchCoarseSearch
from repro.algorithms.blocked_prune import BlockedPrune, BlockedPruneDrop
from repro.algorithms.knn import BKTreeKNN, BruteForceKNN, KnnResult, RangeExpansionKNN
from repro.algorithms.coarse import CoarseSearch, CoarseDropSearch
from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.fv_drop import FilterValidateDrop
from repro.algorithms.listmerge import ListMerge
from repro.algorithms.metric_search import BKTreeSearch, MTreeSearch, VPTreeSearch
from repro.algorithms.minimal_fv import MinimalFilterValidate
from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    LIVE_ALGORITHMS,
    available_algorithms,
    make_algorithm,
)

__all__ = [
    "RankingSearchAlgorithm",
    "FilterValidate",
    "FilterValidateDrop",
    "ListMerge",
    "BlockedPrune",
    "BlockedPruneDrop",
    "CoarseSearch",
    "CoarseDropSearch",
    "AdaptSearch",
    "MinimalFilterValidate",
    "BKTreeSearch",
    "MTreeSearch",
    "VPTreeSearch",
    "BatchCoarseSearch",
    "BruteForceKNN",
    "BKTreeKNN",
    "RangeExpansionKNN",
    "KnnResult",
    "ALGORITHM_NAMES",
    "LIVE_ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
]
