"""Length-prefixed JSON framing shared by the server and the client.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (the canonical encoding from
:func:`repro.api.responses.canonical_json`: sorted keys, no whitespace)::

    +----------------+----------------------------------+
    | length  !I (4) | payload  UTF-8 JSON (length)     |
    +----------------+----------------------------------+

Both sides enforce ``max_frame_bytes``; an oversized or torn frame raises
:class:`FrameError` subclasses, which the server answers with a
``protocol`` error envelope before closing the connection (after refusing
a frame the stream cannot be resynchronised).  A clean EOF *between*
frames reads as ``None`` — that is how a client hangs up.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Optional

from repro.core.errors import ReproError
from repro.api.responses import canonical_json

#: Frame header: one 4-byte big-endian unsigned payload length.
HEADER = struct.Struct("!I")

#: Default upper bound on one frame's payload (requests *and* responses).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ReproError):
    """A wire frame violated the protocol (torn, oversized, or not JSON)."""


class FrameTooLargeError(FrameError):
    """A frame announced a payload larger than the negotiated maximum."""

    def __init__(self, announced: int, maximum: int) -> None:
        super().__init__(f"frame of {announced} bytes exceeds the {maximum}-byte maximum")
        self.announced = announced
        self.maximum = maximum


def encode_frame(payload: dict, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload into a complete frame (header + body)."""
    body = canonical_json(payload)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(len(body), max_frame_bytes)
    return HEADER.pack(len(body)) + body


def write_frame(
    stream: BinaryIO, payload: dict, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> None:
    """Write one frame and flush it."""
    stream.write(encode_frame(payload, max_frame_bytes))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise FrameError(
                    f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    stream: BinaryIO, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame's payload; ``None`` on clean EOF between frames."""
    header = _read_exact(stream, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    body = _read_exact(stream, length)
    if body is None:
        raise FrameError("connection closed between frame header and payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError(f"frame payload must be a JSON object, got {type(payload).__name__}")
    return payload
