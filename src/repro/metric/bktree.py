"""Burkhard-Keller tree for discrete metrics (Burkhard & Keller 1973).

The BK-tree is an n-ary tree in which every node holds one object and points
to one subtree per *discrete* distance value: the child subtree at edge label
``d`` contains exactly the objects whose distance to the node's object is
``d``.  Range queries exploit the triangle inequality: when searching for
objects within distance ``theta`` of a query whose distance to the current
node is ``d_q``, only the child edges labelled within ``[d_q - theta,
d_q + theta]`` can contain results.

The raw (integer) Footrule distance between top-k lists is a discrete metric,
which is why the paper uses the BK-tree both as a standalone baseline and as
the partition container of the coarse index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from repro.core.ranking import Ranking
from repro.core.stats import SearchStats

DiscreteDistance = Callable[[Ranking, Ranking], int]


@dataclass
class BKTreeNode:
    """One node of a BK-tree: a ranking plus children keyed by distance."""

    ranking: Ranking
    children: dict[int, "BKTreeNode"] = field(default_factory=dict)

    def subtree_size(self) -> int:
        """Number of rankings stored in the subtree rooted at this node."""
        return 1 + sum(child.subtree_size() for child in self.children.values())

    def iter_subtree(self) -> Iterator["BKTreeNode"]:
        """Yield every node of the subtree (pre-order)."""
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()


class BKTree:
    """BK-tree over rankings with a user-supplied discrete distance.

    Parameters
    ----------
    distance:
        A discrete (integer-valued) metric between rankings, typically
        :func:`repro.core.distances.footrule_topk_raw`.

    Examples
    --------
    >>> from repro.core.distances import footrule_topk_raw
    >>> from repro.core.ranking import RankingSet
    >>> rankings = RankingSet.from_lists([[1, 2, 3], [1, 3, 2], [7, 8, 9]])
    >>> tree = BKTree.build(rankings.rankings, footrule_topk_raw)
    >>> sorted(r.rid for r, d in tree.range_search(rankings[0], 4))
    [0, 1]
    """

    def __init__(self, distance: DiscreteDistance) -> None:
        self._distance = distance
        self._root: Optional[BKTreeNode] = None
        self._size = 0
        self._construction_distance_calls = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, rankings: Iterable[Ranking], distance: DiscreteDistance) -> "BKTree":
        """Insert all rankings one by one (construction order = iteration order)."""
        tree = cls(distance)
        for ranking in rankings:
            tree.insert(ranking)
        return tree

    def insert(self, ranking: Ranking) -> None:
        """Insert one ranking.

        Exact duplicates (distance 0 to an existing node) are chained below
        that node via the distance-0 edge so they are preserved and retrieved
        together.
        """
        if self._root is None:
            self._root = BKTreeNode(ranking=ranking)
            self._size = 1
            return
        node = self._root
        while True:
            self._construction_distance_calls += 1
            separation = self._distance(ranking, node.ranking)
            child = node.children.get(separation)
            if child is None:
                node.children[separation] = BKTreeNode(ranking=ranking)
                self._size += 1
                return
            node = child

    # -- accessors ------------------------------------------------------------------

    @property
    def root(self) -> Optional[BKTreeNode]:
        """The root node, or ``None`` for an empty tree."""
        return self._root

    @property
    def distance(self) -> DiscreteDistance:
        """The discrete metric the tree was built with."""
        return self._distance

    @property
    def construction_distance_calls(self) -> int:
        """Distance evaluations spent during construction (Table 6 discussion)."""
        return self._construction_distance_calls

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Ranking]:
        if self._root is None:
            return iter(())
        return (node.ranking for node in self._root.iter_subtree())

    def depth(self) -> int:
        """Height of the tree (0 for an empty tree, 1 for a single node)."""

        def node_depth(node: Optional[BKTreeNode]) -> int:
            if node is None:
                return 0
            if not node.children:
                return 1
            return 1 + max(node_depth(child) for child in node.children.values())

        return node_depth(self._root)

    def memory_estimate_bytes(self) -> int:
        """Rough footprint: node overhead plus the stored rankings."""
        if self._root is None:
            return 0
        per_node_overhead = 48
        ranking_bytes = sum(8 * node.ranking.size for node in self._root.iter_subtree())
        return per_node_overhead * self._size + ranking_bytes

    # -- queries ------------------------------------------------------------------------

    def range_search(
        self,
        query: Ranking,
        theta_raw: float,
        stats: Optional[SearchStats] = None,
    ) -> list[tuple[Ranking, int]]:
        """All rankings within raw distance ``theta_raw`` of the query.

        Returns (ranking, raw distance) pairs.  The traversal only descends
        into child edges whose label lies in ``[d_q - theta, d_q + theta]``.
        """
        if self._root is None:
            return []
        results: list[tuple[Ranking, int]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
                stats.distance_calls += 1
            separation = self._distance(query, node.ranking)
            if separation <= theta_raw:
                results.append((node.ranking, separation))
            low = separation - theta_raw
            high = separation + theta_raw
            for edge, child in node.children.items():
                if low <= edge <= high:
                    stack.append(child)
        return results

    def range_search_subtree(
        self,
        node: BKTreeNode,
        query: Ranking,
        theta_raw: float,
        stats: Optional[SearchStats] = None,
    ) -> list[tuple[Ranking, int]]:
        """Range search restricted to the subtree rooted at ``node``.

        The coarse index stores each partition as a BK-(sub)tree and calls
        this method to validate a partition against the original threshold.
        """
        results: list[tuple[Ranking, int]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
                stats.distance_calls += 1
            separation = self._distance(query, current.ranking)
            if separation <= theta_raw:
                results.append((current.ranking, separation))
            low = separation - theta_raw
            high = separation + theta_raw
            for edge, child in current.children.items():
                if low <= edge <= high:
                    stack.append(child)
        return results

    def __repr__(self) -> str:
        return f"BKTree(size={self._size}, depth={self.depth()})"
