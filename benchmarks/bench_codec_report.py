"""Emit ``BENCH_codec.json``: the json-vs-binary codec comparison summary.

Reuses the measurement helpers from the two benchmark modules it
summarises — :mod:`bench_live_updates` for the storage side (restart
replay time, WAL footprint, checkpoint size) and
:mod:`bench_server_qps` for the wire side (pipelined QPS per wire
format) — so the JSON report and the pytest-benchmark groups can never
drift apart.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_codec_report.py
    PYTHONPATH=src python benchmarks/bench_codec_report.py --output BENCH_codec.json --check

``--check`` exits non-zero unless the binary format wins both storage
axes (faster restart replay *and* a smaller checkpoint) — the CI guard
on the tentpole's perf claims.  Wire QPS is reported but not gated: on
loopback the win is mostly serialisation cost and shared runners make
it too noisy for a hard threshold.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.api import Database, DatabaseServer

from bench_live_updates import (
    MUTATIONS,
    codec_checkpoint_figures,
    codec_restart_figures,
)
from bench_server_qps import PASSES, PIPELINE_DEPTH, _serve_pipelined

FORMATS = ("json", "binary")

#: Timed trials per figure; best-of damps shared-runner noise.
TRIALS = 3

#: WAL records replayed by the restart measurement.  Larger than the
#: pytest group's workload: a short replay is dominated by the fixed
#: cost of ``open()`` and the decode difference drowns in timer noise.
REPORT_MUTATIONS = 6000


def measure_storage() -> dict:
    """Restart-replay and checkpoint figures per storage format."""
    report: dict = {"mutations": REPORT_MUTATIONS, "formats": {}}
    for storage_format in FORMATS:
        best: dict = {}
        for _ in range(TRIALS):
            directory = Path(tempfile.mkdtemp(prefix="repro-codec-bench-"))
            try:
                figures = codec_restart_figures(
                    directory, storage_format, REPORT_MUTATIONS
                )
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            if not best or figures["replay_seconds"] < best["replay_seconds"]:
                best = figures
        directory = Path(tempfile.mkdtemp(prefix="repro-codec-bench-"))
        try:
            best |= codec_checkpoint_figures(directory, storage_format, MUTATIONS)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        best.pop("format", None)
        best["replay_ms"] = round(best.pop("replay_seconds") * 1000.0, 2)
        report["formats"][storage_format] = best
    json_side, binary_side = (report["formats"][f] for f in FORMATS)
    report["replay_speedup"] = round(
        json_side["replay_ms"] / binary_side["replay_ms"], 2
    ) if binary_side["replay_ms"] else float("inf")
    report["checkpoint_ratio"] = round(
        binary_side["checkpoint_bytes"] / json_side["checkpoint_bytes"], 3
    ) if json_side["checkpoint_bytes"] else float("inf")
    return report


def measure_wire() -> dict:
    """Pipelined QPS per wire format against one threaded server."""
    from repro.datasets.nyt import nyt_like_dataset
    from repro.datasets.queries import sample_queries

    rankings = nyt_like_dataset(n=800, k=10)
    queries = sample_queries(rankings, 30, seed=3)
    report: dict = {
        "queries": len(queries) * PASSES,
        "pipeline_depth": PIPELINE_DEPTH,
        "formats": {},
    }
    database = Database()
    database.create_static("news", rankings, num_shards=2)
    try:
        with DatabaseServer(database, port=0) as server:
            # warm-up untimed: planner exploration + cache fill
            _serve_pipelined(server.address, queries, PIPELINE_DEPTH)
            for wire_format in FORMATS:
                qps = 0.0
                for _ in range(TRIALS):
                    start = time.perf_counter()
                    served = _serve_pipelined(
                        server.address, queries, PIPELINE_DEPTH, wire_format
                    )
                    elapsed = time.perf_counter() - start
                    qps = max(qps, served / elapsed if elapsed > 0 else float("inf"))
                report["formats"][wire_format] = {"qps": round(qps, 1)}
    finally:
        database.close()
    json_qps = report["formats"]["json"]["qps"]
    report["qps_speedup"] = (
        round(report["formats"]["binary"]["qps"] / json_qps, 2)
        if json_qps
        else float("inf")
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_codec.json"), metavar="PATH",
        help="where to write the JSON summary (default: ./BENCH_codec.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless binary beats json on restart replay "
             "and checkpoint size",
    )
    args = parser.parse_args(argv)

    storage = measure_storage()
    wire = measure_wire()
    report = {"workload": "nyt-like churn + pipelined range queries",
              "storage": storage, "wire": wire}
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"storage ({storage['mutations']} mutations, best of {TRIALS}):")
    print(f"{'format':>8s}  {'replay':>9s}  {'replayed':>8s}  {'wal bytes':>10s}  {'checkpoint':>10s}")
    for storage_format in FORMATS:
        side = storage["formats"][storage_format]
        print(
            f"{storage_format:>8s}  {side['replay_ms']:>7.1f}ms  "
            f"{side['replayed_records']:>8d}  {side['wal_bytes']:>10d}  "
            f"{side['checkpoint_bytes']:>10d}"
        )
    print(
        f"binary replay {storage['replay_speedup']:.2f}x faster, "
        f"checkpoint {storage['checkpoint_ratio']:.0%} of json's size"
    )
    print(f"\nwire (pipelined depth={wire['pipeline_depth']}, best of {TRIALS}):")
    for wire_format in FORMATS:
        print(f"{wire_format:>8s}  {wire['formats'][wire_format]['qps']:>9.1f} QPS")
    print(f"binary pipelined QPS {wire['qps_speedup']:.2f}x json")
    print(f"\nwrote {args.output}")

    if args.check:
        failures = []
        if storage["replay_speedup"] < 1.0:
            failures.append(
                f"binary restart replay is slower than json "
                f"(speedup {storage['replay_speedup']:.2f}x)"
            )
        if storage["checkpoint_ratio"] >= 1.0:
            failures.append(
                f"binary checkpoint is not smaller than json "
                f"(ratio {storage['checkpoint_ratio']:.2f})"
            )
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
