"""The single catalogue of every ``repro_*`` metric name.

Instrumentation sites import these constants instead of spelling the
name inline — the ``metric-registry`` lint rule (``repro lint``) rejects
string literals at ``.counter(...)`` / ``.gauge(...)`` /
``.histogram(...)`` call sites, flags catalogue entries nothing
references, and checks that the README metrics section documents
exactly this catalogue.  That closes the three drift modes metric names
have historically had: a typo at one call site silently splitting a
series, a renamed metric leaving the old name in the docs, and dead
names lingering after their call site was deleted.

Grouped by subsystem; the constant name is the metric name minus the
``repro_`` prefix, upper-cased.
"""

from __future__ import annotations

# -- request path (service.recording) ------------------------------------------
REQUEST_SECONDS = "repro_request_seconds"
ENGINE_REBUILDS_TOTAL = "repro_engine_rebuilds_total"
PLANNER_SOURCE_TOTAL = "repro_planner_source_total"
ALGORITHM_TOTAL = "repro_algorithm_total"
PLANNER_DECISIONS_TOTAL = "repro_planner_decisions_total"

# -- result cache (service.cache) ----------------------------------------------
CACHE_HITS_TOTAL = "repro_cache_hits_total"
CACHE_MISSES_TOTAL = "repro_cache_misses_total"
CACHE_EVICTIONS_TOTAL = "repro_cache_evictions_total"
CACHE_INVALIDATIONS_TOTAL = "repro_cache_invalidations_total"

# -- shard fan-out (service.sharding, api.remote) ------------------------------
SHARD_FANOUT_SECONDS = "repro_shard_fanout_seconds"
REMOTE_FANOUT_SECONDS = "repro_remote_fanout_seconds"
REMOTE_FANOUT_ERRORS_TOTAL = "repro_remote_fanout_errors_total"

# -- live store (live.collection, live.wal, live.compactor) --------------------
LIVE_MUTATIONS_TOTAL = "repro_live_mutations_total"
LIVE_FLUSHES_TOTAL = "repro_live_flushes_total"
LIVE_SNAPSHOTS_TOTAL = "repro_live_snapshots_total"
WAL_APPENDS_TOTAL = "repro_wal_appends_total"
WAL_COMMITS_TOTAL = "repro_wal_commits_total"
WAL_COMMIT_BATCH_RECORDS = "repro_wal_commit_batch_records"
COMPACTIONS_TOTAL = "repro_compactions_total"
COMPACTION_SECONDS = "repro_compaction_seconds"

# -- protocol servers (api.server, api.aserver) --------------------------------
SERVER_CONNECTIONS_TOTAL = "repro_server_connections_total"
SERVER_FRAMES_TOTAL = "repro_server_frames_total"
SERVER_BYTES_TOTAL = "repro_server_bytes_total"
SERVER_OVERSIZED_TOTAL = "repro_server_oversized_total"

# -- standing queries (sub.manager) --------------------------------------------
SUB_ACTIVE = "repro_sub_active"
SUB_PUSHES_TOTAL = "repro_sub_pushes_total"
SUB_COALESCED_TOTAL = "repro_sub_coalesced_total"
SUB_OVERFLOWS_TOTAL = "repro_sub_overflows_total"

# -- cluster (cluster.coordinator, api.database routing gauge) -----------------
CLUSTER_ROUTING_VERSION = "repro_cluster_routing_version"
CLUSTER_FAILOVERS_TOTAL = "repro_cluster_failovers_total"
CLUSTER_REPLICATION_LAG = "repro_cluster_replication_lag"
CLUSTER_SHIPPED_RECORDS_TOTAL = "repro_cluster_shipped_records_total"
CLUSTER_RESHARDS_TOTAL = "repro_cluster_reshards_total"
CLUSTER_HEARTBEAT_MISSES_TOTAL = "repro_cluster_heartbeat_misses_total"

__all__ = [
    "ALGORITHM_TOTAL",
    "CACHE_EVICTIONS_TOTAL",
    "CACHE_HITS_TOTAL",
    "CACHE_INVALIDATIONS_TOTAL",
    "CACHE_MISSES_TOTAL",
    "CLUSTER_FAILOVERS_TOTAL",
    "CLUSTER_HEARTBEAT_MISSES_TOTAL",
    "CLUSTER_REPLICATION_LAG",
    "CLUSTER_RESHARDS_TOTAL",
    "CLUSTER_ROUTING_VERSION",
    "CLUSTER_SHIPPED_RECORDS_TOTAL",
    "COMPACTIONS_TOTAL",
    "COMPACTION_SECONDS",
    "ENGINE_REBUILDS_TOTAL",
    "LIVE_FLUSHES_TOTAL",
    "LIVE_MUTATIONS_TOTAL",
    "LIVE_SNAPSHOTS_TOTAL",
    "PLANNER_DECISIONS_TOTAL",
    "PLANNER_SOURCE_TOTAL",
    "REMOTE_FANOUT_ERRORS_TOTAL",
    "REMOTE_FANOUT_SECONDS",
    "REQUEST_SECONDS",
    "SERVER_BYTES_TOTAL",
    "SERVER_CONNECTIONS_TOTAL",
    "SERVER_FRAMES_TOTAL",
    "SERVER_OVERSIZED_TOTAL",
    "SHARD_FANOUT_SECONDS",
    "SUB_ACTIVE",
    "SUB_COALESCED_TOTAL",
    "SUB_OVERFLOWS_TOTAL",
    "SUB_PUSHES_TOTAL",
    "WAL_APPENDS_TOTAL",
    "WAL_COMMITS_TOTAL",
    "WAL_COMMIT_BATCH_RECORDS",
]
