"""RBF — the repro binary format's record framing.

Every persisted binary artifact (WAL, run files, the manifest edit log)
and every binary protocol frame body is a sequence of *records*, each
framed the same way:

.. code-block:: text

    +--------+---------+------+-------+------------+----------+=========+
    | magic  | version | kind | flags | length u32 | crc32    | payload |
    | "RBF1" | u8      | u8   | u16   | of payload | (below)  | bytes   |
    +--------+---------+------+-------+------------+----------+=========+

All integers are little-endian (``RECORD_HEADER``), so numpy can decode
payload columns with ``frombuffer`` and no byte swabbing on the platforms
that matter.  ``flags`` bit 0 (``FLAG_ZLIB``) marks a zlib-compressed
payload; ``length`` always describes the *stored* (possibly compressed)
bytes, so corruption is detected before decompression.  The CRC32 covers
the header bytes *before* the CRC field (magic through length) plus the
stored payload — a bit flip anywhere in the record, including the
``kind`` byte, fails the checksum instead of silently re-typing it.

Two failure modes are deliberately distinct:

* :class:`TruncatedRecordError` — the buffer ends mid-record.  Readers
  of append-only files (WAL, manifest log) treat this at the tail as a
  torn write and drop the partial record, exactly like the JSON WAL's
  torn-line tolerance.
* :class:`CorruptRecordError` — a *complete* record whose magic,
  version, CRC, or compression is wrong.  This is never tolerated, even
  at the tail: a full record with a bad checksum means bit rot, not a
  crash mid-append.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional

from repro.core.errors import ReproError

__all__ = [
    "CodecError",
    "CorruptRecordError",
    "FLAG_ZLIB",
    "HEADER_PREFIX",
    "MAGIC",
    "RBF_VERSION",
    "RECORD_HEADER",
    "TruncatedRecordError",
    "iter_records",
    "pack_record",
    "skip_record",
    "unpack_record",
]

#: Leading bytes of every record; doubles as a file signature.
MAGIC = b"RBF1"

#: Format version stamped into (and checked on) every record.
RBF_VERSION = 1

#: The fixed record header layout: magic, version, kind, flags, stored
#: payload length, CRC32 (of the preceding header bytes + stored payload)
#: — little-endian throughout.
RECORD_HEADER = struct.Struct("<4sBBHII")

#: The CRC-covered header prefix: everything before the CRC field.
HEADER_PREFIX = struct.Struct("<4sBBHI")

_CRC = struct.Struct("<I")

#: ``flags`` bit 0: the stored payload is zlib-compressed.
FLAG_ZLIB = 0x0001

_KNOWN_FLAGS = FLAG_ZLIB


class CodecError(ReproError):
    """Base class for binary-format failures."""


class CorruptRecordError(CodecError):
    """A complete record failed validation (magic, version, CRC, zlib)."""

    def __init__(self, reason: str, *, offset: Optional[int] = None) -> None:
        self.reason = reason
        self.offset = offset
        where = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"corrupt RBF record{where}: {reason}")


class TruncatedRecordError(CorruptRecordError):
    """The buffer ends before the record does — a torn tail, if trailing."""


def pack_record(kind: int, payload: bytes, *, compress: bool = False) -> bytes:
    """Frame ``payload`` as one RBF record of ``kind``.

    ``compress=True`` stores the payload zlib-compressed and sets
    ``FLAG_ZLIB``; the CRC always covers the stored bytes.
    """
    if not 0 <= kind <= 0xFF:
        raise ValueError(f"record kind must fit one byte, got {kind}")
    stored = zlib.compress(payload) if compress else payload
    flags = FLAG_ZLIB if compress else 0
    prefix = HEADER_PREFIX.pack(MAGIC, RBF_VERSION, kind, flags, len(stored))
    crc = zlib.crc32(stored, zlib.crc32(prefix)) & 0xFFFFFFFF
    return prefix + _CRC.pack(crc) + stored


def unpack_record(buffer: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Decode the record starting at ``offset``; returns ``(kind, payload, end)``.

    ``end`` is the offset one past the record, so callers can walk a file
    of concatenated records.  Raises :class:`TruncatedRecordError` when
    the buffer ends mid-record and :class:`CorruptRecordError` for any
    complete-but-invalid record.
    """
    if len(buffer) - offset < RECORD_HEADER.size:
        raise TruncatedRecordError(
            f"{len(buffer) - offset} bytes left, header needs {RECORD_HEADER.size}",
            offset=offset,
        )
    magic, version, kind, flags, length, crc = RECORD_HEADER.unpack_from(buffer, offset)
    if magic != MAGIC:
        raise CorruptRecordError(f"bad magic {magic!r}", offset=offset)
    if version != RBF_VERSION:
        raise CorruptRecordError(f"unsupported RBF version {version}", offset=offset)
    if flags & ~_KNOWN_FLAGS:
        raise CorruptRecordError(f"unknown flags 0x{flags:04x}", offset=offset)
    start = offset + RECORD_HEADER.size
    if len(buffer) - start < length:
        raise TruncatedRecordError(
            f"payload needs {length} bytes, {len(buffer) - start} left", offset=offset
        )
    stored = bytes(buffer[start : start + length])
    prefix = bytes(buffer[offset : offset + HEADER_PREFIX.size])
    if zlib.crc32(stored, zlib.crc32(prefix)) & 0xFFFFFFFF != crc:
        raise CorruptRecordError("CRC32 mismatch", offset=offset)
    if flags & FLAG_ZLIB:
        try:
            payload = zlib.decompress(stored)
        except zlib.error as error:
            raise CorruptRecordError(f"zlib: {error}", offset=offset) from error
    else:
        payload = stored
    return kind, payload, start + length


def skip_record(buffer: bytes, offset: int = 0) -> int:
    """Header-only walk: return the end offset of the record at ``offset``.

    Validates the header fields (magic, version, flags) and that the
    stored payload is fully present, but does *not* CRC-check or
    decompress it — for accounting walks (record counts, tail trims)
    over a file a full decode pass has already validated or is about to.
    Raises exactly like :func:`unpack_record` for header-level damage.
    """
    if len(buffer) - offset < RECORD_HEADER.size:
        raise TruncatedRecordError(
            f"{len(buffer) - offset} bytes left, header needs {RECORD_HEADER.size}",
            offset=offset,
        )
    magic, version, _, flags, length, _ = RECORD_HEADER.unpack_from(buffer, offset)
    if magic != MAGIC:
        raise CorruptRecordError(f"bad magic {magic!r}", offset=offset)
    if version != RBF_VERSION:
        raise CorruptRecordError(f"unsupported RBF version {version}", offset=offset)
    if flags & ~_KNOWN_FLAGS:
        raise CorruptRecordError(f"unknown flags 0x{flags:04x}", offset=offset)
    end = offset + RECORD_HEADER.size + length
    if end > len(buffer):
        raise TruncatedRecordError(
            f"payload needs {length} bytes, {len(buffer) - offset - RECORD_HEADER.size} left",
            offset=offset,
        )
    return end


def iter_records(buffer: bytes) -> Iterator[tuple[int, bytes, int]]:
    """Yield ``(kind, payload, end_offset)`` for each record in ``buffer``.

    Raises exactly like :func:`unpack_record`; callers that tolerate a
    torn tail catch :class:`TruncatedRecordError` around the loop.
    """
    offset = 0
    while offset < len(buffer):
        kind, payload, offset = unpack_record(buffer, offset)
        yield kind, payload, offset
