"""Metric-tree range-search baselines (BK-tree, M-tree, VP-tree).

These wrap the metric index structures of :mod:`repro.metric` behind the same
:class:`RankingSearchAlgorithm` interface as the inverted-index algorithms so
the experiment harness can compare both indexing paradigms directly
(Figures 5 and 6 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.core.distances import footrule_topk_raw
from repro.core.ranking import Ranking, RankingSet
from repro.core.result import SearchResult
from repro.core.stats import PhaseTimer
from repro.metric.bktree import BKTree
from repro.metric.mtree import MTree
from repro.metric.vptree import VPTree
from repro.algorithms.base import RankingSearchAlgorithm


class BKTreeSearch(RankingSearchAlgorithm):
    """Range search over a BK-tree built on the raw Footrule distance."""

    name = "BK-tree"

    def __init__(self, rankings: RankingSet, tree: Optional[BKTree] = None) -> None:
        super().__init__(rankings)
        self._tree = (
            tree if tree is not None else BKTree.build(rankings.rankings, footrule_topk_raw)
        )

    @classmethod
    def build(cls, rankings: RankingSet) -> "BKTreeSearch":
        """Build the BK-tree over the full collection."""
        return cls(rankings)

    @property
    def tree(self) -> BKTree:
        """The underlying BK-tree."""
        return self._tree

    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        theta_raw = self.theta_raw(theta)
        with PhaseTimer(result.stats, "validate_seconds"):
            for ranking, separation in self._tree.range_search(query, theta_raw, stats=result.stats):
                self._add_raw_match(result, ranking, separation)


class MTreeSearch(RankingSearchAlgorithm):
    """Range search over an M-tree built on the raw Footrule distance."""

    name = "M-tree"

    def __init__(
        self,
        rankings: RankingSet,
        tree: Optional[MTree] = None,
        capacity: int = 16,
        promotion: str = "max_spread",
    ) -> None:
        super().__init__(rankings)
        self._tree = (
            tree
            if tree is not None
            else MTree.build(
                rankings.rankings, footrule_topk_raw, capacity=capacity, promotion=promotion
            )
        )

    @classmethod
    def build(cls, rankings: RankingSet, capacity: int = 16) -> "MTreeSearch":
        """Build the M-tree over the full collection."""
        return cls(rankings, capacity=capacity)

    @property
    def tree(self) -> MTree:
        """The underlying M-tree."""
        return self._tree

    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        theta_raw = self.theta_raw(theta)
        with PhaseTimer(result.stats, "validate_seconds"):
            for ranking, separation in self._tree.range_search(query, theta_raw, stats=result.stats):
                self._add_raw_match(result, ranking, separation)


class VPTreeSearch(RankingSearchAlgorithm):
    """Range search over a VP-tree built on the raw Footrule distance."""

    name = "VP-tree"

    def __init__(
        self, rankings: RankingSet, tree: Optional[VPTree] = None, leaf_size: int = 8
    ) -> None:
        super().__init__(rankings)
        self._tree = (
            tree
            if tree is not None
            else VPTree.build(rankings.rankings, footrule_topk_raw, leaf_size=leaf_size)
        )

    @classmethod
    def build(cls, rankings: RankingSet, leaf_size: int = 8) -> "VPTreeSearch":
        """Build the VP-tree over the full collection."""
        return cls(rankings, leaf_size=leaf_size)

    @property
    def tree(self) -> VPTree:
        """The underlying VP-tree."""
        return self._tree

    def _search(self, query: Ranking, theta: float, result: SearchResult) -> None:
        theta_raw = self.theta_raw(theta)
        with PhaseTimer(result.stats, "validate_seconds"):
            for ranking, separation in self._tree.range_search(query, theta_raw, stats=result.stats):
                self._add_raw_match(result, ranking, separation)
