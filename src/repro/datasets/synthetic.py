"""Synthetic ranking generator with Zipf item popularity and topic clusters.

The generator produces collections whose two decisive properties can be
controlled directly:

* **Item-popularity skew** — items are drawn from a Zipf(s) distribution over
  a domain of ``domain_size`` items, so the document-frequency histogram of
  the generated collection follows (approximately) the same law the paper
  estimates from its datasets (s = 0.87 for NYT, s = 0.53 for Yago).
* **Near-duplicate clusters** — rankings are generated in clusters: a seed
  ranking is sampled, then ``cluster_size - 1`` perturbed copies are derived
  from it by swapping adjacent positions and substituting items.  Small
  perturbation counts produce the chunks of near-identical rankings that make
  the coarse index effective.
* **Topics (optional)** — when ``topic_count`` is positive, rankings are
  first assigned to a topic and draw their items from that topic's item pool.
  Rankings of the same topic share several items at differing ranks, which
  puts probability mass at *medium* pairwise distances; without topics the
  distance distribution is bimodal (near-duplicates versus unrelated pairs),
  which real query-result collections are not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ranking import RankingSet


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of a synthetic ranking collection.

    Attributes
    ----------
    n:
        Number of rankings to generate.
    k:
        Ranking length.
    domain_size:
        Number of distinct items the rankings draw from.
    zipf_s:
        Skew of the item-popularity Zipf law (0 = uniform).
    cluster_size:
        Average number of rankings per near-duplicate cluster (1 = no
        clustering).
    swap_probability:
        Per-position probability of swapping adjacent items when deriving a
        cluster member from its seed.
    substitution_probability:
        Per-position probability of replacing an item with a fresh draw when
        deriving a cluster member.
    topic_count:
        Number of topics (superclusters).  ``0`` disables the topic level and
        every ranking samples directly from the global domain.
    topic_pool_size:
        Number of distinct items in each topic's pool (must be at least
        ``k``); only used when ``topic_count`` is positive.
    seed:
        Base random seed; the same spec always generates the same collection.
    """

    n: int = 5000
    k: int = 10
    domain_size: int = 20000
    zipf_s: float = 0.8
    cluster_size: int = 5
    swap_probability: float = 0.3
    substitution_probability: float = 0.1
    topic_count: int = 0
    topic_pool_size: int = 40
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.domain_size < self.k:
            raise ValueError("domain_size must be at least k")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be at least 1")
        if not 0.0 <= self.swap_probability <= 1.0:
            raise ValueError("swap_probability must lie in [0, 1]")
        if not 0.0 <= self.substitution_probability <= 1.0:
            raise ValueError("substitution_probability must lie in [0, 1]")
        if self.zipf_s < 0.0:
            raise ValueError("zipf_s must be non-negative")
        if self.topic_count < 0:
            raise ValueError("topic_count must be non-negative")
        if self.topic_count > 0 and self.topic_pool_size < self.k:
            raise ValueError("topic_pool_size must be at least k")


def _zipf_weights(domain_size: int, s: float) -> np.ndarray:
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-s) if s > 0 else np.ones_like(ranks)
    return weights / weights.sum()


def _sample_ranking(rng: np.random.Generator, weights: np.ndarray, k: int) -> list[int]:
    """Draw k distinct items according to the popularity weights."""
    domain_size = len(weights)
    if k * 4 >= domain_size:
        items = rng.choice(domain_size, size=k, replace=False, p=weights)
        return [int(item) for item in items]
    # rejection sampling is much faster than choice(..., replace=False) for
    # large domains: draw a few times more than needed and keep the distinct ones
    chosen: list[int] = []
    seen: set[int] = set()
    while len(chosen) < k:
        draws = rng.choice(domain_size, size=4 * k, replace=True, p=weights)
        for item in draws:
            value = int(item)
            if value not in seen:
                seen.add(value)
                chosen.append(value)
                if len(chosen) == k:
                    break
    return chosen


def _perturb_ranking(
    rng: np.random.Generator,
    seed_ranking: list[int],
    weights: np.ndarray,
    swap_probability: float,
    substitution_probability: float,
    substitution_domain: tuple[np.ndarray, np.ndarray] | None = None,
) -> list[int]:
    """Derive a near-duplicate of ``seed_ranking`` by swaps and substitutions.

    ``substitution_domain`` optionally restricts replacement items to a topic
    pool (items, weights); otherwise replacements come from the full domain.
    """
    items = list(seed_ranking)
    k = len(items)
    # adjacent swaps keep the overlap intact but move ranks slightly
    for position in range(k - 1):
        if rng.random() < swap_probability:
            items[position], items[position + 1] = items[position + 1], items[position]

    def draw_replacement() -> int:
        if substitution_domain is not None:
            pool, pool_weights = substitution_domain
            return int(rng.choice(pool, p=pool_weights))
        return int(rng.choice(len(weights), p=weights))

    # substitutions exchange a few items for fresh ones
    present = set(items)
    for position in range(k):
        if rng.random() < substitution_probability:
            replacement = draw_replacement()
            attempts = 0
            while replacement in present and attempts < 10:
                replacement = draw_replacement()
                attempts += 1
            if replacement not in present:
                present.discard(items[position])
                items[position] = replacement
                present.add(replacement)
    return items


def _build_topic_pools(
    rng: np.random.Generator, weights: np.ndarray, spec: DatasetSpec
) -> list[np.ndarray]:
    """Draw one item pool per topic; pools may overlap in popular items.

    Each pool is a weighted sample (without replacement within the pool) from
    the global Zipf distribution, so globally popular items show up in many
    pools — exactly how popular documents appear in the result lists of many
    unrelated queries.
    """
    pools: list[np.ndarray] = []
    for _ in range(spec.topic_count):
        pool_items = _sample_ranking(rng, weights, spec.topic_pool_size)
        pools.append(np.asarray(pool_items))
    return pools


def generate_clustered_rankings(spec: DatasetSpec) -> RankingSet:
    """Generate a synthetic ranking collection according to ``spec``.

    Examples
    --------
    >>> spec = DatasetSpec(n=100, k=5, domain_size=500, seed=1)
    >>> rankings = generate_clustered_rankings(spec)
    >>> len(rankings), rankings.k
    (100, 5)
    """
    rng = np.random.default_rng(spec.seed)
    weights = _zipf_weights(spec.domain_size, spec.zipf_s)
    topic_pools = _build_topic_pools(rng, weights, spec) if spec.topic_count > 0 else []
    if topic_pools:
        # topics themselves follow a Zipf popularity (some topics are queried
        # far more often than others)
        topic_weights = _zipf_weights(len(topic_pools), spec.zipf_s)
    rankings = RankingSet(k=spec.k)
    while len(rankings) < spec.n:
        if topic_pools:
            topic = int(rng.choice(len(topic_pools), p=topic_weights))
            pool = topic_pools[topic]
            pool_weights = weights[pool] / weights[pool].sum()
            # weighted sampling within the pool: a topic's most popular items
            # appear in almost every ranking of that topic
            positions = rng.choice(len(pool), size=spec.k, replace=False, p=pool_weights)
            seed_ranking = [int(pool[position]) for position in positions]
            substitution_domain = (pool, pool_weights)
        else:
            seed_ranking = _sample_ranking(rng, weights, spec.k)
            substitution_domain = None
        rankings.add(seed_ranking)
        members = min(spec.cluster_size - 1, spec.n - len(rankings))
        for member in range(members):
            # graded perturbation strength: the first copies are near-exact
            # duplicates, later copies drift further from the seed, so
            # within-cluster distances form a spectrum instead of a single
            # narrow mode (as observed in real query-result collections)
            strength = (member + 1) / max(1, spec.cluster_size - 1)
            derived = _perturb_ranking(
                rng,
                seed_ranking,
                weights,
                min(1.0, spec.swap_probability * (0.5 + strength)),
                min(1.0, spec.substitution_probability * 2.0 * strength),
                substitution_domain=substitution_domain,
            )
            rankings.add(derived)
    return rankings
