"""Standing queries over the wire: equivalence, safety, teardown.

The headline contract: a subscription's snapshot plus its accumulated
deltas is **byte-identical** (``result_bytes``) to re-running the query
after every single commit — across inserts, upserts, deletes, a memtable
flush, and a compaction; on the threaded and the asyncio transport; with
JSON and RBF binary delta frames; from the blocking and the asyncio
client.

The safety contracts around it: subscribing over protocol v1 or before
the v2 hello fails with a typed ``unsupported_protocol`` envelope on a
connection that stays healthy; unsubscribe ends the stream cleanly and
is idempotent; a dropped connection tears down every subscription it
registered.
"""

from __future__ import annotations

import asyncio
import socket
import time
from contextlib import contextmanager

import pytest

from repro.api import (
    AsyncClient,
    AsyncDatabaseServer,
    Client,
    Database,
    DatabaseServer,
    Response,
    read_frame,
    request_envelope,
    write_frame,
)
from repro.core.ranking import RankingSet
from repro.datasets.nyt import nyt_like_dataset
from repro.datasets.queries import sample_queries

THETA = 0.25
K = 8


@pytest.fixture(scope="module")
def rankings() -> RankingSet:
    return nyt_like_dataset(n=120, k=K, seed=23)


def _make_database(rankings) -> Database:
    database = Database()
    live = database.create_live("updates")
    for ranking in list(rankings)[:50]:
        live.insert(ranking.items)
    return database


@contextmanager
def _served(database, transport: str):
    server_cls = DatabaseServer if transport == "threaded" else AsyncDatabaseServer
    with server_cls(database, port=0) as server:
        yield server.address


def _result_bytes(response) -> bytes:
    return Response(ok=True, matches=tuple(response.matches or ())).result_bytes()


def _wait_equivalent(subscription, session, query, *, timeout: float = 15.0) -> None:
    """Consume deltas until the handle equals re-running the query now."""
    expected = _result_bytes(session.range_query(query, THETA, collection="updates"))
    deadline = time.monotonic() + timeout
    while subscription.result_bytes() != expected:
        assert time.monotonic() < deadline, "deltas never converged to the fresh answer"
        try:
            subscription.get(timeout=0.5)
        except TimeoutError:
            pass
    assert subscription.result_bytes() == expected


def _churn(client, session, subscription, query, rankings) -> None:
    """Mutate the collection every which way, checking equivalence per commit."""
    perturbed = list(query)
    perturbed[0], perturbed[-1] = perturbed[-1], perturbed[0]
    keys = []
    for items in (list(query), perturbed, list(rankings)[60].items):
        keys.append(client.insert(items, collection="updates"))
        _wait_equivalent(subscription, session, query)
    client.upsert(keys[1], list(query), collection="updates")
    _wait_equivalent(subscription, session, query)
    client.delete(keys[0], collection="updates")
    _wait_equivalent(subscription, session, query)
    client.flush("updates")
    _wait_equivalent(subscription, session, query)
    for ranking in list(rankings)[61:66]:
        keys.append(client.insert(ranking.items, collection="updates"))
        _wait_equivalent(subscription, session, query)
    client.compact("updates")
    _wait_equivalent(subscription, session, query)
    client.delete(keys[-1], collection="updates")
    _wait_equivalent(subscription, session, query)


class TestEquivalence:
    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    @pytest.mark.parametrize("wire_format", ["json", "binary"])
    def test_snapshot_plus_deltas_equals_rerun(self, rankings, transport, wire_format):
        database = _make_database(rankings)
        query = sample_queries(rankings, 1, seed=5)[0].items
        session = database.session()
        try:
            with _served(database, transport) as address:
                with Client(*address, wire_format=wire_format) as client:
                    assert client.wire_format == wire_format  # negotiated
                    subscription = client.subscribe(
                        query, collection="updates", theta=THETA
                    )
                    local = session.range_query(query, THETA, collection="updates")
                    assert subscription.result_bytes() == _result_bytes(local)
                    _churn(client, session, subscription, query, rankings)
                    subscription.unsubscribe()
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_knn_subscription_tracks_the_neighbourhood(self, rankings, transport):
        database = _make_database(rankings)
        query = sample_queries(rankings, 1, seed=7)[0].items
        session = database.session()
        try:
            with _served(database, transport) as address:
                with Client(*address) as client:
                    subscription = client.subscribe(
                        query, collection="updates", mode="knn", k=5
                    )
                    local = session.knn(query, 5, collection="updates")
                    assert subscription.result_bytes() == _result_bytes(local)
                    # a perfect-match insert must displace the 5th neighbour
                    client.insert(list(query), collection="updates")
                    deadline = time.monotonic() + 15.0
                    expected = _result_bytes(
                        session.knn(query, 5, collection="updates")
                    )
                    while subscription.result_bytes() != expected:
                        assert time.monotonic() < deadline
                        try:
                            subscription.get(timeout=0.5)
                        except TimeoutError:
                            pass
                    subscription.unsubscribe()
        finally:
            database.close()

    def test_async_client_subscription_equivalence(self, rankings):
        database = _make_database(rankings)
        query = sample_queries(rankings, 1, seed=5)[0].items
        session = database.session()

        async def scenario(address):
            async with await AsyncClient.connect(*address) as client:
                subscription = await client.subscribe(
                    query, collection="updates", theta=THETA
                )
                local = session.range_query(query, THETA, collection="updates")
                assert subscription.result_bytes() == _result_bytes(local)
                key = await client.insert(list(query), collection="updates")
                expected = _result_bytes(
                    session.range_query(query, THETA, collection="updates")
                )
                deadline = time.monotonic() + 15.0
                while subscription.result_bytes() != expected:
                    assert time.monotonic() < deadline
                    try:
                        await subscription.get(timeout=0.5)
                    except TimeoutError:
                        pass
                delivered = []
                # deleting the perfect match guarantees exactly one more delta
                await client.delete(key, collection="updates")
                # async iteration is the same stream: one more commit, and
                # the loop ends when unsubscribe's reply lands
                async for delta in subscription:
                    delivered.append(delta)
                    await subscription.unsubscribe()
                assert delivered  # the delete produced a delta
                final = _result_bytes(
                    session.range_query(query, THETA, collection="updates")
                )
                assert subscription.result_bytes() == final

        try:
            with AsyncDatabaseServer(database, port=0) as server:
                asyncio.run(scenario(server.address))
        finally:
            database.close()


class TestProtocolSafety:
    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_v1_subscribe_gets_a_typed_error_on_a_healthy_connection(
        self, rankings, transport
    ):
        database = _make_database(rankings)
        try:
            with _served(database, transport) as address:
                with Client(*address, protocol=1) as client:
                    response = client.execute(
                        {
                            "type": "subscribe",
                            "collection": "updates",
                            "mode": "range",
                            "items": [1, 2, 3, 4],
                            "theta": 0.2,
                        }
                    )
                    assert not response.ok
                    assert response.error.code == "unsupported_protocol"
                    # the connection survives: a follow-up request answers
                    assert client.execute({"type": "admin", "action": "ping"}).ok
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_pre_hello_v2_subscribe_is_refused_then_hello_still_works(
        self, rankings, transport
    ):
        database = _make_database(rankings)
        try:
            with _served(database, transport) as address:
                with socket.create_connection(address, timeout=10.0) as raw:
                    stream = raw.makefile("rwb")
                    envelope = request_envelope(
                        1,
                        {
                            "type": "subscribe",
                            "collection": "updates",
                            "mode": "range",
                            "items": [1, 2, 3, 4],
                            "theta": 0.2,
                        },
                    )
                    write_frame(stream, envelope)
                    reply = read_frame(stream)
                    assert reply["id"] == 1
                    assert reply["body"]["ok"] is False
                    assert reply["body"]["error"]["code"] == "unsupported_protocol"
                    assert "hello" in reply["body"]["error"]["message"]
                    # same socket, proper handshake: the connection is healthy
                    write_frame(stream, {"id": 2, "kind": "hello", "body": {"version": 2}})
                    hello = read_frame(stream)
                    assert hello["id"] == 2 and hello["body"]["ok"] is True
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_v2_client_pinned_to_v1_refuses_locally(self, rankings, transport):
        database = _make_database(rankings)
        try:
            with _served(database, transport) as address:
                with Client(*address, protocol=1) as client:
                    with pytest.raises(ConnectionError, match="protocol v2"):
                        client.subscribe([1, 2, 3, 4], collection="updates", theta=0.2)
        finally:
            database.close()

    def test_in_process_session_refuses_subscriptions(self, rankings):
        database = _make_database(rankings)
        try:
            session = database.session()
            response = session.execute(
                {
                    "type": "subscribe",
                    "collection": "updates",
                    "mode": "range",
                    "items": [1, 2, 3, 4],
                    "theta": 0.2,
                }
            )
            assert not response.ok
            assert response.error.code == "unsupported_protocol"
        finally:
            database.close()


class TestLifecycle:
    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_unsubscribe_ends_the_stream_and_is_idempotent(self, rankings, transport):
        database = _make_database(rankings)
        query = sample_queries(rankings, 1, seed=5)[0].items
        try:
            with _served(database, transport) as address:
                with Client(*address) as client:
                    subscription = client.subscribe(
                        query, collection="updates", theta=THETA
                    )
                    assert database.subscriptions.active == 1
                    subscription.unsubscribe()
                    assert subscription.get(timeout=5.0) is None  # clean end
                    assert subscription.ended
                    subscription.unsubscribe()  # second call is a no-op
                    deadline = time.monotonic() + 10.0
                    while database.subscriptions.active != 0:
                        assert time.monotonic() < deadline
                        time.sleep(0.02)
                    # the connection still serves ordinary requests
                    assert client.ping()
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_unknown_unsubscribe_is_invalid_request(self, rankings, transport):
        database = _make_database(rankings)
        try:
            with _served(database, transport) as address:
                with Client(*address) as client:
                    response = client.execute(
                        {"type": "unsubscribe", "collection": "updates",
                         "subscription": 99}
                    )
                    assert not response.ok
                    assert response.error.code == "invalid_request"
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_disconnect_tears_down_every_subscription(self, rankings, transport):
        database = _make_database(rankings)
        query = sample_queries(rankings, 1, seed=5)[0].items
        try:
            with _served(database, transport) as address:
                client = Client(*address)
                client.subscribe(query, collection="updates", theta=THETA)
                client.subscribe(query, collection="updates", mode="knn", k=3)
                assert database.subscriptions.active == 2
                client.close()  # drops the socket with both subscriptions live
                deadline = time.monotonic() + 10.0
                while database.subscriptions.active != 0:
                    assert time.monotonic() < deadline, "teardown never happened"
                    time.sleep(0.02)
        finally:
            database.close()

    @pytest.mark.parametrize("transport", ["threaded", "asyncio"])
    def test_subscribing_to_a_static_collection_is_refused(self, rankings, transport):
        database = _make_database(rankings)
        database.create_static("news", rankings)
        try:
            with _served(database, transport) as address:
                with Client(*address) as client:
                    with pytest.raises(Exception, match="live"):
                        client.subscribe([1, 2, 3, 4], collection="news", theta=0.2)
                    assert database.subscriptions.active == 0
        finally:
            database.close()
