"""Registry mapping the paper's algorithm names to constructors.

The experiment harness, the CLI, and the benchmarks all instantiate
algorithms through this registry so a single string (exactly the name used in
the paper's figures) selects the implementation and its default parameters.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.ranking import RankingSet
from repro.algorithms.adaptsearch import AdaptSearch
from repro.algorithms.base import RankingSearchAlgorithm
from repro.algorithms.blocked_prune import BlockedPrune, BlockedPruneDrop
from repro.algorithms.coarse import CoarseDropSearch, CoarseSearch
from repro.algorithms.filter_validate import FilterValidate
from repro.algorithms.fv_drop import FilterValidateDrop
from repro.algorithms.listmerge import ListMerge
from repro.algorithms.metric_search import BKTreeSearch, MTreeSearch, VPTreeSearch
from repro.algorithms.minimal_fv import MinimalFilterValidate

AlgorithmFactory = Callable[..., RankingSearchAlgorithm]

_REGISTRY: dict[str, AlgorithmFactory] = {
    FilterValidate.name: FilterValidate.build,
    FilterValidateDrop.name: FilterValidateDrop.build,
    ListMerge.name: ListMerge.build,
    BlockedPrune.name: BlockedPrune.build,
    BlockedPruneDrop.name: BlockedPruneDrop.build,
    CoarseSearch.name: CoarseSearch.build,
    CoarseDropSearch.name: CoarseDropSearch.build,
    AdaptSearch.name: AdaptSearch.build,
    MinimalFilterValidate.name: MinimalFilterValidate.build,
    BKTreeSearch.name: BKTreeSearch.build,
    MTreeSearch.name: MTreeSearch.build,
    VPTreeSearch.name: VPTreeSearch.build,
}

#: Names of all registered algorithms, in the order the paper lists them.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: The inverted-index-based subset compared in Figures 8 and 9.
COMPARISON_ALGORITHMS: tuple[str, ...] = (
    FilterValidate.name,
    ListMerge.name,
    AdaptSearch.name,
    MinimalFilterValidate.name,
    CoarseSearch.name,
    CoarseDropSearch.name,
    BlockedPrune.name,
    BlockedPruneDrop.name,
    FilterValidateDrop.name,
)

#: Default candidate set of the service-layer planner (``repro.service``):
#: one representative per index family that builds per shard without
#: per-query offline work (Minimal F&V needs its oracle lists materialised
#: per query, so it is only usable through an explicit override).
SERVICE_ALGORITHMS: tuple[str, ...] = (
    FilterValidate.name,
    ListMerge.name,
    AdaptSearch.name,
    CoarseDropSearch.name,
    BKTreeSearch.name,
)

#: Algorithms the live-update store (``repro.live``) may use as segment and
#: base indices: built per immutable run with no per-query offline step, the
#: same constraint the service planner imposes.
LIVE_ALGORITHMS: tuple[str, ...] = SERVICE_ALGORITHMS

#: The subset whose distance-function calls are reported in Figure 10.
DFC_ALGORITHMS: tuple[str, ...] = (
    FilterValidate.name,
    FilterValidateDrop.name,
    BlockedPruneDrop.name,
    CoarseSearch.name,
    CoarseDropSearch.name,
    MinimalFilterValidate.name,
)


def available_algorithms() -> list[str]:
    """All registered algorithm names."""
    return list(_REGISTRY)


def make_algorithm(name: str, rankings: RankingSet, **kwargs) -> RankingSearchAlgorithm:
    """Instantiate the algorithm registered under ``name`` over ``rankings``.

    Extra keyword arguments are forwarded to the algorithm's ``build``
    classmethod (for example ``theta_c`` for the coarse variants).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; available: {known}") from None
    return factory(rankings, **kwargs)


def register_algorithm(name: str, factory: AlgorithmFactory, overwrite: bool = False) -> None:
    """Register a custom algorithm factory (used by extensions and tests)."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = factory


def algorithms_for_names(names: Iterable[str], rankings: RankingSet, **kwargs) -> list[RankingSearchAlgorithm]:
    """Instantiate several algorithms at once (shared keyword arguments)."""
    return [make_algorithm(name, rankings, **kwargs) for name in names]
