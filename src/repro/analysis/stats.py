"""Dataset statistics feeding the cost model.

The cost model of Section 5 is "assumption-lean": it only needs the empirical
cumulative distribution of pairwise distances, the Zipf skew of item
popularity, and the collection parameters (n, k, v).  This module estimates
all of them from a ranking collection:

* :class:`EmpiricalDistanceDistribution` — the pairwise-distance CDF
  ``P[X <= x]`` estimated from a random sample of ranking pairs.
* :func:`estimate_zipf_skew` — a least-squares fit of the Zipf exponent to
  the item document-frequency histogram (log-log regression).
* :func:`estimate_intrinsic_dimensionality` — the Chavez et al. (2001)
  measure ``mu^2 / (2 * sigma^2)`` of the pairwise-distance distribution,
  which the paper reports as roughly 13 for both datasets.
* :func:`cost_model_inputs_for` — a convenience constructor assembling a
  :class:`repro.core.cost_model.CostModelInputs` from a collection plus
  calibrated unit costs.
"""

from __future__ import annotations

import bisect
import random
from typing import Optional

import numpy as np

from repro.core.cost_model import CostModelInputs, MergeCost
from repro.core.distances import footrule_topk, footrule_topk_raw
from repro.core.errors import EmptyDatasetError
from repro.core.ranking import RankingSet


class EmpiricalDistanceDistribution:
    """Empirical CDF of pairwise (normalised) Footrule distances.

    Parameters
    ----------
    rankings:
        The collection to sample from.
    sample_pairs:
        Number of random ranking pairs used to estimate the distribution.
    seed:
        Random seed for reproducibility.
    """

    def __init__(self, rankings: RankingSet, sample_pairs: int = 20000, seed: int = 11) -> None:
        if len(rankings) < 2:
            raise EmptyDatasetError("need at least two rankings to estimate pairwise distances")
        if sample_pairs <= 0:
            raise ValueError(f"sample_pairs must be positive, got {sample_pairs}")
        rng = random.Random(seed)
        n = len(rankings)
        distances: list[float] = []
        for _ in range(sample_pairs):
            left = rng.randrange(n)
            right = rng.randrange(n - 1)
            if right >= left:
                right += 1
            distances.append(footrule_topk(rankings[left], rankings[right]))
        distances.sort()
        self._distances = distances

    def cdf(self, x: float) -> float:
        """``P[X <= x]`` for a normalised distance ``x``."""
        if x < 0.0:
            return 0.0
        if x >= 1.0:
            return 1.0
        position = bisect.bisect_right(self._distances, x)
        return position / len(self._distances)

    __call__ = cdf

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the sampled pairwise distances."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        position = min(len(self._distances) - 1, max(0, int(q * len(self._distances))))
        return self._distances[position]

    def mean(self) -> float:
        """Mean sampled pairwise distance."""
        return float(np.mean(self._distances))

    def std(self) -> float:
        """Standard deviation of the sampled pairwise distances."""
        return float(np.std(self._distances))

    def __len__(self) -> int:
        return len(self._distances)


def estimate_zipf_skew(rankings: RankingSet, max_items: Optional[int] = None) -> float:
    """Estimate the Zipf exponent of item popularity by log-log regression.

    Items are sorted by decreasing document frequency; the slope of
    ``log(frequency)`` against ``log(rank)`` over the most frequent
    ``max_items`` items (all by default) gives ``-s``.
    """
    frequencies = sorted(rankings.item_frequencies().values(), reverse=True)
    if not frequencies:
        raise EmptyDatasetError("cannot estimate Zipf skew of an empty collection")
    if max_items is not None:
        frequencies = frequencies[:max_items]
    if len(frequencies) < 2:
        return 0.0
    ranks = np.arange(1, len(frequencies) + 1, dtype=np.float64)
    counts = np.asarray(frequencies, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), deg=1)
    return max(0.0, float(-slope))


def estimate_intrinsic_dimensionality(
    rankings: RankingSet, sample_pairs: int = 5000, seed: int = 11
) -> float:
    """Intrinsic dimensionality ``mu^2 / (2 sigma^2)`` of the distance distribution.

    Chavez, Navarro, Baeza-Yates, Marroquin (2001) use this measure to explain
    why balanced metric trees degrade in "high-dimensional" metric spaces; the
    paper reports a value of roughly 13 for both of its datasets.
    """
    distribution = EmpiricalDistanceDistribution(rankings, sample_pairs=sample_pairs, seed=seed)
    sigma = distribution.std()
    if sigma == 0.0:
        return float("inf")
    mu = distribution.mean()
    return (mu * mu) / (2.0 * sigma * sigma)


def cost_model_inputs_for(
    rankings: RankingSet,
    cost_footrule: float = 1.0,
    cost_merge: Optional[MergeCost] = None,
    sample_pairs: int = 20000,
    seed: int = 11,
) -> CostModelInputs:
    """Assemble the cost-model inputs for a ranking collection.

    ``cost_footrule`` and ``cost_merge`` default to abstract units (one unit
    per Footrule call, one unit per merged posting); pass the values measured
    by :func:`repro.analysis.calibration.calibrate_costs` to obtain estimates
    in seconds.
    """
    distribution = EmpiricalDistanceDistribution(rankings, sample_pairs=sample_pairs, seed=seed)
    merge_cost: MergeCost = cost_merge if cost_merge is not None else (lambda k, size: float(size))
    return CostModelInputs(
        n=len(rankings),
        k=rankings.k,
        v=len(rankings.item_domain()),
        zipf_s=estimate_zipf_skew(rankings),
        distance_cdf=distribution.cdf,
        cost_footrule=cost_footrule,
        cost_merge=merge_cost,
    )


def distance_histogram(rankings: RankingSet, sample_pairs: int = 5000, bins: int = 20, seed: int = 11):
    """Histogram (bin edges, counts) of sampled pairwise raw distances.

    Provided for exploratory analysis and the documentation notebooks; raw
    distances expose the discrete structure that the normalised CDF smooths
    over.
    """
    rng = random.Random(seed)
    n = len(rankings)
    if n < 2:
        raise EmptyDatasetError("need at least two rankings")
    raw = []
    for _ in range(sample_pairs):
        left = rng.randrange(n)
        right = rng.randrange(n - 1)
        if right >= left:
            right += 1
        raw.append(footrule_topk_raw(rankings[left], rankings[right]))
    counts, edges = np.histogram(raw, bins=bins)
    return edges, counts
