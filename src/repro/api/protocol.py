"""Length-prefixed JSON framing and the protocol v2 envelope.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (the canonical encoding from
:func:`repro.api.responses.canonical_json`: sorted keys, no whitespace)::

    +----------------+----------------------------------+
    | length  !I (4) | payload  UTF-8 JSON (length)     |
    +----------------+----------------------------------+

Both sides enforce ``max_frame_bytes``; an oversized or torn frame raises
:class:`FrameError` subclasses, which the server answers with a
``protocol`` error envelope before closing the connection (after refusing
a frame the stream cannot be resynchronised).  A clean EOF *between*
frames reads as ``None`` — that is how a client hangs up.

A frame whose length header has the top bit set
(:data:`BINARY_FRAME_FLAG`) carries an RBF binary envelope
(:mod:`repro.codec.wire`) instead of JSON: the remaining 31 bits are the
body length.  Binary framing is negotiated at ``hello`` — the server
advertises ``formats`` and a client only sends binary frames after seeing
``"binary"`` there — and is decided per frame, so JSON and binary frames
interleave freely on one connection (a shape the binary envelope cannot
express simply falls back to JSON).

Two payload shapes travel inside frames:

* **v1** (PR 4): the bare request payload, ``{"type": "range", ...}``,
  answered by the bare response envelope ``{"ok": true, ...}``.  One
  request is in flight per connection; replies arrive in send order.
* **v2**: a uniform envelope carrying a client-assigned correlation id and
  the request kind, with the request fields nested under ``body``::

      request   {"id": 7, "kind": "range", "body": {"collection": ..., ...}}
      response  {"id": 7, "body": {"ok": true, ...}}

  A request envelope may additionally carry an optional ``trace`` field —
  ``true`` to request tracing with a server-generated trace id, or a
  non-empty string to propagate an existing id (what the remote shard
  executor sends so shard-server spans correlate with the coordinator's).
  Traced responses carry the span tree as a ``trace`` block *inside* the
  response payload (see :mod:`repro.obs.tracing`); ``trace`` exists only
  on the v2 envelope, so a client that fell back to v1 framing silently
  drops the option rather than sending a field v1 validation would
  reject.

  Because every response echoes its request's ``id``, any number of
  requests may be in flight on one connection (pipelining) and servers may
  answer them as they complete (multiplexing).  A connection opens with a
  ``hello`` handshake (:func:`hello_payload`), which the server answers
  with its supported versions and frame limit; a v1 server answers it with
  an ``invalid_request`` error envelope instead, which is how a v2 client
  detects it must fall back to v1 framing.  Servers treat the two shapes
  per frame — a v1 client needs no handshake at all.

:func:`classify_frame` is the single decision point both servers (threaded
and asyncio) use to tell the shapes apart and validate the envelope.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Optional

from repro.core.errors import ReproError
from repro.api.responses import canonical_json

#: Frame header: one 4-byte big-endian unsigned payload length.
HEADER = struct.Struct("!I")

#: Top bit of the length header: the frame body is an RBF binary envelope.
BINARY_FRAME_FLAG = 0x80000000

#: The low 31 bits of the length header carry the actual body length.
FRAME_LENGTH_MASK = 0x7FFFFFFF

#: Frame body encodings this build can speak (advertised at ``hello``).
WIRE_FORMATS = ("json", "binary")

#: Default upper bound on one frame's payload (requests *and* responses).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The newest protocol version this build speaks.
PROTOCOL_VERSION = 2

#: Every protocol version this build can serve.
SUPPORTED_VERSIONS = (1, 2)

#: Envelope ``kind`` of the version handshake (not a request type).
HELLO_KIND = "hello"

#: Envelope ``kind`` of an unsolicited server push (standing-query deltas).
#: Push frames reuse the subscription's correlation id — the ``kind`` field
#: is what tells them apart from ordinary replies, which never carry one.
PUSH_KIND = "push"

#: Longest propagated trace id the envelope accepts (matches
#: :data:`repro.obs.tracing.MAX_TRACE_ID_LENGTH`).
MAX_TRACE_ID_BYTES = 64


class FrameError(ReproError):
    """A wire frame violated the protocol (torn, oversized, or not JSON)."""


class FrameTooLargeError(FrameError):
    """A frame announced a payload larger than the negotiated maximum."""

    def __init__(self, announced: int, maximum: int) -> None:
        super().__init__(f"frame of {announced} bytes exceeds the {maximum}-byte maximum")
        self.announced = announced
        self.maximum = maximum


def encode_frame(payload: dict, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload into a complete frame (header + body)."""
    body = canonical_json(payload)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(len(body), max_frame_bytes)
    return HEADER.pack(len(body)) + body


def write_frame(
    stream: BinaryIO, payload: dict, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> None:
    """Write one frame and flush it."""
    stream.write(encode_frame(payload, max_frame_bytes))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise FrameError(
                    f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_frame_body(body: bytes) -> dict:
    """Parse and validate one frame's payload bytes (shared by both readers)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError(f"frame payload must be a JSON object, got {type(payload).__name__}")
    return payload


def read_frame(
    stream: BinaryIO, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one JSON frame's payload; ``None`` on clean EOF between frames.

    Raises :class:`FrameError` on a binary frame — callers that negotiate
    binary framing use :func:`read_frame_any` instead.
    """
    result = read_frame_any(stream, max_frame_bytes)
    if result is None:
        return None
    shape, payload = result
    if shape != "json":
        raise FrameError("unexpected binary frame on a JSON-only connection")
    return payload


def read_frame_any(
    stream: BinaryIO, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[tuple[str, Any]]:
    """Read one frame of either encoding; ``None`` on clean EOF between frames.

    Returns ``("json", payload_dict)`` for a JSON frame or
    ``("binary", body_bytes)`` for a binary one — decoding the binary
    envelope is the caller's job (:mod:`repro.codec.wire`), keeping the
    framing layer below the codec.
    """
    header = _read_exact(stream, HEADER.size)
    if header is None:
        return None
    (announced,) = HEADER.unpack(header)
    binary = bool(announced & BINARY_FRAME_FLAG)
    length = announced & FRAME_LENGTH_MASK
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    body = _read_exact(stream, length)
    if body is None:
        raise FrameError("connection closed between frame header and payload")
    if binary:
        return "binary", body
    return "json", decode_frame_body(body)


def encode_binary_frame(body: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Frame one RBF binary envelope body (header with the binary flag set)."""
    if len(body) > min(max_frame_bytes, FRAME_LENGTH_MASK):
        raise FrameTooLargeError(len(body), min(max_frame_bytes, FRAME_LENGTH_MASK))
    return HEADER.pack(len(body) | BINARY_FRAME_FLAG) + body


# -- protocol v2 envelopes -----------------------------------------------------------


@dataclass(frozen=True)
class InboundFrame:
    """One classified inbound frame: which protocol shape it is and what it asks.

    ``version`` is 1 or 2.  For v2 frames ``request_id`` carries the
    client's correlation id and ``kind`` the envelope kind; ``payload`` is
    the dispatchable v1-style request payload (``{"type": kind, **body}``),
    or ``None`` for a ``hello`` handshake.  ``trace`` is ``None`` for an
    untraced request, ``True`` when the client asked the server to
    generate a trace id, or the propagated trace id string.  ``error`` is
    set (and ``payload`` is ``None``) when the envelope itself is
    malformed — the stream is still synchronised, so servers answer it on
    a healthy connection instead of closing.
    """

    version: int
    request_id: Any = None
    kind: Optional[str] = None
    payload: Optional[dict] = None
    error: Optional[str] = None
    trace: Any = None

    @property
    def traced(self) -> bool:
        """Whether the client opted into tracing for this request."""
        return self.trace is not None

    @property
    def is_hello(self) -> bool:
        return self.version == 2 and self.kind == HELLO_KIND and self.error is None


def valid_request_id(request_id: Any) -> bool:
    """Whether a value may serve as a v2 correlation id (int or string)."""
    if isinstance(request_id, bool):
        return False
    return isinstance(request_id, (int, str))


def classify_frame(payload: dict) -> InboundFrame:
    """Tell a v1 request payload from a v2 envelope and validate the latter.

    A frame is a v2 envelope exactly when it carries a ``kind`` field (v1
    request payloads carry ``type`` instead, and strict request validation
    has always rejected stray fields, so the shapes cannot collide).
    """
    if "kind" not in payload and "id" not in payload and "body" not in payload:
        return InboundFrame(version=1, payload=payload)
    request_id = payload.get("id")
    if not valid_request_id(request_id):
        return InboundFrame(
            version=2,
            error=f"envelope 'id' must be an integer or string, got {request_id!r}",
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        return InboundFrame(
            version=2,
            request_id=request_id,
            error=f"envelope 'kind' must be a non-empty string, got {kind!r}",
        )
    unknown = set(payload) - {"id", "kind", "body", "trace"}
    if unknown:
        return InboundFrame(
            version=2,
            request_id=request_id,
            kind=kind,
            error=f"unknown envelope field(s): {', '.join(sorted(unknown))}",
        )
    trace = payload.get("trace")
    if trace in (None, False):
        trace = None
    elif trace is not True and not (
        isinstance(trace, str) and 0 < len(trace) <= MAX_TRACE_ID_BYTES
    ):
        return InboundFrame(
            version=2,
            request_id=request_id,
            kind=kind,
            error=(
                "envelope 'trace' must be true or a non-empty string of at most"
                f" {MAX_TRACE_ID_BYTES} characters, got {trace!r}"
            ),
        )
    body = payload.get("body", {})
    if not isinstance(body, dict):
        return InboundFrame(
            version=2,
            request_id=request_id,
            kind=kind,
            error=f"envelope 'body' must be an object, got {type(body).__name__}",
        )
    if kind == HELLO_KIND:
        return InboundFrame(version=2, request_id=request_id, kind=kind)
    if "type" in body:
        return InboundFrame(
            version=2,
            request_id=request_id,
            kind=kind,
            error="envelope 'body' must not carry 'type'; the kind names the request",
        )
    return InboundFrame(
        version=2, request_id=request_id, kind=kind, payload={"type": kind, **body}, trace=trace
    )


def request_envelope(request_id: Any, payload: dict, trace: Any = None) -> dict:
    """Wrap a v1-style request payload (``{"type": ...}``) in a v2 envelope.

    ``trace`` opts the request into tracing: ``True`` asks the server to
    generate a trace id, a non-empty string propagates an existing one.
    """
    if not valid_request_id(request_id):
        raise FrameError(f"request id must be an integer or string, got {request_id!r}")
    kind = payload.get("type")
    if not isinstance(kind, str) or not kind:
        raise FrameError(f"request payload must carry a string 'type', got {kind!r}")
    body = {key: value for key, value in payload.items() if key != "type"}
    envelope = {"id": request_id, "kind": kind, "body": body}
    if trace:
        envelope["trace"] = trace
    return envelope


def response_envelope(request_id: Any, payload: dict) -> dict:
    """Wrap a response payload in the v2 envelope echoing ``request_id``."""
    return {"id": request_id, "body": payload}


def push_envelope(subscription_id: Any, payload: dict) -> dict:
    """Wrap one standing-query push in the v2 envelope for ``subscription_id``.

    The id is the *subscribe* request's correlation id: one subscription,
    many correlated frames.  Clients route on ``kind == PUSH_KIND`` before
    matching pending replies, so pushes interleave freely with responses.
    """
    if not valid_request_id(subscription_id):
        raise FrameError(
            f"subscription id must be an integer or string, got {subscription_id!r}"
        )
    return {"id": subscription_id, "kind": PUSH_KIND, "body": payload}


def hello_payload(request_id: Any, version: int = PROTOCOL_VERSION) -> dict:
    """The handshake frame a v2 client opens its connection with."""
    return {"id": request_id, "kind": HELLO_KIND, "body": {"version": version}}


def hello_data(max_frame_bytes: int) -> dict:
    """The ``data`` payload a v2 server answers the handshake with."""
    return {
        "server": "repro-topk",
        "version": PROTOCOL_VERSION,
        "versions": list(SUPPORTED_VERSIONS),
        "formats": list(WIRE_FORMATS),
        "max_frame_bytes": max_frame_bytes,
    }
