"""Request tracing: one :class:`Trace` per request, spans at every boundary.

A trace is created at the protocol boundary (or explicitly, for in-process
callers), installed as the *current trace* for the duration of the request,
and carried back to the client as a ``trace`` block on the response.  Code
along the request path never threads a trace argument around — it calls the
module-level helpers, which no-op when no trace is active:

``trace_span(name, **attrs)``
    Context manager timing a block as a child of the innermost open span.
``record_span(name, duration_seconds, **attrs)``
    After-the-fact span for work whose duration was measured elsewhere
    (per-shard fan-out latencies collected from worker results).
``current_trace()``
    The active :class:`Trace`, or ``None``.

Timings are monotonic (``time.perf_counter``), stored as offsets from the
trace's start so span trees from different processes line up relatively.
Remote child spans — a shard server's own trace block — are grafted under
the calling span with :meth:`Trace.attach_remote`, which is how a traced
2-shard k-NN query comes back with one tree spanning three processes.

Propagation uses :mod:`contextvars`, so the asyncio server's per-connection
tasks and the threaded server's per-connection threads each see their own
current trace.  Spans opened from *other* threads (fan-out workers) should
use :func:`record_span` from the collecting thread instead.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

__all__ = [
    "MAX_TRACE_ID_LENGTH",
    "Span",
    "Trace",
    "current_trace",
    "new_trace_id",
    "record_span",
    "span_tree_lines",
    "trace_span",
    "use_trace",
]

#: Maximum accepted length of a client-supplied trace id.
MAX_TRACE_ID_LENGTH = 64


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation inside a trace (children nest beneath it)."""

    __slots__ = ("name", "start_seconds", "duration_seconds", "attrs", "children")

    def __init__(self, name: str, start_seconds: float, **attrs: Any) -> None:
        self.name = name
        self.start_seconds = start_seconds
        self.duration_seconds: Optional[float] = None  # None while still open
        self.attrs = attrs
        self.children: list[Span] = []

    def to_dict(self, now_offset: Optional[float] = None) -> dict:
        """JSON-able span tree; open spans report their duration so far."""
        duration = self.duration_seconds
        if duration is None:
            duration = 0.0 if now_offset is None else max(0.0, now_offset - self.start_seconds)
        payload: dict = {
            "name": self.name,
            "start_ms": round(self.start_seconds * 1000.0, 3),
            "duration_ms": round(duration * 1000.0, 3),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict(now_offset) for child in self.children]
        return payload


class Trace:
    """A request's span tree plus the id correlating it across processes.

    Thread-safe for the operations the serving path needs: the request
    thread opens/closes spans; collector code records after-the-fact spans
    and grafts remote trees.  The *innermost open span* is tracked as a
    stack, so ``trace.span(...)`` blocks nest naturally.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._t0 = time.perf_counter()
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._lock = threading.Lock()

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        span = Span(name, self._now(), **attrs)
        with self._lock:
            self._attach(span)
            self._stack.append(span)
        try:
            yield span
        finally:
            with self._lock:
                span.duration_seconds = self._now() - span.start_seconds
                if self._stack and self._stack[-1] is span:
                    self._stack.pop()
                elif span in self._stack:  # closed out of order; drop through to it
                    del self._stack[self._stack.index(span):]

    def record_span(self, name: str, duration_seconds: float, **attrs: Any) -> Span:
        """Add a closed span whose duration was measured elsewhere."""
        end = self._now()
        span = Span(name, max(0.0, end - max(0.0, duration_seconds)), **attrs)
        span.duration_seconds = max(0.0, duration_seconds)
        with self._lock:
            self._attach(span)
        return span

    def attach_remote(self, name: str, remote: dict, **attrs: Any) -> Span:
        """Graft a remote trace block under the innermost open span.

        ``remote`` is another process's ``Trace.to_dict()`` — typically a
        shard server's response trace.  Its root spans become children of
        a wrapper span named ``name``; the wrapper's duration is the
        remote's own root-span total, so the tree keeps the *server-side*
        cost visible next to the local wall time recorded by the caller.
        """
        spans = remote.get("spans", []) if isinstance(remote, dict) else []
        duration = sum(s.get("duration_ms", 0.0) for s in spans) / 1000.0
        wrapper = self.record_span(name, duration, **attrs)
        wrapper.attrs.setdefault("trace_id", remote.get("trace_id", ""))
        wrapper.children.extend(_spans_from_dicts(spans))
        return wrapper

    def to_dict(self) -> dict:
        """JSON-able ``{"trace_id", "spans"}`` block for the wire."""
        now = self._now()
        with self._lock:
            roots = list(self._roots)
        return {"trace_id": self.trace_id, "spans": [s.to_dict(now) for s in roots]}


def _spans_from_dicts(payloads: list) -> list[Span]:
    spans = []
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        span = Span(
            str(payload.get("name", "?")),
            float(payload.get("start_ms", 0.0)) / 1000.0,
            **dict(payload.get("attrs", {})),
        )
        span.duration_seconds = float(payload.get("duration_ms", 0.0)) / 1000.0
        span.children = _spans_from_dicts(payload.get("children", []))
        spans.append(span)
    return spans


_CURRENT: ContextVar[Optional[Trace]] = ContextVar("repro_current_trace", default=None)


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def use_trace(trace: Trace) -> Iterator[Trace]:
    """Install ``trace`` as the current trace for the ``with`` block."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


@contextmanager
def trace_span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Time a block as a span of the current trace (no-op when untraced)."""
    trace = _CURRENT.get()
    if trace is None:
        yield None
        return
    with trace.span(name, **attrs) as span:
        yield span


def record_span(name: str, duration_seconds: float, **attrs: Any) -> None:
    """Record an elsewhere-measured span (no-op when untraced)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.record_span(name, duration_seconds, **attrs)


def span_tree_lines(trace_block: dict, indent: str = "  ") -> list[str]:
    """Human-readable rendering of a response's ``trace`` block."""
    lines = [f"trace {trace_block.get('trace_id', '?')}"]

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attrs", {})
        suffix = ""
        if attrs:
            body = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            suffix = f"  [{body}]"
        lines.append(
            f"{indent * depth}{span.get('name', '?')}"
            f"  {span.get('duration_ms', 0.0):.3f} ms{suffix}"
        )
        for child in span.get("children", []):
            walk(child, depth + 1)

    for root in trace_block.get("spans", []):
        walk(root, 1)
    return lines
