#!/usr/bin/env python3
"""Query suggestion over web-search result rankings (the paper's NYT scenario).

A search engine keeps, for every historic query, the top-10 result documents.
Given the result list of a *currently issued* query, it wants all historic
queries whose result lists are similar — those are good suggestion candidates.

This example:

1. generates an NYT-like collection of query-result rankings (skewed document
   popularity, many near-duplicate result lists),
2. tunes the coarse index with the analytical cost model (the "sweet spot"),
3. answers a stream of ad-hoc suggestion queries and compares the coarse
   index against the plain Filter & Validate baseline and the AdaptSearch
   competitor.

Run with::

    python examples/web_query_suggestion.py [n_rankings]
"""

from __future__ import annotations

import sys
import time

from repro import CostModel, cost_model_inputs_for, make_algorithm, nyt_like_dataset, sample_queries
from repro.analysis.calibration import calibrate_costs


def main(n: int = 2000) -> None:
    k = 10
    theta = 0.2

    print(f"generating NYT-like query-result rankings: n={n}, k={k} ...")
    rankings = nyt_like_dataset(n=n, k=k)
    queries = sample_queries(rankings, 25, seed=17)

    # -- tune the partitioning threshold with the cost model --------------------
    print("calibrating unit costs and fitting the cost model ...")
    calibration = calibrate_costs(k, repetitions=500)
    inputs = cost_model_inputs_for(
        rankings,
        cost_footrule=calibration.cost_footrule,
        cost_merge=calibration.cost_merge,
    )
    model = CostModel(inputs)
    recommendation = model.recommend_theta_c(theta)
    print(
        f"  estimated Zipf skew s = {inputs.zipf_s:.2f}, "
        f"recommended theta_C = {recommendation.theta_c:.2f}"
    )

    # -- build the contenders ----------------------------------------------------
    contenders = {
        "F&V": make_algorithm("F&V", rankings),
        "AdaptSearch": make_algorithm("AdaptSearch", rankings),
        "Coarse+Drop": make_algorithm("Coarse+Drop", rankings, theta_c=0.06),
        "Coarse (model theta_C)": make_algorithm(
            "Coarse", rankings, theta_c=recommendation.theta_c
        ),
    }

    # -- answer the suggestion workload ------------------------------------------
    print(f"\nanswering {len(queries)} suggestion queries with theta = {theta}:\n")
    reference = None
    for name, algorithm in contenders.items():
        start = time.perf_counter()
        total_results = 0
        total_distance_calls = 0
        result_sets = []
        for query in queries:
            result = algorithm.search(query, theta)
            total_results += len(result)
            total_distance_calls += result.stats.distance_calls
            result_sets.append(result.rids)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = result_sets
        assert result_sets == reference, "all algorithms must return identical answers"
        print(
            f"  {name:24s} {elapsed * 1000:8.1f} ms total "
            f"| {total_results} suggestions | {total_distance_calls} distance calls"
        )

    print(
        "\nEvery contender returns the same suggestions; the coarse index gets "
        "there with far fewer distance computations on this clustered, skewed "
        "workload — the Figure 8 story of the paper."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    main(size)
